"""Statistical-equivalence gate and sampled materialization audit.

The columnar scheduler's correctness story has two legs (see
``repro/audit/stat_equiv.py``): paired columnar-vs-baseline campaigns
gated on overlapping cross-seed confidence intervals, and a sampled
audit that rebuilds one replica's columns as object-model buffers and
packets and re-checks the object layer's invariants against them.
Both legs must be **sensitive** — a corrupted column or a disjoint
metric must fail loudly — and **quiet** on a healthy engine.
"""

import math

import pytest

from repro.audit.invariants import AuditError
from repro.audit.stat_equiv import (
    FLIT_RATIO_BAND,
    Interval,
    PairedReport,
    SamplingAuditor,
    audit_replica,
    cross_seed_interval,
    materialize_replica,
    paired_point,
    paper_points,
    run_campaign,
)
from repro.core.buffers import FlitBuffer
from repro.core.columnar import ColumnarEngine, simulate_columnar
from repro.core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.core.packet import Packet

PARAMS = SimulationParams(batch_cycles=300, batches=3, seed=3)
WORKLOAD = WorkloadConfig(locality=0.9, miss_rate=0.04, outstanding=4)
RING = RingSystemConfig(topology="2:4", cache_line_bytes=32)
MESH = MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=4)


def run_engine(system, cycles=400, seeds=(3, 4)):
    engine = ColumnarEngine(system, WORKLOAD.validate(), PARAMS.validate(), seeds)
    engine.run(cycles)
    return engine


class TestInterval:
    def test_overlap_geometry(self):
        a = Interval(mean=10.0, half_width=2.0, n=8)
        b = Interval(mean=13.0, half_width=1.5, n=8)   # [11.5, 14.5] vs [8, 12]
        c = Interval(mean=20.0, half_width=1.0, n=8)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)
        # Touching endpoints count as overlap (conservative gate).
        d = Interval(mean=14.0, half_width=2.0, n=8)   # lo == a.hi
        assert a.overlaps(d)

    def test_cross_seed_interval_basic(self):
        iv = cross_seed_interval([10.0, 12.0, 14.0, 16.0])
        assert iv.n == 4
        assert iv.mean == 13.0
        assert 0 < iv.half_width < math.inf
        assert iv.lo < 13.0 < iv.hi

    def test_nan_values_filtered(self):
        with_nan = cross_seed_interval([10.0, math.nan, 14.0, math.nan])
        clean = cross_seed_interval([10.0, 14.0])
        assert with_nan == clean
        assert with_nan.n == 2

    def test_degenerate_samples_are_unbounded(self):
        empty = cross_seed_interval([])
        assert empty.n == 0
        assert math.isnan(empty.mean)
        assert empty.half_width == math.inf
        single = cross_seed_interval([7.0])
        assert single.n == 1
        assert single.mean == 7.0
        assert single.half_width == math.inf
        # Unbounded intervals overlap everything: a one-seed campaign
        # can never report a spurious DISJOINT.
        assert single.overlaps(Interval(mean=1e9, half_width=0.0, n=8))


class TestPairedCampaign:
    def test_paired_point_passes_on_a_real_point(self):
        report = paired_point("ring-2level", RING, WORKLOAD, PARAMS, seeds=(3, 4, 5, 6))
        assert report.passed, report.describe()
        assert set(report.intervals) == {"latency", "throughput"}
        lo, hi = FLIT_RATIO_BAND
        assert lo <= report.flit_ratio <= hi
        assert "PASS" in report.describe()

    def test_batched_baseline_is_accepted(self):
        report = paired_point(
            "mesh", MESH, WORKLOAD, PARAMS, seeds=(3, 4, 5), baseline="batched"
        )
        assert report.passed, report.describe()

    def test_failures_flip_the_verdict(self):
        disjoint = (
            Interval(mean=10.0, half_width=0.5, n=8),
            Interval(mean=20.0, half_width=0.5, n=8),
        )
        report = PairedReport(
            name="synthetic",
            seeds=(1, 2),
            intervals={"latency": disjoint},
            flit_ratio=1.0,
            failures=("latency: disjoint 95% CIs",),
        )
        assert not report.passed
        text = report.describe()
        assert "FAIL" in text and "DISJOINT" in text

    def test_paper_points_cover_both_families(self):
        points = paper_points()
        names = [name for name, _ in points]
        assert len(names) == len(set(names))
        assert any(isinstance(s, RingSystemConfig) for _, s in points)
        assert any(isinstance(s, MeshSystemConfig) for _, s in points)

    def test_run_campaign_custom_point(self):
        logged = []
        reports = run_campaign(
            points=[("ring-1level", RingSystemConfig(topology="8", cache_line_bytes=32))],
            workload=WORKLOAD,
            params=PARAMS,
            seeds=(3, 4, 5),
            log=logged.append,
        )
        assert len(reports) == 1
        assert reports[0].passed, reports[0].describe()
        assert logged  # progress was reported


class TestMaterialization:
    @pytest.mark.parametrize("system", [RING, MESH], ids=["ring", "mesh"])
    def test_audit_replica_clean_on_live_engine(self, system):
        engine = run_engine(system)
        for replica in range(engine.replicas):
            assert audit_replica(engine, replica) == []

    def test_materialize_rebuilds_object_vocabulary(self):
        engine = run_engine(RING)
        mat = materialize_replica(engine, 0)
        assert mat.replica == 0
        assert mat.cycle == engine.cycle
        assert set(mat.buffers) == set(engine.buffer_names)
        assert all(isinstance(fb, FlitBuffer) for fb in mat.buffers.values())
        assert all(isinstance(p, Packet) for p in mat.packets.values())
        # Buffer content mirrors the occupancy columns exactly.
        base = 0 * engine.buffers_per_replica
        for t, name in enumerate(engine.buffer_names):
            assert len(mat.buffers[name]) == int(engine._occ[base + t])
            assert mat.buffers[name].conservation_delta() == 0

    def test_audit_detects_corrupted_occupancy(self):
        """Sensitivity: bumping one occupancy column breaks the
        whole-engine flit-conservation check (and likely a local one)."""
        engine = run_engine(RING)
        # Find a non-sink buffer of replica 0 and inflate its occupancy.
        for t in range(engine.buffers_per_replica):
            if not engine._is_sink[t] and engine._t_caps[t] > engine._occ[t]:
                engine._occ[t] += 1
                break
        else:
            pytest.fail("no corruptible buffer found")
        problems = audit_replica(engine, 0)
        assert problems
        assert any("flit" in p or "conservation" in p or "net" in p for p in problems)

    def test_audit_detects_sink_occupancy(self):
        """Sink buffers eject on arrival: a nonzero sink occupancy means
        the commit path lost an ejection."""
        engine = run_engine(MESH)
        sinks = [t for t in range(engine.buffers_per_replica) if engine._is_sink[t]]
        assert sinks, "mesh network must have sink buffers"
        engine._occ[sinks[0]] += 1
        problems = audit_replica(engine, 0)
        assert any("sink" in p for p in problems)

    def test_sampling_auditor_rotates_and_raises(self):
        engine = run_engine(RING, seeds=(3, 4, 5))
        auditor = SamplingAuditor()
        auditor(engine)
        auditor(engine)
        assert auditor.samples == 2
        assert auditor._next_replica == 2  # rotated 0 -> 1 -> (2 next)
        engine._net_flits += 1  # corrupt the conservation counter
        with pytest.raises(AuditError) as exc:
            for _ in range(engine.replicas):
                auditor(engine)
        assert exc.value.invariant == "columnar_materialization"

    def test_sampling_auditor_rides_a_full_simulation(self):
        auditor = SamplingAuditor()
        results = simulate_columnar(
            RING, WORKLOAD, PARAMS, seeds=(3, 4),
            cycle_hook=auditor, hook_interval=25,
        )
        assert len(results) == 2
        assert auditor.samples >= PARAMS.batch_cycles * PARAMS.batches // 25 - 1
