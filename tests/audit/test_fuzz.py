"""The cross-scheduler differential fuzzer: deterministic, and able to
shrink an injected bug down to a replayable minimal reproducer."""

import json

import pytest

from repro.audit.fuzz import (
    FuzzCase,
    random_case,
    replay,
    run_case,
    run_fuzz,
    shrink,
    static_spec_problem,
)
from repro.core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.core.engine import Engine

import random


def test_case_stream_is_deterministic():
    a = [random_case(random.Random(123)).describe() for _ in range(10)]
    b = [random_case(random.Random(123)).describe() for _ in range(10)]
    assert a == b


def test_case_payload_round_trips():
    rng = random.Random(7)
    for _ in range(20):
        case = random_case(rng)
        clone = FuzzCase.from_payload(json.loads(json.dumps(case.payload())))
        assert clone == case


def test_generated_configs_validate():
    rng = random.Random(99)
    for _ in range(50):
        case = random_case(rng)
        case.system.validate()
        case.workload.validate()
        case.params.validate()


def test_small_campaign_is_clean(tmp_path):
    """A short seeded campaign finds no divergence on the real kernel
    (the lifecycle drain pass included)."""
    failures = run_fuzz(cases=3, seed=2, out_dir=tmp_path, log=lambda _m: None)
    assert failures == 0
    assert not list(tmp_path.iterdir())  # no reproducers written


def test_injected_bug_is_found_shrunk_and_replayable(tmp_path, monkeypatch):
    """End-to-end: a datapath bug (resolver never revokes, object path
    only) makes the audited fuzz fail, shrink to a minimal case, and
    write a reproducer that replays to the same failure."""
    monkeypatch.setattr(Engine, "_resolve", lambda self: None)
    logs = []
    failures = run_fuzz(
        cases=2, seed=0, out_dir=tmp_path, log=logs.append, lifecycle=False
    )
    assert failures >= 1
    reproducers = sorted(tmp_path.glob("repro-*.json"))
    assert reproducers
    payload = json.loads(reproducers[0].read_text())
    assert payload["kind"] in ("violation", "divergence")
    shrunk = FuzzCase.from_payload(payload["case"])
    # The shrinker drove the schedule axes to their floors.
    assert shrunk.params.batches == 2
    assert shrunk.params.batch_cycles <= 100
    assert shrunk.system.cache_line_bytes == 16
    # And the reproducer still reproduces under replay.
    result = replay(reproducers[0], log=lambda _m: None)
    assert result.failed
    assert result.kind == payload["kind"]


def test_shrink_rejects_passing_case():
    case = FuzzCase(
        system=RingSystemConfig(topology="2:2", cache_line_bytes=16),
        workload=WorkloadConfig(miss_rate=0.05, outstanding=2),
        params=SimulationParams(
            batch_cycles=100, batches=2, seed=1, deadlock_threshold=3000
        ),
    )
    with pytest.raises(ValueError):
        shrink(case)


def test_run_case_accepts_consistent_errors(monkeypatch):
    """If every scheduler raises the *same* error the case passes —
    differential testing compares behavior, it does not require
    success."""
    from repro.core.errors import SimulationError

    def explode(self, *args, **kwargs):
        raise SimulationError("synthetic failure")

    monkeypatch.setattr(Engine, "run", explode)
    case = FuzzCase(
        system=MeshSystemConfig(side=2, cache_line_bytes=16, buffer_flits=1),
        workload=WorkloadConfig(miss_rate=0.05, outstanding=1),
        params=SimulationParams(
            batch_cycles=60, batches=2, seed=3, deadlock_threshold=3000
        ),
    )
    result = run_case(case, lifecycle=False)
    assert not result.failed

def test_generated_topologies_pass_the_spec_gate():
    """Every topology the generator emits is certified deadlock-free by
    the CDG prover, so the gate never wastes a fuzz case."""
    rng = random.Random(11)
    for _ in range(30):
        assert static_spec_problem(random_case(rng)) is None


def test_run_case_fails_fast_on_spec_rejection(monkeypatch):
    """A topology the prover rejects fails the case *before* any
    simulation runs."""
    import repro.audit.fuzz as fuzz_module

    def reject(case):
        return "synthetic spec rejection"

    def no_simulation(case, scheduler):
        raise AssertionError("simulation must not run on a rejected spec")

    monkeypatch.setattr(fuzz_module, "static_spec_problem", reject)
    monkeypatch.setattr(fuzz_module, "_run_one", no_simulation)
    case = random_case(random.Random(5))
    result = run_case(case, lifecycle=True)
    assert result.failed
    assert result.kind == "spec"
    assert "synthetic spec rejection" in result.detail
