"""The runtime invariant auditor: transparent when clean, loud when not.

Two properties make the auditor trustworthy:

* **Transparency** — an audited run produces byte-identical results to
  an unaudited one under every scheduler (the auditor only reads).
* **Sensitivity** — a datapath bug injected via monkeypatch (a lost
  dequeue count, a disabled resolver) is caught within one cycle as an
  :class:`~repro.audit.AuditError` naming the broken invariant, under
  the object and compiled datapaths alike.
"""

from dataclasses import replace

import pytest

from repro.audit import Auditor, AuditError, current, enabled
from repro.core.buffers import FlitBuffer
from repro.core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.core.engine import Engine
from repro.core.pm import MetricsHub
from repro.core.simulation import build_network, simulate
from repro.runtime.serialization import canonical_json, result_payload

PARAMS = SimulationParams(batch_cycles=300, batches=3, seed=5)
WORKLOAD = WorkloadConfig(miss_rate=0.05, outstanding=4)
SCHEDULERS = ("naive", "active", "compiled")

SYSTEMS = [
    pytest.param(RingSystemConfig(topology="2:4", cache_line_bytes=32), id="ring"),
    pytest.param(
        RingSystemConfig(topology="2:2:2", cache_line_bytes=32, global_ring_speed=2),
        id="ring-fast-global",
    ),
    pytest.param(
        RingSystemConfig(topology="2:4", cache_line_bytes=32, switching="slotted"),
        id="ring-slotted",
    ),
    pytest.param(
        MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=1), id="mesh"
    ),
]


@pytest.mark.parametrize("system", SYSTEMS)
def test_audited_run_is_byte_identical(system):
    """Auditing observes, never perturbs — for every scheduler."""
    plain = {
        s: canonical_json(
            result_payload(simulate(system, WORKLOAD, replace(PARAMS, scheduler=s)))
        )
        for s in SCHEDULERS
    }
    auditor = Auditor()
    with enabled(auditor):
        audited = {
            s: canonical_json(
                result_payload(
                    simulate(system, WORKLOAD, replace(PARAMS, scheduler=s))
                )
            )
            for s in SCHEDULERS
        }
    assert audited == plain
    assert plain["naive"] == plain["active"] == plain["compiled"]
    assert auditor.cycles_audited > 0
    assert auditor.proposals_checked > 0
    assert auditor.engines_attached == len(SCHEDULERS)
    assert not auditor.violations


def test_disabled_auditing_is_ambiently_off():
    """No enable, no auditor: the engine installs its plain step."""
    assert current() is None
    metrics = MetricsHub()
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    network = build_network(system, WORKLOAD, metrics, seed=1)
    engine = Engine()
    network.register(engine)
    engine.run(10)
    assert engine._auditor is None
    assert engine._step_fn != engine._step_audited


def test_enabled_is_scoped():
    auditor = Auditor()
    with enabled(auditor) as handle:
        assert handle is auditor
        assert current() is auditor
    assert current() is None


@pytest.mark.parametrize("scheduler", ["naive", "active"])
def test_lost_dequeue_count_is_caught(monkeypatch, scheduler):
    """An off-by-one in the FIFO counters trips buffer-conservation.

    ``pop()`` forgetting ``flits_dequeued`` is exactly the class of
    accounting bug the per-cycle conservation check exists for; inject
    it and the audited run must die on the first affected cycle.  (The
    compiled datapath fuses its pops into direct deque operations, so
    this particular injection only reaches the object path; the
    compiled resolver gets its own injection below.)"""

    def broken_pop(self):
        if not self._flits:
            raise IndexError(f"buffer {self.name!r} underflow")
        return self._flits.popleft()  # flits_dequeued not incremented

    monkeypatch.setattr(FlitBuffer, "pop", broken_pop)
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    with enabled(Auditor()) as auditor:
        with pytest.raises(AuditError) as excinfo:
            simulate(system, WORKLOAD, replace(PARAMS, scheduler=scheduler))
    assert excinfo.value.invariant == "buffer-conservation"
    assert auditor.violations and auditor.violations[0] is excinfo.value


@pytest.mark.parametrize("scheduler", ["naive", "active"])
def test_disabled_resolver_is_caught(monkeypatch, scheduler):
    """A resolver that never revokes leaves overflowing survivors; the
    after-resolve fixed-point check must catch them before commit."""
    monkeypatch.setattr(Engine, "_resolve", lambda self: None)
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = replace(WORKLOAD, miss_rate=0.2, outstanding=8)
    with enabled(Auditor()):
        with pytest.raises(AuditError) as excinfo:
            simulate(system, workload, replace(PARAMS, scheduler=scheduler))
    assert excinfo.value.invariant == "resolve-fixed-point"


def test_disabled_compiled_resolver_is_caught(monkeypatch):
    """Same injection against the compiled datapath's integer resolver."""
    monkeypatch.setattr(Engine, "_resolve_compiled", lambda self: None)
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = replace(WORKLOAD, miss_rate=0.2, outstanding=8)
    with enabled(Auditor()):
        with pytest.raises(AuditError) as excinfo:
            simulate(system, workload, replace(PARAMS, scheduler="compiled"))
    assert excinfo.value.invariant == "resolve-fixed-point"


def test_over_revoking_resolver_is_caught(monkeypatch):
    """A resolver that revokes *everything* violates GFP maximality."""

    def revoke_all(self):
        for transfer in self._transfers:
            transfer.committed = False

    monkeypatch.setattr(Engine, "_resolve", revoke_all)
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    with enabled(Auditor()):
        with pytest.raises(AuditError) as excinfo:
            simulate(system, WORKLOAD, replace(PARAMS, scheduler="naive"))
    assert excinfo.value.invariant == "resolve-maximality"


def test_quiescence_after_drain():
    """With generation cut, a bypass network drains to full quiescence
    (transaction lifecycle: every request got exactly one response)."""
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    metrics = MetricsHub()
    network = build_network(system, WORKLOAD, metrics, seed=9)
    engine = Engine(deadlock_threshold=3000)
    network.register(engine)
    auditor = Auditor()
    with enabled(auditor):
        engine.run(900)
        for pm in network.pms:
            pm.generation_enabled = False
        for _ in range(40):
            if auditor.quiescence_problem(engine) is None:
                break
            engine.run(100)
        auditor.check_quiescent(engine)
    assert metrics.remote_issued == metrics.remote_completed
    assert metrics.remote_issued > 0


def test_audit_error_carries_context():
    err = AuditError("buffer-capacity", 42, "too many flits")
    assert err.invariant == "buffer-capacity"
    assert err.cycle == 42
    assert "cycle 42" in str(err) and "buffer-capacity" in str(err)
