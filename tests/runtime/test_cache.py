"""Tests for the content-addressed on-disk result cache."""

from repro.core.config import RingSystemConfig, SimulationParams, WorkloadConfig
from repro.core.simulation import simulate
from repro.runtime import PointSpec, ResultCache, code_version_salt

WORKLOAD = WorkloadConfig(locality=1.0, miss_rate=0.1, outstanding=4)
PARAMS = SimulationParams(batch_cycles=100, batches=2, seed=7)


def _spec(topology="2:4"):
    return PointSpec.of(RingSystemConfig(topology=topology), WORKLOAD, PARAMS)


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        assert cache.get(spec) is None
        result = simulate(spec.system, spec.workload, spec.params)
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit is not None
        assert hit.latency.mean == result.latency.mean
        assert hit.system == result.system
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        result = simulate(spec.system, spec.workload, spec.params)
        cache.put(spec, result)
        cache.path_for(spec).write_text("{not json")
        assert cache.get(spec) is None

    def test_entries_are_salted_by_code_version(self, tmp_path):
        """Entries written by a different simulator version never hit."""
        spec = _spec()
        old = ResultCache(tmp_path, salt="0123456789abcdef")
        old.put(spec, simulate(spec.system, spec.workload, spec.params))
        current = ResultCache(tmp_path)
        assert current.get(spec) is None
        assert current.entry_count() == 0

    def test_clear_removes_all_salts(self, tmp_path):
        spec = _spec()
        result = simulate(spec.system, spec.workload, spec.params)
        ResultCache(tmp_path, salt="aaaa").put(spec, result)
        cache = ResultCache(tmp_path)
        cache.put(spec, result)
        assert cache.clear() == 2
        assert not tmp_path.exists()
        assert cache.get(spec) is None

    def test_salt_is_stable_within_a_process(self):
        assert code_version_salt() == code_version_salt()
        assert len(code_version_salt()) == 16
