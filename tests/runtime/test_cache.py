"""Tests for the content-addressed on-disk result cache."""

import os

import pytest

from repro.core.config import RingSystemConfig, SimulationParams, WorkloadConfig
from repro.core.simulation import simulate
from repro.runtime import (
    PointSpec,
    ResultCache,
    code_version_salt,
    prime_code_version_salt,
)
from repro.runtime.serialization import canonical_json, result_payload

WORKLOAD = WorkloadConfig(locality=1.0, miss_rate=0.1, outstanding=4)
PARAMS = SimulationParams(batch_cycles=100, batches=2, seed=7)


def _spec(topology="2:4"):
    return PointSpec.of(RingSystemConfig(topology=topology), WORKLOAD, PARAMS)


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        assert cache.get(spec) is None
        result = simulate(spec.system, spec.workload, spec.params)
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit is not None
        assert hit.latency.mean == result.latency.mean
        assert hit.system == result.system
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        result = simulate(spec.system, spec.workload, spec.params)
        cache.put(spec, result)
        cache.path_for(spec).write_text("{not json")
        assert cache.get(spec) is None

    def test_entries_are_salted_by_code_version(self, tmp_path):
        """Entries written by a different simulator version never hit."""
        spec = _spec()
        old = ResultCache(tmp_path, salt="0123456789abcdef")
        old.put(spec, simulate(spec.system, spec.workload, spec.params))
        current = ResultCache(tmp_path)
        assert current.get(spec) is None
        assert current.entry_count() == 0

    def test_clear_removes_all_salts(self, tmp_path):
        spec = _spec()
        result = simulate(spec.system, spec.workload, spec.params)
        ResultCache(tmp_path, salt="aaaa").put(spec, result)
        cache = ResultCache(tmp_path)
        cache.put(spec, result)
        assert cache.clear() == 2
        assert not tmp_path.exists()
        assert cache.get(spec) is None

    def test_salt_is_stable_within_a_process(self):
        assert code_version_salt() == code_version_salt()
        assert len(code_version_salt()) == 16

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, simulate(spec.system, spec.workload, spec.params))
        path = cache.path_for(spec)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(spec) is None
        assert cache.get_entry(spec) is None

    def test_racing_writers_leave_a_clean_entry(self, tmp_path):
        """Two put() calls racing on one key: atomic replace wins cleanly.

        Interleaves the tmp-file/rename steps the way two processes
        would: both write their temp files, then both rename.  The
        survivor must be one writer's complete, parseable entry, and no
        temp litter may remain.
        """
        spec = _spec()
        result = simulate(spec.system, spec.workload, spec.params)
        a = ResultCache(tmp_path)
        b = ResultCache(tmp_path)
        path = a.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp_a = path.with_name(f".{path.name}.writer-a.tmp")
        tmp_b = path.with_name(f".{path.name}.writer-b.tmp")
        import json as _json

        tmp_a.write_text(_json.dumps(result_payload(result), sort_keys=True))
        tmp_b.write_text(_json.dumps(result_payload(result), sort_keys=True))
        os.replace(tmp_a, path)
        os.replace(tmp_b, path)
        hit = b.get_entry(spec)
        assert hit is not None
        assert hit[0] == canonical_json(result_payload(result))
        assert not list(tmp_path.rglob("*.tmp"))

    def test_get_entry_text_is_canonical(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        result = simulate(spec.system, spec.workload, spec.params)
        cache.put(spec, result)
        entry = cache.get_entry(spec)
        assert entry is not None
        text, round_tripped = entry
        assert text == canonical_json(result_payload(result))
        assert result_payload(round_tripped) == result_payload(result)


class TestSaltPriming:
    def test_primed_salt_overrides_computation(self):
        computed = code_version_salt()
        prime_code_version_salt("feedfacecafebeef")
        try:
            assert code_version_salt() == "feedfacecafebeef"
            assert ResultCache("unused").salt == "feedfacecafebeef"
        finally:
            import repro.runtime.cache as cache_module

            cache_module._primed_salt = None
        assert code_version_salt() == computed


class TestStatsAndPrune:
    def _fill(self, tmp_path, topologies, salt=None):
        cache = ResultCache(tmp_path) if salt is None else ResultCache(tmp_path, salt=salt)
        for topology in topologies:
            spec = _spec(topology)
            cache.put(spec, simulate(spec.system, spec.workload, spec.params))
        return cache

    def test_stats_cover_every_salt(self, tmp_path):
        self._fill(tmp_path, ["2:4", "2:5"])
        self._fill(tmp_path, ["2:6"], salt="0123456789abcdef")
        stats = ResultCache(tmp_path).stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert "0123456789abcdef" in stats.salts
        assert code_version_salt() in stats.salts
        assert "entries" in stats.describe()

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache = self._fill(tmp_path, ["2:4", "2:5", "2:6"])
        paths = [cache.path_for(_spec(t)) for t in ("2:4", "2:5", "2:6")]
        # Deterministic mtime order regardless of write speed.
        for age, path in enumerate(paths):
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        keep = paths[2].stat().st_size  # newest entry alone fits
        report = cache.prune(max_bytes=keep)
        assert report.removed_entries == 2
        assert report.kept_entries == 1
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists()
        assert cache.stats().total_bytes <= keep

    def test_prune_zero_removes_everything_and_empty_dirs(self, tmp_path):
        cache = self._fill(tmp_path, ["2:4", "2:5"])
        report = cache.prune(max_bytes=0)
        assert report.kept_entries == 0
        assert report.removed_entries == 2
        # entry subdirectories are cleaned up with their entries
        assert not list(tmp_path.rglob("*.json"))
        assert not any(p.is_dir() for p in tmp_path.iterdir())

    def test_prune_noop_when_under_budget(self, tmp_path):
        cache = self._fill(tmp_path, ["2:4"])
        before = cache.stats()
        report = cache.prune(max_bytes=before.total_bytes)
        assert report.removed_entries == 0
        assert report.kept_bytes == before.total_bytes

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).prune(max_bytes=-1)
