"""Tests for point specs: canonical hashing and per-point seeds."""

import math

from repro.core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.runtime import PointSpec, derive_point_seed
from repro.runtime.serialization import (
    result_from_payload,
    result_payload,
    summary_from_payload,
    summary_payload,
)
from repro.core.simulation import simulate
from repro.core.statistics import Summary

WORKLOAD = WorkloadConfig(locality=1.0, miss_rate=0.1, outstanding=4)
PARAMS = SimulationParams(batch_cycles=100, batches=2, seed=7)


class TestPointKey:
    def test_key_is_stable_and_spelling_invariant(self):
        """The same point spelled differently must hash identically."""
        a = PointSpec.of(RingSystemConfig(topology="2:4"), WORKLOAD, PARAMS)
        b = PointSpec.of(RingSystemConfig(topology=(2, 4)), WORKLOAD, PARAMS)
        assert a.key() == b.key()

    def test_key_distinguishes_points(self):
        a = PointSpec.of(RingSystemConfig(topology="2:4"), WORKLOAD, PARAMS)
        b = PointSpec.of(RingSystemConfig(topology="2:5"), WORKLOAD, PARAMS)
        c = PointSpec.of(MeshSystemConfig(side=3), WORKLOAD, PARAMS)
        assert len({a.key(), b.key(), c.key()}) == 3

    def test_key_changes_with_params(self):
        a = PointSpec.of(RingSystemConfig(topology="2:4"), WORKLOAD, PARAMS)
        longer = SimulationParams(batch_cycles=200, batches=2, seed=7)
        b = PointSpec.of(RingSystemConfig(topology="2:4"), WORKLOAD, longer)
        assert a.key() != b.key()


class TestDerivedSeeds:
    def test_deterministic(self):
        system = RingSystemConfig(topology="2:4")
        assert derive_point_seed(system, WORKLOAD, 7) == derive_point_seed(
            system, WORKLOAD, 7
        )

    def test_distinct_points_get_distinct_streams(self):
        seeds = {
            derive_point_seed(RingSystemConfig(topology=(n,)), WORKLOAD, 7)
            for n in range(2, 20)
        }
        assert len(seeds) == 18

    def test_base_seed_changes_stream(self):
        system = RingSystemConfig(topology="2:4")
        assert derive_point_seed(system, WORKLOAD, 1) != derive_point_seed(
            system, WORKLOAD, 2
        )

    def test_of_replaces_base_seed(self):
        system = RingSystemConfig(topology="2:4")
        spec = PointSpec.of(system, WORKLOAD, PARAMS)
        assert spec.params.seed == derive_point_seed(system, WORKLOAD, PARAMS.seed)
        assert spec.params.batch_cycles == PARAMS.batch_cycles

    def test_run_length_does_not_change_stream(self):
        """Longer runs of the same system extend the same random stream."""
        system = RingSystemConfig(topology="2:4")
        short = PointSpec.of(system, WORKLOAD, PARAMS)
        long = PointSpec.of(
            system, WORKLOAD, SimulationParams(batch_cycles=500, batches=4, seed=7)
        )
        assert short.params.seed == long.params.seed


class TestResultSerialization:
    def test_summary_round_trips_nan_and_inf(self):
        for summary in (
            Summary(mean=10.0, half_width=1.5, batch_means=(9.0, 11.0)),
            Summary(mean=math.nan, half_width=math.nan, batch_means=()),
            Summary(mean=5.0, half_width=math.inf, batch_means=(5.0,)),
        ):
            restored = summary_from_payload(summary_payload(summary))
            assert restored.batch_means == summary.batch_means
            if math.isnan(summary.mean):
                assert math.isnan(restored.mean)
            else:
                assert restored.mean == summary.mean
                assert restored.half_width == summary.half_width

    def test_simulation_result_round_trips(self):
        spec = PointSpec.of(RingSystemConfig(topology="2:4"), WORKLOAD, PARAMS)
        result = simulate(spec.system, spec.workload, spec.params)
        restored = result_from_payload(result_payload(result))
        assert restored.system == result.system
        assert restored.workload == result.workload
        assert restored.params == result.params
        assert restored.cycles == result.cycles
        assert restored.latency.mean == result.latency.mean
        assert restored.utilization.keys() == result.utilization.keys()
        assert restored.remote_transactions == result.remote_transactions
        assert restored.flits_moved == result.flits_moved
