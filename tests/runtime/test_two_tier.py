"""Two-tier caching and single-flight dedup in the point runner."""

from repro.core.config import RingSystemConfig, SimulationParams, WorkloadConfig
from repro.runtime import (
    GLOBAL_MEMCACHE,
    PointSpec,
    Progress,
    ProgressPrinter,
    ResultCache,
    run_points,
)
from repro.runtime.serialization import result_payload

WORKLOAD = WorkloadConfig(locality=1.0, miss_rate=0.1, outstanding=4)
PARAMS = SimulationParams(batch_cycles=100, batches=2, seed=7)


def _spec(n):
    return PointSpec.of(RingSystemConfig(topology=(n,)), WORKLOAD, PARAMS)


class TestMemoryTier:
    def test_second_run_hits_memory_not_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [_spec(3), _spec(4)]
        trackers: list[Progress] = []
        first = run_points(specs, jobs=1, cache=cache, progress=trackers.append)
        assert trackers[-1].memcache_hits == 0
        # Disk entries removed: the memory tier alone must serve.
        assert cache.clear() == 2
        trackers.clear()
        second = run_points(specs, jobs=1, cache=cache, progress=trackers.append)
        assert trackers[-1].cache_hits == 2
        assert trackers[-1].memcache_hits == 2
        assert [result_payload(r) for r in first] == [
            result_payload(r) for r in second
        ]

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [_spec(5)]
        run_points(specs, jobs=1, cache=cache)
        # Forget the memory tier, keep disk.
        GLOBAL_MEMCACHE.clear()
        trackers: list[Progress] = []
        run_points(specs, jobs=1, cache=cache, progress=trackers.append)
        assert trackers[-1].cache_hits == 1
        assert trackers[-1].memcache_hits == 0  # came from disk...
        trackers.clear()
        run_points(specs, jobs=1, cache=cache, progress=trackers.append)
        assert trackers[-1].memcache_hits == 1  # ...and was promoted

    def test_memory_tier_is_partitioned_by_cache_root(self, tmp_path):
        """A fresh disk cache must not be served by another root's
        memory entries (otherwise tests and tools with separate cache
        dirs would cross-contaminate through process-wide state)."""
        spec = _spec(6)
        run_points([spec], jobs=1, cache=ResultCache(tmp_path / "a"))
        other = ResultCache(tmp_path / "b")
        trackers: list[Progress] = []
        run_points([spec], jobs=1, cache=other, progress=trackers.append)
        assert trackers[-1].cache_hits == 0
        assert other.entry_count() == 1


class TestSingleFlightDedup:
    def test_duplicate_specs_computed_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(7)
        specs = [spec, spec, spec, _spec(8)]
        trackers: list[Progress] = []
        results = run_points(specs, jobs=1, cache=cache, progress=trackers.append)
        tracker = trackers[-1]
        assert tracker.done == 4
        assert tracker.dedup_hits == 2
        assert tracker.computed == 2
        assert cache.entry_count() == 2
        payloads = [result_payload(r) for r in results]
        assert payloads[0] == payloads[1] == payloads[2]

    def test_duplicates_deduped_without_cache(self):
        spec = _spec(9)
        trackers: list[Progress] = []
        results = run_points(
            [spec, spec], jobs=1, cache=None, progress=trackers.append
        )
        assert trackers[-1].dedup_hits == 1
        assert result_payload(results[0]) == result_payload(results[1])

    def test_parallel_duplicates_computed_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(10)
        trackers: list[Progress] = []
        results = run_points(
            [spec] * 4, jobs=2, cache=cache, progress=trackers.append
        )
        assert trackers[-1].dedup_hits == 3
        assert trackers[-1].computed == 1
        assert len({id(r) for r in results}) == 1


class TestTelemetryCounters:
    def test_misses_property(self):
        progress = Progress(total=4, done=4, cache_hits=1, dedup_hits=2)
        assert progress.computed == 1
        assert progress.misses == 3

    def test_summary_mentions_tiers_and_dedup(self, tmp_path):
        import io

        printer = ProgressPrinter(io.StringIO(), live=False)
        cache = ResultCache(tmp_path)
        spec = _spec(11)
        run_points([spec, spec], jobs=1, cache=cache, progress=printer.update)
        run_points([spec], jobs=1, cache=cache, progress=printer.update)
        summary = printer.summary()
        assert "1 cache hits" in summary
        assert "1 mem / 0 disk" in summary
        assert "1 deduplicated" in summary

    def test_summary_plain_without_new_counters(self):
        printer = ProgressPrinter.__new__(ProgressPrinter)
        printer.points = 4
        printer.cache_hits = 4
        printer.memcache_hits = 0
        printer.dedup_hits = 0
        # The CI replay grep depends on this exact substring.
        assert "cache hits (100%)" in printer.summary()
