"""Tests for the parallel point runner: ordering, caching, determinism."""

import json

import pytest

from repro.core.config import RingSystemConfig, SimulationParams, WorkloadConfig
from repro.core.errors import ConfigurationError
from repro.experiments._shared import clear_sweep_caches
from repro.experiments.base import Scale, get_experiment
from repro.runtime import (
    PointSpec,
    Progress,
    ResultCache,
    resolve_jobs,
    run_point,
    run_points,
    runtime_context,
)
from repro.runtime.serialization import result_payload

WORKLOAD = WorkloadConfig(locality=1.0, miss_rate=0.1, outstanding=4)
PARAMS = SimulationParams(batch_cycles=100, batches=2, seed=7)

SPECS = [
    PointSpec.of(RingSystemConfig(topology=(n,)), WORKLOAD, PARAMS)
    for n in (3, 4, 5, 6)
]


def _payloads(results):
    return [result_payload(r) for r in results]


class TestRunPoints:
    def test_results_in_input_order(self):
        results = run_points(SPECS, jobs=1, cache=None)
        assert [r.system.processors for r in results] == [3, 4, 5, 6]

    def test_parallel_matches_serial_exactly(self):
        serial = run_points(SPECS, jobs=1, cache=None)
        parallel = run_points(SPECS, jobs=3, cache=None)
        assert _payloads(serial) == _payloads(parallel)

    def test_progress_hook_sees_every_point(self):
        seen = []
        run_points(SPECS, jobs=1, cache=None, progress=lambda p: seen.append(p.done))
        assert seen == [1, 2, 3, 4]

    def test_cache_hits_reported(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_points(SPECS, jobs=1, cache=cache)
        trackers: list[Progress] = []
        replay = run_points(SPECS, jobs=1, cache=cache, progress=trackers.append)
        assert trackers[-1].cache_hits == len(SPECS)
        assert trackers[-1].computed == 0
        assert _payloads(replay) == _payloads(run_points(SPECS, jobs=1, cache=None))

    def test_parallel_run_fills_and_uses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_points(SPECS, jobs=2, cache=cache)
        assert cache.entry_count() == len(SPECS)
        trackers: list[Progress] = []
        second = run_points(SPECS, jobs=2, cache=cache, progress=trackers.append)
        assert trackers[-1].cache_hits == len(SPECS)
        assert _payloads(first) == _payloads(second)

    def test_run_point_single(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_point(SPECS[0], cache=cache)
        assert result.system.processors == 3
        assert cache.entry_count() == 1


class TestJobResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        with runtime_context(jobs=2):
            assert resolve_jobs() == 2
        assert resolve_jobs() == 4

    def test_explicit_overrides_context(self):
        with runtime_context(jobs=2):
            assert resolve_jobs(3) == 3

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)


MICRO = Scale(
    name="quick",
    sim=SimulationParams(batch_cycles=250, batches=2, seed=5),
    max_nodes=26,
    t_values=(2,),
    cache_lines=(32,),
    mesh_sides=(2, 3),
    locality_values=(0.2,),
    run_checks=False,
)


class TestFigureSweepDeterminism:
    def test_fig6_identical_json_serial_vs_parallel(self):
        """The acceptance bar: a figure sweep at --jobs 1 and --jobs N
        produces byte-identical series JSON."""
        experiment = get_experiment("fig6")
        clear_sweep_caches()
        with runtime_context(cache=None):
            serial = experiment.run(MICRO, jobs=1).to_json()
        clear_sweep_caches()
        with runtime_context(cache=None):
            parallel = experiment.run(MICRO, jobs=2).to_json()
        assert serial == parallel
        assert json.loads(serial)["series"]

    def test_fig6_cache_replay_identical(self, tmp_path):
        experiment = get_experiment("fig6")
        cache = ResultCache(tmp_path)
        clear_sweep_caches()
        with runtime_context(cache=cache):
            cold = experiment.run(MICRO, jobs=1).to_json()
        assert cache.entry_count() > 0
        trackers: list[Progress] = []
        clear_sweep_caches()
        with runtime_context(cache=cache, progress=trackers.append):
            warm = experiment.run(MICRO, jobs=1).to_json()
        assert warm == cold
        assert sum(t.cache_hits == t.total for t in trackers if t.done == t.total)
