"""Tests for the in-memory LRU result-cache tier."""

import pytest

from repro.core.config import RingSystemConfig, SimulationParams, WorkloadConfig
from repro.core.simulation import simulate
from repro.runtime import MemCache, PointSpec
from repro.runtime.memcache import entry_key
from repro.runtime.serialization import canonical_json, result_payload

WORKLOAD = WorkloadConfig(locality=1.0, miss_rate=0.1, outstanding=4)
PARAMS = SimulationParams(batch_cycles=100, batches=2, seed=7)


@pytest.fixture(scope="module")
def sample():
    spec = PointSpec.of(RingSystemConfig(topology="2:4"), WORKLOAD, PARAMS)
    result = simulate(spec.system, spec.workload, spec.params)
    return result, canonical_json(result_payload(result))


class TestMemCache:
    def test_miss_then_hit_round_trip(self, sample):
        result, text = sample
        cache = MemCache(max_entries=4, max_bytes=1 << 20)
        assert cache.get("k1") is None
        cache.put("k1", text, result)
        hit = cache.get("k1")
        assert hit is not None
        assert hit[0] == text
        assert hit[1] is result
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.bytes == len(text.encode("utf-8"))

    def test_lru_eviction_order(self, sample):
        result, text = sample
        cache = MemCache(max_entries=2, max_bytes=1 << 20)
        cache.put("a", text, result)
        cache.put("b", text, result)
        assert cache.get("a") is not None  # bumps "a" over "b"
        cache.put("c", text, result)
        assert cache.get("b") is None  # LRU evicted
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats().evictions == 1

    def test_byte_bound_evicts(self, sample):
        result, text = sample
        size = len(text.encode("utf-8"))
        cache = MemCache(max_entries=100, max_bytes=2 * size)
        cache.put("a", text, result)
        cache.put("b", text, result)
        cache.put("c", text, result)
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.stats().bytes <= 2 * size

    def test_oversized_entry_not_stored(self, sample):
        result, text = sample
        cache = MemCache(max_entries=10, max_bytes=len(text) // 2)
        cache.put("a", text, result)
        assert cache.get("a") is None
        assert cache.stats().bytes == 0

    def test_replacing_key_adjusts_bytes(self, sample):
        result, text = sample
        cache = MemCache(max_entries=10, max_bytes=1 << 20)
        cache.put("a", text, result)
        cache.put("a", text, result)
        assert len(cache) == 1
        assert cache.stats().bytes == len(text.encode("utf-8"))

    def test_zero_bounds_disable(self, sample):
        result, text = sample
        cache = MemCache(max_entries=0, max_bytes=0)
        assert not cache.enabled
        cache.put("a", text, result)
        assert len(cache) == 0

    def test_clear(self, sample):
        result, text = sample
        cache = MemCache()
        cache.put("a", text, result)
        cache.put("b", text, result)
        assert cache.clear() == 2
        assert cache.stats().bytes == 0
        assert cache.get("a") is None

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            MemCache(max_entries=-1)

    def test_entry_key_separates_roots_and_salts(self):
        assert entry_key("/a", "s1", "k") != entry_key("/b", "s1", "k")
        assert entry_key("/a", "s1", "k") != entry_key("/a", "s2", "k")
        assert entry_key("/a", "s1", "k") == entry_key("/a", "s1", "k")
