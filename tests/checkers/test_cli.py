"""CLI tests: exit codes, flag validation, JSON output."""

import json
from pathlib import Path

from repro.checkers.cli import EXIT_LINT, EXIT_MODEL, EXIT_OK, main

FIXTURES = Path(__file__).parent / "fixtures" / "violations"


def test_violation_fixtures_exit_nonzero(capsys):
    status = main(["--lint-only", "--root", str(FIXTURES)])
    assert status == EXIT_LINT
    out = capsys.readouterr().out
    assert "RPR001" in out and "RPR002" in out


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "core").mkdir()
    (tmp_path / "core" / "ok.py").write_text("VALUE = 1\n", encoding="utf-8")
    assert main(["--lint-only", "--root", str(tmp_path)]) == EXIT_OK
    assert "0 finding(s)" in capsys.readouterr().out


def test_mutually_exclusive_flags_rejected(capsys):
    status = main(["--lint-only", "--model-only"])
    assert status == EXIT_MODEL
    assert "mutually exclusive" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_OK
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR002", "RPR003", "RPR004"):
        assert code in out


def test_json_output_carries_findings(capsys):
    status = main(["--lint-only", "--json", "--root", str(FIXTURES)])
    assert status == EXIT_LINT
    payload = json.loads(capsys.readouterr().out)
    assert payload["root"] == str(FIXTURES)
    codes = {finding["code"] for finding in payload["lint"]}
    assert {"RPR001", "RPR002", "RPR003", "RPR004"} <= codes
    assert payload["model"] == []


def test_strict_flag_reports_blanket_noqa(capsys):
    status = main(["--lint-only", "--strict", "--root", str(FIXTURES)])
    assert status == EXIT_LINT
    assert "RPR000" in capsys.readouterr().out
