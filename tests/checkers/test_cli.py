"""CLI tests: exit codes, flag validation, JSON schema round-trips."""

import json
from pathlib import Path

from repro.checkers.cdg import CycleWitness, ProofResult
from repro.checkers.cli import EXIT_LINT, EXIT_MODEL, EXIT_OK, JSON_SCHEMA_VERSION, main
from repro.checkers.model import ModelFinding

FIXTURES = Path(__file__).parent / "fixtures" / "violations"


def test_violation_fixtures_exit_nonzero(capsys):
    status = main(["--lint-only", "--root", str(FIXTURES)])
    assert status == EXIT_LINT
    out = capsys.readouterr().out
    assert "RPR001" in out and "RPR002" in out


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "core").mkdir()
    (tmp_path / "core" / "ok.py").write_text("VALUE = 1\n", encoding="utf-8")
    assert main(["--lint-only", "--root", str(tmp_path)]) == EXIT_OK
    assert "0 finding(s)" in capsys.readouterr().out


def test_mutually_exclusive_flags_rejected(capsys):
    status = main(["--lint-only", "--model-only"])
    assert status == EXIT_MODEL
    assert "mutually exclusive" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_OK
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
        assert code in out


def test_json_output_carries_findings(capsys):
    status = main(["--lint-only", "--json", "--root", str(FIXTURES)])
    assert status == EXIT_LINT
    payload = json.loads(capsys.readouterr().out)
    assert payload["root"] == str(FIXTURES)
    codes = {finding["code"] for finding in payload["lint"]}
    assert {"RPR001", "RPR002", "RPR003", "RPR004"} <= codes
    assert payload["model"] == []


def test_strict_flag_reports_blanket_noqa(capsys):
    status = main(["--lint-only", "--strict", "--root", str(FIXTURES)])
    assert status == EXIT_LINT
    assert "RPR000" in capsys.readouterr().out


def test_routing_proofs_excludes_other_modes(capsys):
    status = main(["--routing-proofs", "--lint-only"])
    assert status == EXIT_MODEL
    assert "mutually exclusive" in capsys.readouterr().err


def test_routing_proofs_json_schema_round_trips(capsys):
    status = main(["--routing-proofs", "--json"])
    assert status == EXIT_OK
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == JSON_SCHEMA_VERSION
    assert payload["lint"] == [] and payload["model"] == []
    proofs = payload["proofs"]
    assert len(proofs) == 11
    # Every entry round-trips: from_payload(payload(x)) re-emits the
    # identical JSON object, so the documented schema is faithful.
    for entry in proofs:
        assert ProofResult.from_payload(entry).payload() == entry
    rejected = [p for p in proofs if not p["certified"]]
    assert [p["spec"] for p in rejected] == ["torus-no-dateline"]
    witness = rejected[0]["witness"]
    assert witness is not None
    assert CycleWitness.from_payload(witness).payload() == witness


def test_model_finding_payload_round_trips():
    witness = CycleWitness(channels=("a.E", "b.W"), destinations=(3, 7))
    finding = ModelFinding("deadlock-freedom", "spec-x", "cycle", witness=witness)
    restored = ModelFinding.from_payload(finding.payload())
    assert restored.payload() == finding.payload()
    assert restored.witness is not None
    assert restored.witness.channels == ("a.E", "b.W")
    # Destination tokens serialize as strings by design.
    assert restored.witness.destinations == ("3", "7")

    bare = ModelFinding("ring-wiring", "ring-2level", "gap")
    assert ModelFinding.from_payload(bare.payload()) == bare


def test_witness_artifacts_written_on_proof_failure(tmp_path, monkeypatch, capsys):
    # Force one expectation break by patching the suite: claim the
    # no-dateline torus should certify.
    import repro.checkers.cli as cli_module

    def broken_report():
        from repro.checkers.model import routing_proof_report

        results, findings = routing_proof_report()
        finding = ModelFinding(
            "routing-proof",
            "torus-no-dateline",
            "forced failure",
            witness=CycleWitness(channels=("a",), destinations=("0",)),
        )
        return results, findings + [finding]

    monkeypatch.setattr(cli_module, "routing_proof_report", broken_report)
    witness_dir = tmp_path / "artifacts"
    status = main(["--routing-proofs", "--witness-dir", str(witness_dir)])
    assert status == EXIT_MODEL
    artifact = witness_dir / "routing-proof-failures.json"
    assert artifact.exists()
    payload = json.loads(artifact.read_text())
    assert payload["schema"] == JSON_SCHEMA_VERSION
    assert payload["failures"][0]["subject"] == "torus-no-dateline"
    assert payload["failures"][0]["witness"]["channels"] == ["a"]
