"""Spec-algebra and CDG-prover tests over the geometry-built specs.

The paper-family ring/mesh verdicts are covered by
``tests/checkers/test_model.py``; this file exercises the new fabric
of the prover itself — the torus dateline argument (positive and
negative), the adaptive escape discharge, the deflection livelock
bound, and the witness machinery.
"""

from dataclasses import replace

from repro.checkers.cdg import CycleWitness, prove, replay_witness
from repro.checkers.specs import (
    DELIVER,
    RoutingSpec,
    SpecChannel,
    adaptive_mesh_spec,
    ecube_mesh_spec,
    mesh_legal_outputs,
    ring_deflection_spec,
    torus_spec,
)
from repro.mesh.routing import LOCAL
from repro.mesh.topology import MeshShape, TorusShape


# ----------------------------------------------------------------------
# e-cube mesh
# ----------------------------------------------------------------------
def test_ecube_mesh_certified_acyclic():
    proof = prove(ecube_mesh_spec(MeshShape(4)))
    assert proof.certified
    assert proof.method == "acyclic-cdg"
    assert proof.witness is None
    assert proof.states > 0 and proof.edges > 0


def test_mesh_legal_outputs_is_singleton_dimension_order():
    shape = MeshShape(3)
    table = mesh_legal_outputs(shape)
    assert set(table) == {
        (n, d) for n in range(shape.processors) for d in range(shape.processors)
    }
    for (node, dest), legal in table.items():
        assert len(legal) == 1
        if node == dest:
            assert legal == frozenset({LOCAL})
        else:
            assert legal <= {"N", "S", "E", "W"}


# ----------------------------------------------------------------------
# torus dateline argument
# ----------------------------------------------------------------------
def test_torus_with_dateline_certified():
    proof = prove(torus_spec(TorusShape(4), dateline=True))
    assert proof.certified
    assert proof.method == "acyclic-cdg"


def test_torus_without_dateline_rejected_with_minimal_witness():
    spec = torus_spec(TorusShape(4), dateline=False)
    proof = prove(spec)
    assert not proof.certified
    witness = proof.witness
    assert witness is not None
    # The shortest undischarged cycle is one full unidirectional ring.
    assert len(witness) == 4
    assert witness.format() in proof.detail
    # The witness replays as a real reachable dependency chain.
    assert replay_witness(spec, witness) is None


def test_torus_witness_replay_rejects_tampering():
    spec = torus_spec(TorusShape(4), dateline=False)
    witness = prove(spec).witness
    reversed_cycle = CycleWitness(
        channels=witness.channels[::-1], destinations=witness.destinations
    )
    assert replay_witness(spec, reversed_cycle) is not None


# ----------------------------------------------------------------------
# adaptive escape discharge
# ----------------------------------------------------------------------
def test_adaptive_mesh_certified_via_escape_subnetwork():
    proof = prove(adaptive_mesh_spec(MeshShape(3)))
    assert proof.certified
    assert proof.method == "escape-subnetwork"


def test_adaptive_mesh_without_escape_channels_rejected():
    spec = adaptive_mesh_spec(MeshShape(3))
    stripped = replace(
        spec,
        channels=tuple(replace(c, escape=False) for c in spec.channels),
    )
    proof = prove(stripped)
    assert not proof.certified
    assert "no escape channels" in proof.detail
    assert proof.witness is not None
    assert replay_witness(stripped, proof.witness) is None


# ----------------------------------------------------------------------
# deflection livelock bound
# ----------------------------------------------------------------------
def test_ring_deflection_certified_by_livelock_bound():
    proof = prove(ring_deflection_spec(8))
    assert proof.certified
    assert proof.method == "deflection-livelock-bound"


def test_deflection_without_age_priority_rejected():
    spec = replace(ring_deflection_spec(6), priority="fixed")
    proof = prove(spec)
    assert not proof.certified
    assert "priority" in proof.detail
    assert proof.witness is not None


def test_deflection_without_productive_outputs_rejected():
    spec = replace(ring_deflection_spec(5), productive={})
    proof = prove(spec)
    assert not proof.certified
    assert "productive" in proof.detail


# ----------------------------------------------------------------------
# spec hygiene rejections
# ----------------------------------------------------------------------
def test_undeclared_start_channel_rejected():
    spec = RoutingSpec(
        name="bad-start",
        kind="deterministic",
        channels=(SpecChannel("a"),),
        starts={0: frozenset({"ghost"})},
        moves={},
    )
    proof = prove(spec)
    assert not proof.certified
    assert "not declared" in proof.detail


def test_reachable_dead_end_rejected_as_non_total():
    spec = RoutingSpec(
        name="dead-end",
        kind="deterministic",
        channels=(SpecChannel("a"), SpecChannel("b")),
        starts={0: frozenset({"a"})},
        moves={("a", 0): frozenset({"b"})},
    )
    proof = prove(spec)
    assert not proof.certified
    assert "not total" in proof.detail


def test_self_loop_is_a_length_one_witness():
    spec = RoutingSpec(
        name="self-loop",
        kind="deterministic",
        channels=(SpecChannel("a"),),
        starts={0: frozenset({"a"})},
        moves={("a", 0): frozenset({"a"})},
    )
    proof = prove(spec)
    assert not proof.certified
    assert proof.witness is not None
    assert len(proof.witness) == 1
    assert replay_witness(spec, proof.witness) is None
