"""RPR005 fixture: unsorted json serialization of dict payloads."""

import json
from json import dumps

RESULTS = {"b": 1, "a": 2}


def emit(stream):
    text = json.dumps({"b": 1, "a": 2})  # line 10: dict literal
    json.dump(RESULTS, stream)  # line 11: module-level dict name
    blob = dumps(dict(x=1))  # line 12: imported alias over dict()
    payload = make_payload()
    return text, blob, json.dumps(payload)  # line 14: payload-builder result


def make_payload():
    return {"k": 0}


def fine(stream):
    # Sorted, non-dict, dynamic and suppressed uses must stay silent.
    json.dumps({"a": 1}, sort_keys=True)
    json.dump(RESULTS, stream, sort_keys=True)
    json.dumps([1, 2, 3])
    json.dumps(RESULTS, sort_keys=bool(stream))
    json.dumps(RESULTS)  # repro: noqa[RPR005]
