"""RPR002 fixture: wall clock and module-level RNG."""

import random
import time
from time import monotonic

import numpy as np
from numpy.random import default_rng


def jitter():
    return random.random() + time.time()  # lines flagged twice


def unseeded():
    return random.Random()  # unseeded: OS entropy


def uptime():
    return monotonic()  # imported nondeterministic source


def numpy_global_stream():
    return np.random.rand(4)  # module-level numpy RNG


def numpy_unseeded():
    return np.random.default_rng()  # unseeded: OS entropy


def numpy_unseeded_import():
    return default_rng()  # unseeded via imported name


def sanctioned(seed):
    return random.Random(seed)  # seeded construction: NOT flagged


def numpy_sanctioned(seed):
    gen = np.random.Generator(np.random.Philox(key=seed))  # keyed: NOT flagged
    return gen, default_rng(seed)  # seeded: NOT flagged
