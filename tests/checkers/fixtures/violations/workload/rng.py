"""RPR002 fixture: wall clock and module-level RNG."""

import random
import time
from time import monotonic


def jitter():
    return random.random() + time.time()  # lines flagged twice


def unseeded():
    return random.Random()  # unseeded: OS entropy


def uptime():
    return monotonic()  # imported nondeterministic source


def sanctioned(seed):
    return random.Random(seed)  # seeded construction: NOT flagged
