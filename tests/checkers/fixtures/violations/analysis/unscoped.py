"""Out-of-scope fixture: RPR001 does not apply to analysis/."""

LEVELS = {"local", "global"}


def names():
    collected = []
    for level in LEVELS:  # RPR001-shaped, but analysis/ is out of scope
        collected.append(level)
    return collected
