"""RPR004 fixture: float accumulation into an integer counter."""


class Meter:
    def __init__(self):
        self.flits_moved = 0
        self.total_weight = 0.0

    def bump(self, amount):
        self.flits_moved += amount / 2  # line 10: float into counter
        self.total_weight += amount / 2  # not a counter name: fine
