"""RPR003 fixture: a component mutating engine state off-phase."""

from repro.core.engine import Component


class BadComponent(Component):
    def __init__(self, buffer):
        self._buffer = buffer
        self._fill()  # reachable from a phase root: allowed below

    def _fill(self):
        self._buffer.push(None)  # reachable from __init__: NOT flagged

    def update(self, engine):
        engine.flits_moved += 0  # phase hook itself: NOT flagged
        self._buffer.pop()

    def cheat(self, engine):
        engine.cycle = 99  # line 19: engine state outside phase hooks
        self._buffer.push(None)  # line 20: buffer mutation off-phase
