"""RPR001 fixture: unordered-set iteration in a core-scoped module."""

ITEMS = {3, 1, 2}


def walk(mapping, other):
    total = 0
    for item in ITEMS:  # line 8: iterating a set literal
        total += item
    order = list(mapping.keys() | other.keys())  # line 10: keys-algebra
    return total, order


def fine(mapping):
    # Ordered / order-insensitive uses that must NOT be flagged.
    for item in sorted(ITEMS):
        pass
    return len(ITEMS), max(ITEMS), list(mapping)
