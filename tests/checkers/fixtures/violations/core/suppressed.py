"""Suppression fixture: coded noqa is silent, blanket noqa is RPR000.

A docstring merely *mentioning* ``# repro: noqa`` must not suppress
anything (only comment tokens count).
"""

BAD = {1, 2}


def coded():
    for item in BAD:  # repro: noqa[RPR001]
        print(item)


def blanket():
    for item in BAD:  # repro: noqa
        print(item)
