"""Lint-engine tests against on-disk fixture violations."""

from pathlib import Path

import pytest

import repro
from repro.checkers.lint import Finding, all_rules, lint_file, lint_tree

FIXTURES = Path(__file__).parent / "fixtures" / "violations"
PACKAGE_ROOT = Path(repro.__file__).parent


def by_file(findings: list[Finding]) -> dict[str, list[Finding]]:
    grouped: dict[str, list[Finding]] = {}
    for finding in findings:
        grouped.setdefault(finding.path, []).append(finding)
    return grouped


@pytest.fixture(scope="module")
def fixture_findings() -> dict[str, list[Finding]]:
    return by_file(lint_tree(FIXTURES))


def test_rpr001_set_iteration(fixture_findings):
    found = fixture_findings["core/set_iter.py"]
    assert [f.code for f in found] == ["RPR001", "RPR001"]
    # The for-loop over the set literal and the list() over keys-algebra.
    assert [f.line for f in found] == [8, 10]
    # Ordered wrappers (sorted/len/max) in the same file stay silent.


def test_rpr002_nondeterministic_sources(fixture_findings):
    found = fixture_findings["workload/rng.py"]
    assert [f.code for f in found] == ["RPR002"] * 7
    # random.random() and time.time() share line 12; then the unseeded
    # Random(), the imported monotonic(), the module-level numpy stream,
    # and the two unseeded default_rng() spellings.  Seeded Random(seed)
    # and seeded/keyed numpy generator construction pass.
    assert [f.line for f in found] == [12, 12, 16, 20, 24, 28, 32]
    numpy_findings = [f for f in found if "numpy" in f.message]
    assert len(numpy_findings) == 3
    assert any("shared global stream" in f.message for f in numpy_findings)
    assert any("without a seed" in f.message for f in numpy_findings)


def test_rpr003_phase_discipline(fixture_findings):
    found = fixture_findings["core/phase.py"]
    assert [f.code for f in found] == ["RPR003", "RPR003"]
    # Only the unreachable method is flagged: __init__, the helper it
    # calls, and the update() hook are all inside the phase closure.
    assert [f.line for f in found] == [19, 20]
    assert all("BadComponent.cheat" in f.message for f in found)


def test_rpr004_float_counter(fixture_findings):
    found = fixture_findings["core/float_counter.py"]
    assert [(f.code, f.line) for f in found] == [("RPR004", 10)]
    assert "flits_moved" in found[0].message


def test_rpr005_unsorted_json_payload(fixture_findings):
    found = fixture_findings["runtime/json_dump.py"]
    assert [f.code for f in found] == ["RPR005"] * 4
    # Dict literal, module-level dict name, dict() through the imported
    # alias, and a *_payload() builder result; every compliant spelling
    # (sort_keys=True, list payload, dynamic sort_keys, coded noqa) in
    # the same file stays silent.
    assert [f.line for f in found] == [10, 11, 12, 14]
    assert all("sort_keys=True" in f.message for f in found)
    assert any("json.dump()" in f.message for f in found)


def test_scope_excludes_analysis_from_rpr001(fixture_findings):
    # analysis/ iterates a set but RPR001's scope does not cover it.
    assert "analysis/unscoped.py" not in fixture_findings


def test_noqa_suppresses_without_strict(fixture_findings):
    # Both the coded and the blanket noqa suppress their RPR001 lines.
    assert "core/suppressed.py" not in fixture_findings


def test_blanket_noqa_reported_under_strict():
    strict = by_file(lint_tree(FIXTURES, strict=True))
    found = strict["core/suppressed.py"]
    assert [(f.code, f.line) for f in found] == [("RPR000", 16)]
    # The docstring mentioning '# repro: noqa' contributes nothing:
    # only comment tokens count.


def test_repo_tree_is_clean_under_strict():
    """The shipped package must lint clean, blanket opt-outs included."""
    assert lint_tree(PACKAGE_ROOT, strict=True) == []


def test_syntax_error_reported_as_rpr999(tmp_path):
    bad = tmp_path / "core"
    bad.mkdir()
    target = bad / "broken.py"
    target.write_text("def oops(:\n", encoding="utf-8")
    findings = lint_file(target, tmp_path)
    assert [f.code for f in findings] == ["RPR999"]
    assert findings[0].path == "core/broken.py"


def test_docstring_noqa_does_not_suppress(tmp_path):
    core = tmp_path / "core"
    core.mkdir()
    target = core / "doc.py"
    target.write_text(
        '"""Mentions # repro: noqa in prose only."""\n'
        "ITEMS = {1, 2}\n"
        "for item in ITEMS:\n"
        "    pass\n",
        encoding="utf-8",
    )
    findings = lint_file(target, tmp_path)
    assert [f.code for f in findings] == ["RPR001"]


def test_registry_exposes_the_documented_rules():
    codes = [r.code for r in all_rules()]
    assert codes == sorted(codes)
    assert {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005"} <= set(codes)
