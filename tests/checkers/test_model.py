"""Static model-checker tests: clean topologies and damaged networks."""

import pytest

from repro.checkers.model import (
    _build_mesh_network,
    _build_ring_network,
    paper_mesh_configs,
    paper_ring_configs,
    verify_mesh_network,
    verify_ring_network,
)
from repro.core.config import MeshSystemConfig, RingSystemConfig


def ring_config(**kwargs) -> RingSystemConfig:
    kwargs.setdefault("topology", (4,))
    kwargs.setdefault("cache_line_bytes", 64)
    return RingSystemConfig(**kwargs)


# ----------------------------------------------------------------------
# clean topologies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("topology", [(4,), "2:4", "2:2:2"])
def test_clean_ring_topologies_verify(topology):
    assert verify_ring_network(ring_config(topology=topology)) == []


@pytest.mark.parametrize("side", [2, 4])
def test_clean_mesh_topologies_verify(side):
    assert verify_mesh_network(MeshSystemConfig(side=side)) == []


def test_structure_only_mode_skips_route_walks():
    assert verify_ring_network(ring_config(), routes=False) == []


# ----------------------------------------------------------------------
# damaged ring networks
# ----------------------------------------------------------------------
def test_shrunken_transit_buffer_reported():
    network = _build_ring_network(ring_config())
    network.nics[0].transit_buffer.capacity = 1  # < one cl packet
    checks = {f.check for f in verify_ring_network(network)}
    assert checks == {"buffer-capacity"}


def test_bounded_ejection_sink_reported():
    network = _build_ring_network(ring_config())
    network.nics[0].pm.in_queue.capacity = 4
    findings = verify_ring_network(network)
    # Must report the protocol-deadlock hazard without crashing the
    # route walk (the bounded sink enters the wait-for graph).
    assert {f.check for f in findings} == {"ejection-sink"}


def test_miswired_ring_reported():
    network = _build_ring_network(ring_config())
    first, second = network.nics[0], network.nics[1]
    first.downstream, second.downstream = second.downstream, first.downstream
    checks = {f.check for f in verify_ring_network(network)}
    assert "ring-wiring" in checks
    assert "routing-totality" in checks


# ----------------------------------------------------------------------
# damaged mesh networks
# ----------------------------------------------------------------------
def test_shrunken_mesh_input_buffer_reported():
    network = _build_mesh_network(MeshSystemConfig(side=2))
    network.routers[0].input_buffers["N"].capacity = 1
    checks = {f.check for f in verify_mesh_network(network)}
    assert checks == {"buffer-capacity"}


def test_bounded_mesh_ejection_sink_reported():
    network = _build_mesh_network(MeshSystemConfig(side=2))
    network.routers[0].pm.in_queue.capacity = 2
    checks = {f.check for f in verify_mesh_network(network)}
    assert checks == {"ejection-sink"}


# ----------------------------------------------------------------------
# paper coverage
# ----------------------------------------------------------------------
def test_paper_config_sets_are_populated():
    rings = paper_ring_configs()
    meshes = paper_mesh_configs()
    assert len(rings) > 50 and len(meshes) > 50
    assert all(isinstance(c, RingSystemConfig) for c in rings)
    assert all(isinstance(c, MeshSystemConfig) for c in meshes)
