"""End-to-end tests: a real service in a thread, driven over HTTP."""

import threading

import pytest

from repro.core.config import RingSystemConfig, SimulationParams, WorkloadConfig
from repro.runtime import MemCache, PointSpec, ResultCache, run_point
from repro.runtime.serialization import canonical_json, result_payload
from repro.service import (
    ServiceClient,
    ServiceError,
    SweepService,
    start_in_thread,
)

WORKLOAD = WorkloadConfig(locality=1.0, miss_rate=0.1, outstanding=4)
PARAMS = SimulationParams(batch_cycles=150, batches=2, seed=7)


def _payload(seed):
    return PointSpec(
        system=RingSystemConfig(topology="2:4"),
        workload=WORKLOAD,
        params=SimulationParams(
            batch_cycles=PARAMS.batch_cycles, batches=PARAMS.batches, seed=seed
        ),
    ).payload()


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache_root = tmp_path_factory.mktemp("service-cache")
    svc = SweepService(
        "127.0.0.1",
        0,  # ephemeral port
        shards=1,
        workers_per_shard=2,
        cache=ResultCache(cache_root),
        mem=MemCache(),
        job_workers=2,
    )
    handle = start_in_thread(svc)
    client = ServiceClient("127.0.0.1", svc.port)
    yield svc, client
    client.shutdown()
    handle.stop()


class TestEndpoints:
    def test_healthz(self, service):
        svc, client = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["salt"] == svc.salt

    def test_point_computed_then_served_from_memory(self, service):
        __, client = service
        payload = _payload(seed=21)
        first, source_first = client.run_point(payload)
        second, source_second = client.run_point(payload)
        assert source_first == "computed"
        assert source_second == "mem"
        assert first == second

    def test_served_text_is_byte_identical_to_run_point(self, service):
        __, client = service
        payload = _payload(seed=22)
        served, __source = client.run_point(payload)
        direct = run_point(PointSpec.from_payload(payload), cache=None)
        assert served == canonical_json(result_payload(direct))

    def test_derive_seed_accepted(self, service):
        __, client = service
        payload = _payload(seed=1)
        del payload["params"]["seed"]
        text, source = client.run_point(payload, derive_seed=True)
        assert source in ("mem", "disk", "dedup", "computed")
        assert text.startswith("{")

    def test_job_lifecycle_with_results_and_events(self, service):
        __, client = service
        payloads = [_payload(seed) for seed in (31, 32, 33)]
        job_id = client.submit_job(payloads, priority=3)
        status = client.wait_for_job(job_id)
        assert status["state"] == "done"
        assert status["done"] == status["total"] == 3
        assert status["error"] is None

        with_results = client.job_status(job_id, results=True)
        results = with_results["results"]
        assert len(results) == 3
        # Spliced results are byte-exact: re-serializing each element
        # canonically must reproduce the spliced text.
        for payload, parsed in zip(payloads, results):
            direct = run_point(PointSpec.from_payload(payload), cache=None)
            assert canonical_json(parsed) == canonical_json(result_payload(direct))

        events = list(client.stream_events(job_id))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "accepted"
        assert kinds[1] == "started"
        assert kinds.count("point") == 3
        assert kinds[-1] == "finished"
        assert events[-1]["final"] is True
        assert events[-1]["state"] == "done"

    def test_stats_shape(self, service):
        __, client = service
        stats = client.stats()
        assert set(stats) >= {"uptime_sec", "requests", "tiers", "pools", "jobs"}
        assert set(stats["tiers"]["sources"]) == {"mem", "disk", "dedup", "computed"}
        assert stats["requests"].get("GET /healthz", 0) >= 1


class TestBadRequests:
    def test_unknown_route_is_404(self, service):
        __, client = service
        status, __, ___ = client._request("GET", "/nope")
        assert status == 404

    def test_invalid_json_body_is_400(self, service):
        __, client = service
        status, text, __ = client._request("POST", "/points")
        assert status == 400
        assert "JSON" in text

    def test_malformed_point_is_400(self, service):
        __, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.run_point({"system": {"kind": "nonsense"}})
        assert excinfo.value.status == 400

    def test_empty_job_is_400(self, service):
        __, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit_job([])
        assert excinfo.value.status == 400

    def test_non_integer_priority_is_400(self, service):
        __, client = service
        with pytest.raises(ServiceError) as excinfo:
            client._json(
                "POST", "/jobs", {"points": [_payload(1)], "priority": "high"}
            )
        assert excinfo.value.status == 400

    def test_unknown_job_is_400(self, service):
        __, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.job_status("job-424242")
        assert excinfo.value.status == 400


class TestThunderingHerd:
    def test_identical_concurrent_requests_simulate_once(self, service):
        """A herd of identical requests collapses onto one simulation.

        Every client's connection is open and parked at a barrier before
        any request fires, and the simulation is sized to far outlast
        the request fan-in, so all non-leader requests land while the
        leader is still in flight.
        """
        svc, __ = service
        herd = 8
        payload = PointSpec(
            system=RingSystemConfig(topology="2:4"),
            workload=WORKLOAD,
            params=SimulationParams(batch_cycles=2500, batches=3, seed=515151),
        ).payload()
        clients = [ServiceClient("127.0.0.1", svc.port) for __i in range(herd)]
        for client in clients:
            client.healthz()  # force the connection open before the barrier
        computed_before = svc.tiers.counters["computed"]

        barrier = threading.Barrier(herd)
        texts = [None] * herd
        sources = [None] * herd

        def fire(index):
            barrier.wait()
            texts[index], sources[index] = clients[index].run_point(payload)

        threads = [
            threading.Thread(target=fire, args=(index,)) for index in range(herd)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for client in clients:
            client.close()

        assert svc.tiers.counters["computed"] - computed_before == 1
        assert sources.count("computed") == 1
        assert len(set(texts)) == 1
