"""Regression tests for finished-job retention.

``SweepService.jobs`` used to grow without bound: every submitted job
stayed in the tracking dict forever, so a long-running service leaked
one ``Job`` (specs, results, event log) per sweep ever submitted.
Terminal jobs are now retired by a TTL and a max-tracked cap — oldest
completion first, queued/running jobs never touched — and asking for an
evicted id is ``410 Gone`` (the id *was* real), distinct from ``400``
for an id this service never issued.
"""

import pytest

from repro.core.config import RingSystemConfig, SimulationParams, WorkloadConfig
from repro.core.errors import ConfigurationError
from repro.runtime import MemCache, PointSpec, ResultCache
from repro.service import Job, ServiceClient, ServiceError, SweepService, start_in_thread
from repro.service.app import Gone

WORKLOAD = WorkloadConfig(locality=1.0, miss_rate=0.1, outstanding=4)


def _service(**kwargs):
    return SweepService("127.0.0.1", 0, shards=1, workers_per_shard=1, **kwargs)


def _finished_job(service, job_id_num, finished_at):
    """Register a terminal job as ``_run_job`` would have left it."""
    job = Job(job_id=f"job-{job_id_num}", specs=[], state="done")
    job.finished_at = finished_at
    service.jobs[job.job_id] = job
    service._job_seq = max(service._job_seq, job_id_num)
    return job


class TestRetirement:
    def test_cap_evicts_oldest_completion_first(self):
        service = _service(job_ttl_sec=None, max_finished_jobs=2)
        for num, finished_at in ((1, 30.0), (2, 10.0), (3, 20.0)):
            _finished_job(service, num, finished_at)
        service._retire_finished()
        # job-2 finished earliest -> evicted; the cap keeps the rest.
        assert sorted(service.jobs) == ["job-1", "job-3"]
        assert service.jobs_evicted == 1

    def test_ttl_evicts_expired_jobs(self, monkeypatch):
        import repro.service.app as app

        service = _service(job_ttl_sec=100.0, max_finished_jobs=64)
        _finished_job(service, 1, 50.0)    # age 950 -> expired
        _finished_job(service, 2, 980.0)   # age 20 -> kept
        monkeypatch.setattr(app.time, "monotonic", lambda: 1000.0)
        service._retire_finished()
        assert sorted(service.jobs) == ["job-2"]
        assert service.jobs_evicted == 1

    def test_running_and_queued_jobs_never_evicted(self):
        service = _service(job_ttl_sec=None, max_finished_jobs=1)
        for num, state in ((1, "queued"), (2, "running")):
            job = Job(job_id=f"job-{num}", specs=[], state=state)
            service.jobs[job.job_id] = job
            service._job_seq = num
        _finished_job(service, 3, 1.0)
        _finished_job(service, 4, 2.0)
        service._retire_finished()
        assert sorted(service.jobs) == ["job-1", "job-2", "job-4"]

    def test_evicted_id_is_gone_unknown_id_is_bad_request(self):
        from repro.service.app import BadRequest

        service = _service(job_ttl_sec=None, max_finished_jobs=1)
        _finished_job(service, 1, 1.0)
        _finished_job(service, 2, 2.0)
        service._retire_finished()
        with pytest.raises(Gone):
            service._job_or_bad_request("job-1")
        assert service._job_or_bad_request("job-2").job_id == "job-2"
        for bogus in ("job-3", "job-0", "job-x", "sweep-1"):
            with pytest.raises(BadRequest):
                service._job_or_bad_request(bogus)

    def test_stats_report_retention(self):
        service = _service(job_ttl_sec=None, max_finished_jobs=1)
        _finished_job(service, 1, 1.0)
        _finished_job(service, 2, 2.0)
        stats = service.stats_payload()
        jobs = stats["jobs"]
        assert jobs["evicted"] == 1
        assert jobs["retention"] == {"ttl_sec": None, "max_finished": 1}

    def test_retention_knobs_validated(self):
        with pytest.raises(ConfigurationError):
            _service(job_ttl_sec=0.0)
        with pytest.raises(ConfigurationError):
            _service(job_ttl_sec=-5.0)
        with pytest.raises(ConfigurationError):
            _service(max_finished_jobs=0)


class TestOverHttp:
    """End to end: a capped service really answers 410 for evicted ids."""

    @pytest.fixture()
    def service(self, tmp_path):
        svc = _service(
            cache=ResultCache(tmp_path / "cache"),
            mem=MemCache(),
            job_workers=1,
            job_ttl_sec=None,
            max_finished_jobs=1,
        )
        handle = start_in_thread(svc)
        client = ServiceClient("127.0.0.1", svc.port)
        yield svc, client
        client.shutdown()
        handle.stop()

    def _submit_and_wait(self, client, seed):
        spec = PointSpec(
            system=RingSystemConfig(topology="2:2"),
            workload=WORKLOAD,
            params=SimulationParams(batch_cycles=60, batches=2, seed=seed),
        )
        job_id = client.submit_job([spec.payload()])
        status = client.wait_for_job(job_id)
        assert status["state"] == "done"
        return job_id

    def test_second_job_evicts_first(self, service):
        __, client = service
        first = self._submit_and_wait(client, seed=1)
        second = self._submit_and_wait(client, seed=2)

        with pytest.raises(ServiceError) as gone:
            client.job_status(first)
        assert gone.value.status == 410
        assert "evicted" in str(gone.value)

        assert client.job_status(second)["state"] == "done"

        with pytest.raises(ServiceError) as bad:
            client.job_status("job-999")
        assert bad.value.status == 400

        stats = client.stats()
        assert stats["jobs"]["evicted"] >= 1
