"""Unit tests for the service building blocks (no HTTP, no threads)."""

import asyncio

import pytest

from repro.core.config import RingSystemConfig, SimulationParams, WorkloadConfig
from repro.core.simulation import simulate
from repro.runtime import MemCache, PointSpec, ResultCache
from repro.runtime.serialization import canonical_json, result_payload
from repro.service import EventLog, Job, JobQueue, TieredCache

WORKLOAD = WorkloadConfig(locality=1.0, miss_rate=0.1, outstanding=4)
PARAMS = SimulationParams(batch_cycles=100, batches=2, seed=7)


def _spec(n=4):
    return PointSpec.of(RingSystemConfig(topology=(n,)), WORKLOAD, PARAMS)


@pytest.fixture(scope="module")
def sample():
    spec = _spec()
    return spec, simulate(spec.system, spec.workload, spec.params)


class TestJobQueue:
    def test_priority_order_fifo_within_priority(self):
        async def run():
            queue = JobQueue()
            for index, priority in enumerate([0, 5, 5, 1]):
                await queue.push(Job(job_id=f"j{index}", specs=[], priority=priority))
            assert len(queue) == 4
            return [(await queue.pop()).job_id for __ in range(4)]

        assert asyncio.run(run()) == ["j1", "j2", "j3", "j0"]

    def test_close_drains_then_returns_none(self):
        async def run():
            queue = JobQueue()
            await queue.push(Job(job_id="j1", specs=[]))
            await queue.close()
            drained = await queue.pop()
            assert drained is not None and drained.job_id == "j1"
            assert await queue.pop() is None
            with pytest.raises(RuntimeError):
                await queue.push(Job(job_id="j2", specs=[]))

        asyncio.run(run())

    def test_close_wakes_blocked_pop(self):
        async def run():
            queue = JobQueue()
            waiter = asyncio.create_task(queue.pop())
            await asyncio.sleep(0)
            await queue.close()
            return await asyncio.wait_for(waiter, timeout=5)

        assert asyncio.run(run()) is None

    def test_job_status_payload(self, sample):
        spec, __ = sample
        job = Job(job_id="j1", specs=[spec, spec])
        assert job.total == 2 and job.done == 0
        job.results[0] = "{}"
        job.sources[0] = "mem"
        status = job.status_payload()
        assert status["done"] == 1
        assert status["sources"] == {"mem": 1}
        assert status["state"] == "queued"


class TestEventLog:
    def test_subscriber_sees_history_and_live_events(self):
        async def run():
            log = EventLog()
            await log.append({"event": "a"})

            async def subscribe():
                return [event["event"] async for event in log.stream()]

            task = asyncio.create_task(subscribe())
            await asyncio.sleep(0)
            await log.append({"event": "b"})
            await log.append({"event": "c", "final": True})
            return await asyncio.wait_for(task, timeout=5)

        assert asyncio.run(run()) == ["a", "b", "c"]

    def test_multiple_subscribers_each_get_every_event(self):
        async def run():
            log = EventLog()

            async def subscribe():
                return [event["event"] async for event in log.stream()]

            tasks = [asyncio.create_task(subscribe()) for __ in range(3)]
            await asyncio.sleep(0)
            await log.append({"event": "x"})
            await log.append({"event": "y", "final": True})
            return await asyncio.gather(*tasks)

        assert asyncio.run(run()) == [["x", "y"]] * 3

    def test_append_after_close_raises(self):
        async def run():
            log = EventLog()
            await log.append({"event": "end", "final": True})
            assert log.closed
            with pytest.raises(RuntimeError):
                await log.append({"event": "late"})

        asyncio.run(run())


class TestTieredCache:
    def test_compute_then_memory_hit(self, sample):
        spec, result = sample

        async def run():
            tiers = TieredCache(None, MemCache())

            async def compute():
                return result

            first = await tiers.fetch(spec, compute)
            second = await tiers.fetch(spec, compute)
            return first, second, dict(tiers.counters)

        first, second, counters = asyncio.run(run())
        expected = canonical_json(result_payload(result))
        assert first == (expected, "computed")
        assert second == (expected, "mem")
        assert counters["computed"] == 1 and counters["mem"] == 1

    def test_disk_tier_promotes_and_serves(self, sample, tmp_path):
        spec, result = sample

        async def run():
            tiers = TieredCache(ResultCache(tmp_path), MemCache())

            async def compute():
                return result

            await tiers.fetch(spec, compute)
            tiers.mem.clear()  # forget memory; disk must serve
            __, source = await tiers.fetch(spec, compute)
            assert source == "disk"
            __, source = await tiers.fetch(spec, compute)
            return source

        assert asyncio.run(run()) == "mem"  # the disk hit was promoted

    def test_single_flight_coalesces_concurrent_fetches(self, sample):
        spec, result = sample

        async def run():
            tiers = TieredCache(None, MemCache())
            release = asyncio.Event()
            calls = 0

            async def compute():
                nonlocal calls
                calls += 1
                await release.wait()
                return result

            leader = asyncio.create_task(tiers.fetch(spec, compute))
            await asyncio.sleep(0)  # leader registers in the inflight map
            assert tiers.inflight == 1
            waiters = [
                asyncio.create_task(tiers.fetch(spec, compute)) for __ in range(5)
            ]
            await asyncio.sleep(0)
            release.set()
            outcomes = await asyncio.gather(leader, *waiters)
            return calls, outcomes, dict(tiers.counters), tiers.inflight

        calls, outcomes, counters, inflight = asyncio.run(run())
        assert calls == 1
        assert {text for text, __ in outcomes} == {
            canonical_json(result_payload(sample[1]))
        }
        assert [source for __, source in outcomes] == ["computed"] + ["dedup"] * 5
        assert counters == {"mem": 0, "disk": 0, "dedup": 5, "computed": 1}
        assert inflight == 0

    def test_compute_failure_propagates_to_waiters_then_clears(self, sample):
        spec, result = sample

        async def run():
            tiers = TieredCache(None, MemCache())
            release = asyncio.Event()

            async def explode():
                await release.wait()
                raise RuntimeError("boom")

            leader = asyncio.create_task(tiers.fetch(spec, explode))
            await asyncio.sleep(0)
            waiter = asyncio.create_task(tiers.fetch(spec, explode))
            await asyncio.sleep(0)
            release.set()
            with pytest.raises(RuntimeError):
                await leader
            with pytest.raises(RuntimeError):
                await waiter
            assert tiers.inflight == 0

            async def recover():
                return result

            return await tiers.fetch(spec, recover)

        text, source = asyncio.run(run())
        assert source == "computed"
        assert text == canonical_json(result_payload(sample[1]))
