"""Unit tests for curve interpolation and cross-over detection."""

import pytest

from repro.analysis.crossover import crossover_point, interpolate
from repro.analysis.sweeps import Series


def series(name, points):
    s = Series(name)
    for x, y in points:
        s.add(x, y)
    return s


class TestInterpolate:
    def test_exact_points(self):
        s = series("s", [(0, 0), (10, 100)])
        assert interpolate(s, 0) == 0
        assert interpolate(s, 10) == 100

    def test_linear_between(self):
        s = series("s", [(0, 0), (10, 100)])
        assert interpolate(s, 5) == 50
        assert interpolate(s, 2.5) == 25

    def test_clamped_outside_range(self):
        s = series("s", [(2, 20), (4, 40)])
        assert interpolate(s, 0) == 20
        assert interpolate(s, 100) == 40

    def test_unsorted_input(self):
        s = series("s", [(10, 100), (0, 0)])
        assert interpolate(s, 5) == 50

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            interpolate(series("s", []), 1)


class TestCrossoverPoint:
    def test_simple_crossing(self):
        ring = series("ring", [(4, 10), (36, 90)])    # slope 2.5
        mesh = series("mesh", [(4, 40), (36, 72)])    # slope 1
        crossing = crossover_point(ring, mesh)
        assert crossing == pytest.approx(24.0)

    def test_no_crossing_returns_none(self):
        ring = series("ring", [(4, 10), (36, 20)])
        mesh = series("mesh", [(4, 40), (36, 80)])
        assert crossover_point(ring, mesh) is None

    def test_never_ahead_returns_left_edge(self):
        ring = series("ring", [(4, 100), (36, 300)])
        mesh = series("mesh", [(4, 40), (36, 80)])
        assert crossover_point(ring, mesh) == 4

    def test_different_sampling_grids(self):
        ring = series("ring", [(4, 10), (12, 30), (24, 60), (54, 200)])
        mesh = series("mesh", [(9, 40), (25, 55), (49, 75)])
        crossing = crossover_point(ring, mesh)
        # ring passes mesh between x=12 (30 vs ~42.8) and x=24 (60 vs ~54).
        assert crossing is not None
        assert 12 < crossing < 24

    def test_insufficient_overlap(self):
        ring = series("ring", [(4, 10), (8, 20)])
        mesh = series("mesh", [(100, 40), (121, 50)])
        assert crossover_point(ring, mesh) is None
