"""Tests for the Graphviz DOT exporters."""

import pytest

from repro.analysis.topology_dump import (
    mesh_network_dot,
    network_dot,
    ring_network_dot,
)
from repro.core.config import MeshSystemConfig, RingSystemConfig, WorkloadConfig
from repro.core.pm import MetricsHub
from repro.mesh.network import MeshNetwork
from repro.ring.network import HierarchicalRingNetwork


def ring_network(topology="2:3", speed=1):
    config = RingSystemConfig(
        topology=topology, cache_line_bytes=32, global_ring_speed=speed
    )
    return HierarchicalRingNetwork(config, WorkloadConfig(), MetricsHub())


def mesh_network(side=3):
    config = MeshSystemConfig(side=side, cache_line_bytes=32, buffer_flits=4)
    return MeshNetwork(config, WorkloadConfig(), MetricsHub())


class TestRingDot:
    def test_contains_every_component(self):
        network = ring_network()
        dot = ring_network_dot(network)
        for nic in network.nics:
            assert nic.name in dot
        for iri in network.iris.values():
            assert iri.lower_port.name in dot
            assert iri.upper_port.name in dot
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_edge_per_channel(self):
        network = ring_network()
        dot = ring_network_dot(network)
        solid_edges = [
            line for line in dot.splitlines()
            if "->" in line and "dashed" not in line
        ]
        assert len(solid_edges) == len(network.channels)

    def test_double_speed_marked(self):
        dot = ring_network_dot(ring_network("2:3:4", speed=2))
        assert "/2x" in dot

    def test_balanced_quotes(self):
        dot = ring_network_dot(ring_network())
        assert dot.count('"') % 2 == 0


class TestMeshDot:
    def test_contains_all_routers_and_links(self):
        network = mesh_network(3)
        dot = mesh_network_dot(network)
        for router in network.routers:
            assert router.name in dot
        edges = [line for line in dot.splitlines() if "->" in line]
        assert len(edges) == network.shape.internal_links()


class TestDispatch:
    def test_dispatches_by_type(self):
        assert "hierarchical_ring" in network_dot(ring_network())
        assert "mesh" in network_dot(mesh_network(2))

    def test_rejects_unknown(self):
        with pytest.raises(TypeError):
            network_dot(object())
