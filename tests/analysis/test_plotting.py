"""Unit tests for the dependency-free ASCII/SVG renderers."""

import math
import xml.etree.ElementTree as ET

from repro.analysis.plotting import (
    MARKERS,
    ascii_chart,
    render_svg,
    write_svg,
    _tick_values,
)
from repro.analysis.sweeps import SweepResult


def sample_result(series_count=2, points=5):
    result = SweepResult("Test chart", "nodes", "latency (cycles)")
    for index in range(series_count):
        series = result.new_series(f"series-{index}")
        for x in range(points):
            series.add(4 * (x + 1), 10.0 * (index + 1) + 5 * x)
    return result


SVG_NS = "{http://www.w3.org/2000/svg}"


class TestSVG:
    def test_well_formed_xml(self):
        svg = render_svg(sample_result())
        root = ET.fromstring(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_polyline_per_series(self):
        root = ET.fromstring(render_svg(sample_result(series_count=3)))
        polylines = root.findall(f".//{SVG_NS}polyline")
        # 3 data polylines (legend swatches are <line> elements).
        assert len(polylines) == 3

    def test_markers_drawn(self):
        root = ET.fromstring(render_svg(sample_result(series_count=2, points=4)))
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == 8

    def test_title_and_labels_escaped(self):
        result = SweepResult("a < b & c", "x<axis>", "y&label")
        series = result.new_series("s<1>")
        series.add(1, 2)
        svg = render_svg(result)
        ET.fromstring(svg)  # would raise on bad escaping
        assert "a &lt; b &amp; c" in svg

    def test_empty_result_renders_placeholder(self):
        result = SweepResult("Empty", "x", "y")
        result.new_series("nothing")
        svg = render_svg(result)
        assert "(no data)" in svg
        ET.fromstring(svg)

    def test_nan_points_skipped(self):
        result = SweepResult("NaN", "x", "y")
        series = result.new_series("s")
        series.add(1, 10.0)
        series.add(2, math.nan)
        series.add(3, 30.0)
        root = ET.fromstring(render_svg(result))
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == 2

    def test_write_svg(self, tmp_path):
        path = tmp_path / "chart.svg"
        write_svg(sample_result(), path)
        assert path.read_text().startswith("<svg")


class TestASCII:
    def test_contains_markers_and_legend(self):
        text = ascii_chart(sample_result(series_count=2))
        assert MARKERS[0] in text
        assert MARKERS[1] in text
        assert "series-0" in text
        assert "series-1" in text
        assert "Test chart" in text

    def test_empty(self):
        result = SweepResult("Empty", "x", "y")
        assert "(no data)" in ascii_chart(result)

    def test_flat_series_does_not_crash(self):
        result = SweepResult("Flat", "x", "y")
        series = result.new_series("s")
        series.add(1, 5.0)
        series.add(2, 5.0)
        assert "Flat" in ascii_chart(result)

    def test_single_point(self):
        result = SweepResult("One", "x", "y")
        result.new_series("s").add(3, 7.0)
        assert "One" in ascii_chart(result)


class TestTicks:
    def test_cover_range(self):
        ticks = _tick_values(0, 100)
        assert ticks[0] >= 0
        assert ticks[-1] <= 100
        assert len(ticks) >= 3

    def test_monotone(self):
        ticks = _tick_values(3.7, 412.2)
        assert ticks == sorted(ticks)

    def test_degenerate_range(self):
        assert _tick_values(5, 5) == [5]
