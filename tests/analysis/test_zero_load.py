"""Unit tests for the closed-form zero-load latency models.

(The agreement of these formulas with the simulator is asserted
exhaustively in tests/ring and tests/mesh; here we test the formulas'
own structure.)
"""

import pytest

from repro.analysis.zero_load import (
    mesh_average_zero_load,
    mesh_zero_load_round_trip,
    ring_path_length,
    ring_zero_load_round_trip,
    single_ring_round_trip,
)
from repro.core.config import MeshSystemConfig, RingSystemConfig
from repro.ring.topology import HierarchySpec


class TestRingPathLength:
    def test_zero_for_self(self):
        spec = HierarchySpec.parse("2:3:4")
        assert ring_path_length(spec, 5, 5) == 0

    def test_hierarchical_path_decomposition(self):
        spec = HierarchySpec.parse("2:2")
        # Local rings have 3 nodes (IRI + 2 NICs); global ring has 2.
        # 0 -> 2: NIC pos 1 -> IRI (2 hops), global 1 hop, down 1 hop to NIC pos 1.
        assert ring_path_length(spec, 0, 2) == 4

    def test_asymmetry_on_unidirectional_rings(self):
        spec = HierarchySpec.parse("2:3")
        forward = ring_path_length(spec, 0, 1)
        backward = ring_path_length(spec, 1, 0)
        assert forward == 1
        assert backward == 3  # must wrap past the IRI position


class TestRoundTripFormulas:
    def test_read_equals_write_on_ring(self):
        """Reads and writes serialize the same total flits."""
        config = RingSystemConfig(topology="2:3", cache_line_bytes=64)
        for src, dst in [(0, 1), (0, 5), (4, 2)]:
            read = ring_zero_load_round_trip(config, src, dst, is_read=True)
            write = ring_zero_load_round_trip(config, src, dst, is_read=False)
            assert read == write

    def test_single_ring_pair_independence(self):
        config = RingSystemConfig(topology="6", cache_line_bytes=32)
        trips = {
            ring_zero_load_round_trip(config, src, dst)
            for src in range(6)
            for dst in range(6)
            if src != dst
        }
        assert trips == {single_ring_round_trip(config)}

    def test_single_ring_formula_values(self):
        # N + cl_packet + header - 2 + memory: 6 + 3 + 1 - 2 + 10 = 18.
        config = RingSystemConfig(topology="6", cache_line_bytes=32)
        assert single_ring_round_trip(config) == 18

    def test_single_ring_requires_one_level(self):
        with pytest.raises(ValueError):
            single_ring_round_trip(RingSystemConfig(topology="2:3"))

    def test_memory_latency_is_additive(self):
        base = RingSystemConfig(topology="4", cache_line_bytes=32, memory_latency=0)
        slow = RingSystemConfig(topology="4", cache_line_bytes=32, memory_latency=25)
        assert single_ring_round_trip(slow) == single_ring_round_trip(base) + 25


class TestMeshFormulas:
    def test_symmetric_round_trip(self):
        config = MeshSystemConfig(side=4, cache_line_bytes=32)
        assert mesh_zero_load_round_trip(config, 0, 15) == mesh_zero_load_round_trip(
            config, 15, 0
        )

    def test_adjacent_pair_value(self):
        # 2*(1+1) + 4 + 12 - 2 + 10 = 28.
        config = MeshSystemConfig(side=3, cache_line_bytes=32)
        assert mesh_zero_load_round_trip(config, 0, 1) == 28

    def test_average_bounded_by_extremes(self):
        config = MeshSystemConfig(side=3, cache_line_bytes=64)
        average = mesh_average_zero_load(config)
        closest = mesh_zero_load_round_trip(config, 0, 1)
        farthest = mesh_zero_load_round_trip(config, 0, 8)
        assert closest < average < farthest

    def test_larger_cache_line_costs_more(self):
        small = MeshSystemConfig(side=3, cache_line_bytes=16)
        large = MeshSystemConfig(side=3, cache_line_bytes=128)
        assert mesh_zero_load_round_trip(large, 0, 5) > mesh_zero_load_round_trip(
            small, 0, 5
        )
