"""Tests for the analytic link-load (bisection bandwidth) model."""

import pytest

from repro.analysis.bandwidth import (
    max_sustainable_children,
    mesh_link_loads,
    ring_link_loads,
    ring_walk_channels,
)
from repro.analysis.zero_load import ring_path_length
from repro.core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.core.pm import MetricsHub
from repro.core.simulation import simulate
from repro.ring.network import HierarchicalRingNetwork
from repro.ring.topology import HierarchySpec


class TestRouteWalk:
    @pytest.mark.parametrize("topology", ["5", "2:3", "2:2:3"])
    def test_walk_length_matches_zero_load_model(self, topology):
        """Two independent route derivations must agree for all pairs."""
        config = RingSystemConfig(topology=topology, cache_line_bytes=32)
        network = HierarchicalRingNetwork(
            config, WorkloadConfig(), MetricsHub(), seed=1
        )
        spec = HierarchySpec.parse(topology)
        for src in range(spec.processors):
            for dst in range(spec.processors):
                if src == dst:
                    continue
                walked = len(ring_walk_channels(network, src, dst))
                assert walked == ring_path_length(spec, src, dst), (src, dst)

    def test_self_route_is_empty(self):
        config = RingSystemConfig(topology="4", cache_line_bytes=32)
        network = HierarchicalRingNetwork(
            config, WorkloadConfig(), MetricsHub(), seed=1
        )
        assert ring_walk_channels(network, 2, 2) == []


class TestRingLoadPrediction:
    def test_prediction_matches_measured_low_load(self):
        """Open-loop demand equals measured throughput when nothing
        saturates: per-link flit rates within ~15%."""
        config = RingSystemConfig(topology="2:4", cache_line_bytes=32)
        workload = WorkloadConfig(miss_rate=0.01, outstanding=4)
        report = ring_link_loads(config, workload)
        result = simulate(
            config, workload, SimulationParams(batch_cycles=8000, batches=4, seed=3)
        )
        predicted_total = sum(report.loads.values())
        measured_total = result.flits_moved / result.cycles
        # flits_moved also counts PM-internal queue hops (injection and
        # ejection transfers), which the link model excludes; compare
        # with a generous band.
        assert measured_total == pytest.approx(predicted_total, rel=0.35)

    def test_per_level_prediction_tracks_utilization(self):
        config = RingSystemConfig(topology="2:8", cache_line_bytes=32)
        workload = WorkloadConfig(miss_rate=0.01, outstanding=4)
        report = ring_link_loads(config, workload)
        result = simulate(
            config, workload, SimulationParams(batch_cycles=8000, batches=4, seed=3)
        )
        measured_global = result.utilization["global"].mean
        assert report.mean_load("global") == pytest.approx(measured_global, rel=0.2)

    def test_load_scales_linearly_with_miss_rate(self):
        config = RingSystemConfig(topology="2:4", cache_line_bytes=32)
        low = ring_link_loads(config, WorkloadConfig(miss_rate=0.01))
        high = ring_link_loads(config, WorkloadConfig(miss_rate=0.04))
        assert high.peak_load() == pytest.approx(4 * low.peak_load(), rel=1e-9)

    def test_locality_cuts_global_demand(self):
        config = RingSystemConfig(topology="3:3:8", cache_line_bytes=32)
        uniform = ring_link_loads(config, WorkloadConfig(locality=1.0))
        local = ring_link_loads(config, WorkloadConfig(locality=0.2))
        assert local.peak_load("global") < 0.5 * uniform.peak_load("global")

    def test_double_speed_halves_global_utilization(self):
        base = RingSystemConfig(topology="3:8", cache_line_bytes=32)
        fast = RingSystemConfig(
            topology="3:8", cache_line_bytes=32, global_ring_speed=2
        )
        u1 = ring_link_loads(base).peak_utilization("global")
        u2 = ring_link_loads(fast).peak_utilization("global")
        assert u2 == pytest.approx(u1 / 2, rel=1e-9)


class TestDesignRules:
    def test_three_rings_sit_at_the_knee(self):
        """The paper's 'three local rings' operating point is exactly
        where open-loop demand reaches the global ring's capacity (its
        measured utilization is 90-100% there, Figure 8): for every
        cache line size, two rings are below capacity and three are at
        1.0-1.8x of it.  Beyond three, demand clearly exceeds capacity
        and the latency knee of Figure 7 follows."""
        from repro.ring.topology import SINGLE_RING_MAX

        for cache_line in (16, 32, 64, 128):
            local = SINGLE_RING_MAX[cache_line]
            at = {}
            for fan in (2, 3, 4):
                config = RingSystemConfig(
                    topology=(fan, local), cache_line_bytes=cache_line
                )
                at[fan] = ring_link_loads(config).peak_utilization("global")
            assert at[2] <= 1.0, (cache_line, at)
            assert 1.0 < at[3] <= 1.8, (cache_line, at)
            assert at[4] > 1.8, (cache_line, at)

    def test_demand_linear_in_added_rings(self):
        """Peak global-link demand grows linearly with each local ring
        added beyond the first — proportional to (fan - 1): the hottest
        link carries everything a subtree exchanges with the others."""
        loads = {}
        for fan in (2, 3, 4):
            config = RingSystemConfig(topology=(fan, 8), cache_line_bytes=32)
            loads[fan] = ring_link_loads(config).peak_load("global")
        assert loads[3] == pytest.approx(2 * loads[2], rel=1e-9)
        assert loads[4] == pytest.approx(3 * loads[2], rel=1e-9)

    def test_paper_design_rules_with_knee_tolerance(self):
        """With the knee tolerance calibrated at the paper's default
        configuration (32B lines), the analytic rule gives the paper's
        three rings, and the 2x global ring shifts the knee to 4-5."""
        assert max_sustainable_children(32) == 3
        doubled = max_sustainable_children(32, global_ring_speed=2)
        assert doubled in (4, 5)
        assert doubled > max_sustainable_children(32)

    def test_saturated_levels_reported(self):
        report = ring_link_loads(
            RingSystemConfig(topology="5:8", cache_line_bytes=32)
        )
        assert "global" in report.saturated_levels()


class TestMeshLoadPrediction:
    def test_mesh_bisection_scales(self):
        """Per-link mesh demand grows much slower than ring global
        demand as the system scales — the paper's core scalability
        argument."""
        small = mesh_link_loads(MeshSystemConfig(side=3, cache_line_bytes=32))
        large = mesh_link_loads(MeshSystemConfig(side=6, cache_line_bytes=32))
        growth = large.peak_load() / small.peak_load()
        ring_small = ring_link_loads(RingSystemConfig(topology="3:3", cache_line_bytes=32))
        ring_large = ring_link_loads(RingSystemConfig(topology="2:3:6", cache_line_bytes=32))
        ring_growth = ring_large.peak_load("global") / ring_small.peak_load("global")
        assert growth < ring_growth

    def test_center_links_hotter_than_edges(self):
        report = mesh_link_loads(MeshSystemConfig(side=5, cache_line_bytes=32))
        assert report.peak_load() > 1.5 * min(report.loads.values())

    def test_prediction_matches_measured_low_load(self):
        config = MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=4)
        workload = WorkloadConfig(miss_rate=0.01, outstanding=4)
        report = mesh_link_loads(config, workload)
        result = simulate(
            config, workload, SimulationParams(batch_cycles=8000, batches=4, seed=3)
        )
        measured = result.utilization["mesh"].mean
        assert report.mean_load() == pytest.approx(measured, rel=0.2)
