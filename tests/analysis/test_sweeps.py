"""Unit tests for sweep utilities and topology growth schedules."""

import json

import pytest

from repro.analysis.sweeps import (
    Series,
    SweepResult,
    growth_topologies,
    hierarchy_sweep,
    mesh_sides,
    single_ring_sizes,
)
from repro.ring.topology import SINGLE_RING_MAX


class TestSeries:
    def test_add_and_lookup(self):
        s = Series("s")
        s.add(4, 10.0, note="a")
        s.add(8, 20.0)
        assert s.y_at(4) == 10.0
        assert s.as_points() == [(4, 10.0), (8, 20.0)]
        assert s.meta[0] == {"note": "a"}

    def test_y_at_matches_within_float_tolerance(self):
        """Regression: exact list.index matching broke on xs produced by
        float arithmetic (0.1 + 0.2 != 0.3)."""
        s = Series("s")
        s.add(0.1 + 0.2, 42.0)
        assert s.y_at(0.3) == 42.0
        assert s.has_x(0.3)
        assert s.index_of(0.3) == 0

    def test_y_at_unsampled_raises(self):
        s = Series("s")
        s.add(4, 10.0)
        assert not s.has_x(5)
        with pytest.raises(ValueError, match="not sampled"):
            s.y_at(5)

    def test_nondecreasing(self):
        s = Series("s")
        for x, y in [(1, 10), (2, 12), (3, 11.9)]:
            s.add(x, y)
        assert s.is_nondecreasing(slack=0.05)
        assert not s.is_nondecreasing(slack=0.0)


class TestSweepResult:
    def test_duplicate_series_rejected(self):
        result = SweepResult("t", "x", "y")
        result.new_series("a")
        with pytest.raises(ValueError):
            result.new_series("a")

    def test_format_table_alignment(self):
        result = SweepResult("Title", "nodes", "latency")
        a = result.new_series("ring")
        a.add(4, 10.0)
        a.add(8, 20.0)
        b = result.new_series("mesh")
        b.add(4, 30.0)
        result.notes.append("hello")
        text = result.format_table()
        assert "Title" in text
        assert "ring" in text and "mesh" in text
        assert "note: hello" in text

    def test_format_table_tolerant_x_membership(self):
        """A series sampled at a float-noise x must still fill its cell."""
        result = SweepResult("Title", "R", "latency")
        a = result.new_series("a")
        a.add(0.1 + 0.2, 10.0)
        b = result.new_series("b")
        b.add(0.3, 20.0)
        table = result.format_table()
        rows = [line for line in table.splitlines() if line.startswith("0.3")]
        assert len(rows) == 1
        assert "10.0" in rows[0] and "20.0" in rows[0]

    def test_to_json_round_trips(self):
        result = SweepResult("Title", "nodes", "latency")
        s = result.new_series("ring")
        s.add(4, 10.0)
        payload = json.loads(result.to_json())
        assert payload["series"]["ring"]["x"] == [4]
        assert payload["series"]["ring"]["y"] == [10.0]


class TestSingleRingSizes:
    def test_includes_design_max_neighborhood(self):
        sizes = single_ring_sizes(32, max_nodes=64)
        maximum = SINGLE_RING_MAX[32]
        assert maximum in sizes
        assert maximum + 2 in sizes
        assert 2 * maximum in sizes

    def test_respects_cap(self):
        assert all(n <= 10 for n in single_ring_sizes(16, max_nodes=10))


class TestGrowthTopologies:
    def test_single_level(self):
        schedule = growth_topologies(1, 32, max_nodes=12)
        assert all(len(branching) == 1 for __, branching in schedule)

    def test_two_level_grows_top_fan(self):
        schedule = growth_topologies(2, 32, max_nodes=100)
        assert schedule == [
            (16, (2, 8)), (24, (3, 8)), (32, (4, 8)), (40, (5, 8)), (48, (6, 8)),
        ]

    def test_three_level_inner_fixed_at_three(self):
        schedule = growth_topologies(3, 128, max_nodes=100)
        assert all(branching[1] == 3 for __, branching in schedule)
        assert all(branching[2] == SINGLE_RING_MAX[128] for __, branching in schedule)

    def test_node_counts_match_products(self):
        for levels in (1, 2, 3, 4):
            for nodes, branching in growth_topologies(levels, 16, max_nodes=400):
                product = 1
                for fan in branching:
                    product *= fan
                assert product == nodes

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            growth_topologies(0, 32, 10)


class TestHierarchySweep:
    def test_prefers_hierarchy_past_local_capacity(self):
        """A 16-node 32B system must be 2:8, not a 16-node single ring."""
        schedule = dict(hierarchy_sweep(2, 32, max_nodes=48))
        assert schedule[16] == (2, 8)
        assert schedule[8] == (8,)

    def test_sorted_and_unique(self):
        schedule = hierarchy_sweep(3, 32, max_nodes=150)
        nodes = [n for n, __ in schedule]
        assert nodes == sorted(nodes)
        assert len(nodes) == len(set(nodes))

    def test_lower_levels_capped_at_design_capacity(self):
        schedule = hierarchy_sweep(3, 32, max_nodes=150)
        for nodes, branching in schedule:
            if len(branching) == 1:
                assert nodes <= SINGLE_RING_MAX[32]
            elif len(branching) == 2:
                assert nodes <= 3 * SINGLE_RING_MAX[32]


class TestMeshSides:
    def test_default(self):
        assert mesh_sides(121) == [2, 3, 4, 5, 6, 7, 8, 9, 10, 11]

    def test_cap(self):
        assert mesh_sides(30) == [2, 3, 4, 5]
