"""Unit tests for the Table 1 arithmetic and the Table 2 search."""

from repro.analysis.tables import (
    format_table1,
    mesh_nic_buffer_bytes,
    ring_nic_buffer_bytes,
    table1_memory_requirements,
    table2_topology_search,
)
from repro.core.config import SimulationParams, WorkloadConfig


class TestTable1:
    def test_ring_nic_bytes_match_paper(self):
        """Ring column: cl-packet flits x 16B. Paper prints 32/48/80/144."""
        assert ring_nic_buffer_bytes(16) == 32
        assert ring_nic_buffer_bytes(32) == 48
        assert ring_nic_buffer_bytes(64) == 80
        assert ring_nic_buffer_bytes(128) == 144

    def test_mesh_cl_bytes_match_paper(self):
        assert mesh_nic_buffer_bytes(16, "cl") == 128
        assert mesh_nic_buffer_bytes(32, "cl") == 192
        assert mesh_nic_buffer_bytes(64, "cl") == 320
        assert mesh_nic_buffer_bytes(128, "cl") == 576

    def test_mesh_fixed_depth_bytes(self):
        for cache_line in (16, 32, 64, 128):
            assert mesh_nic_buffer_bytes(cache_line, 4) == 64
            assert mesh_nic_buffer_bytes(cache_line, 1) == 16

    def test_memory_ratio_claim(self):
        """Section 4: cl-sized buffers need 144x the memory of 1-flit
        buffers... per input buffer bank with 128B lines (36 flits vs 1
        would be 36x per buffer; the paper's 144B ring buffer vs the
        4x1-flit mesh bank is 9x) — we check the reproducible ratios."""
        assert mesh_nic_buffer_bytes(128, "cl") / mesh_nic_buffer_bytes(128, 1) == 36
        assert mesh_nic_buffer_bytes(128, 4) / mesh_nic_buffer_bytes(128, 1) == 4
        assert mesh_nic_buffer_bytes(128, "cl") / mesh_nic_buffer_bytes(128, 4) == 9

    def test_rows_cover_all_cache_lines(self):
        rows = table1_memory_requirements()
        assert [row.cache_line_bytes for row in rows] == [16, 32, 64, 128]

    def test_format_renders(self):
        text = format_table1()
        assert "Table 1" in text
        assert "576" in text


class TestTable2Search:
    def test_small_cell_search(self):
        """P=8, 128B: candidates are rankable and products are right."""
        ranking = table2_topology_search(
            8,
            128,
            workload=WorkloadConfig(outstanding=2),
            params=SimulationParams(batch_cycles=400, batches=3),
        )
        assert ranking.paper_choice == (2, 4)
        assert len(ranking.ranked) >= 2
        for branching, latency in ranking.ranked:
            product = 1
            for fan in branching:
                product *= fan
            assert product == 8
            assert latency > 0
        # Results are sorted best-first.
        latencies = [latency for __, latency in ranking.ranked]
        assert latencies == sorted(latencies)

    def test_paper_choice_rank_none_for_unknown_cell(self):
        ranking = table2_topology_search(
            16,
            32,
            params=SimulationParams(batch_cycles=300, batches=3),
        )
        assert ranking.paper_choice is None
        assert ranking.paper_choice_rank() is None
