"""Tests for the Markdown results reporter."""

import json

from repro.analysis.reporting import (
    ExperimentDigest,
    load_digests,
    summarize_results_dir,
)


def write_result(directory, experiment_id, scale="default", notes=(), series=None):
    payload = {
        "title": f"Title of {experiment_id}",
        "x_label": "nodes",
        "y_label": "latency",
        "series": series
        if series is not None
        else {"a": {"x": [4, 8], "y": [10.0, 20.0]}},
        "notes": list(notes),
    }
    (directory / f"{experiment_id}_{scale}.json").write_text(json.dumps(payload))


class TestLoadDigests:
    def test_parses_and_sorts(self, tmp_path):
        write_result(tmp_path, "fig14")
        write_result(tmp_path, "fig6")
        write_result(tmp_path, "table1")
        write_result(tmp_path, "ext-slotted")
        ids = [digest.experiment_id for digest in load_digests(tmp_path)]
        assert ids == ["table1", "fig6", "fig14", "ext-slotted"]

    def test_digest_contents(self, tmp_path):
        write_result(tmp_path, "fig7", notes=["knee at 24"])
        digest = load_digests(tmp_path)[0]
        assert digest.x_range == (4, 8)
        assert digest.y_range == (10.0, 20.0)
        assert digest.series_count == 1
        assert digest.notes == ["knee at 24"]
        assert digest.scale == "default"

    def test_nan_values_excluded_from_range(self):
        digest = ExperimentDigest.from_payload(
            "figX", "quick",
            {"title": "t", "series": {"a": {"x": [1, 2], "y": [float("nan"), 5.0]}}},
        )
        assert digest.y_range == (5.0, 5.0)

    def test_empty_series(self):
        digest = ExperimentDigest.from_payload(
            "figY", "quick", {"title": "t", "series": {"a": {"x": [], "y": []}}}
        )
        assert digest.x_range is None
        assert digest.y_range is None


class TestSummarize:
    def test_markdown_table(self, tmp_path):
        write_result(tmp_path, "fig14", notes=["cross-over 32B: 29 nodes"])
        write_result(tmp_path, "table1")
        text = summarize_results_dir(tmp_path)
        assert text.startswith("| experiment |")
        assert "| fig14 |" in text
        assert "cross-over 32B: 29 nodes" in text

    def test_empty_directory(self, tmp_path):
        assert "no experiment results" in summarize_results_dir(tmp_path)

    def test_cli_summarize(self, tmp_path, capsys):
        from repro.experiments.cli import main

        write_result(tmp_path, "fig6")
        assert main(["--summarize", str(tmp_path)]) == 0
        assert "| fig6 |" in capsys.readouterr().out

    def test_real_results_dir_if_present(self):
        """Smoke over the repository's own saved default-scale results."""
        import pathlib

        results = pathlib.Path("results/default")
        if not results.is_dir():
            return
        text = summarize_results_dir(results)
        assert "| fig14 |" in text
