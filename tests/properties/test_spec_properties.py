"""Property-based tests of the CDG prover over random routing specs.

Random *total* specs (every reachable ``(channel, dest)`` state has a
nonempty legal-output set), checked against an independent reference
reachability/cycle computation:

* **soundness of rejection** — a spec with no escape channels and no
  rotation groups is certified exactly when its reachable CDG is
  acyclic; any rejection carries a witness that replays as a real
  reachable dependency chain (so emitted witnesses are never artifacts
  of the search);
* **soundness of escape discharge** — when the prover certifies a
  *cyclic* spec via escape-subnetwork analysis, the Duato conditions
  actually hold: the escape-restricted CDG is acyclic and every
  reachable state can deliver or step into an escape channel.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkers.cdg import nontrivial_sccs, prove, replay_witness
from repro.checkers.specs import DELIVER, RoutingSpec, SpecChannel


def reference_cdg(spec):
    """Independent reachable-state and dependency-edge computation."""
    states = set()
    edges = {}
    pending = []
    for dest, start_channels in spec.starts.items():
        for channel in start_channels:
            if (channel, dest) not in states:
                states.add((channel, dest))
                pending.append((channel, dest))
    while pending:
        channel, dest = pending.pop()
        for successor in spec.moves.get((channel, dest), frozenset()):
            if successor == DELIVER:
                continue
            edges.setdefault(channel, set()).add(successor)
            if (successor, dest) not in states:
                states.add((successor, dest))
                pending.append((successor, dest))
    return states, edges


@st.composite
def random_specs(draw, with_escape=False):
    n = draw(st.integers(min_value=2, max_value=6))
    names = [f"c{i}" for i in range(n)]
    if with_escape:
        escape_flags = draw(
            st.lists(st.booleans(), min_size=n, max_size=n)
        )
    else:
        escape_flags = [False] * n
    channels = tuple(
        SpecChannel(name, escape=flag)
        for name, flag in zip(names, escape_flags)
    )
    dests = draw(st.integers(min_value=1, max_value=3))
    starts = {}
    moves = {}
    for dest in range(dests):
        starts[dest] = frozenset(
            draw(st.sets(st.sampled_from(names), min_size=1, max_size=n))
        )
        # Total by construction: every (channel, dest) state has at
        # least one legal output (possibly just DELIVER).
        for name in names:
            moves[(name, dest)] = frozenset(
                draw(
                    st.sets(
                        st.sampled_from(names + [DELIVER]),
                        min_size=1,
                        max_size=3,
                    )
                )
            )
    return RoutingSpec(
        name="random",
        kind="deterministic",
        channels=channels,
        starts=starts,
        moves=moves,
    )


@settings(deadline=None)
@given(random_specs())
def test_unescaped_cycle_always_rejected_with_replayable_witness(spec):
    proof = prove(spec)
    states, edges = reference_cdg(spec)
    has_cycle = bool(nontrivial_sccs(sorted(edges), edges))
    assert proof.certified == (not has_cycle)
    if proof.certified:
        assert proof.method == "acyclic-cdg"
    else:
        witness = proof.witness
        assert witness is not None
        assert replay_witness(spec, witness) is None
        # Replay aside, pin the witness to the *reference* reachable
        # set: every annotated (channel, dest) occupancy is real.
        for channel, dest in zip(witness.channels, witness.destinations):
            assert (channel, dest) in states


@settings(deadline=None)
@given(random_specs(with_escape=True))
def test_escape_discharge_is_sound(spec):
    proof = prove(spec)
    states, edges = reference_cdg(spec)
    has_cycle = bool(nontrivial_sccs(sorted(edges), edges))
    if not has_cycle:
        assert proof.certified
        return
    if proof.certified:
        # The prover discharged real cycles: the Duato conditions must
        # hold in the reference computation too.
        assert proof.method == "escape-subnetwork"
        escape = {c.name for c in spec.channels if c.escape}
        escape_edges = {
            channel: {s for s in successors if s in escape}
            for channel, successors in edges.items()
            if channel in escape
        }
        assert not nontrivial_sccs(sorted(escape_edges), escape_edges)
        for channel, dest in states:
            outputs = spec.moves.get((channel, dest), frozenset())
            assert DELIVER in outputs or any(c in escape for c in outputs)
    else:
        assert proof.witness is not None
        assert replay_witness(spec, proof.witness) is None
