"""Property-based end-to-end tests over randomly drawn systems.

For any design-legal hierarchy or mesh and any source/destination pair,
a single transaction on an idle network must complete and must take
exactly the closed-form zero-load time.  This generalizes the
fixed-topology tests in tests/ring and tests/mesh to the whole
configuration space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.zero_load import (
    mesh_zero_load_round_trip,
    ring_zero_load_round_trip,
)
from repro.core.config import MeshSystemConfig, RingSystemConfig, WorkloadConfig
from repro.core.engine import Engine
from repro.core.pm import MetricsHub
from repro.core.simulation import build_network

IDLE = WorkloadConfig(miss_rate=1e-9, outstanding=1)


@st.composite
def hierarchies(draw):
    levels = draw(st.integers(1, 3))
    branching = tuple(
        draw(st.integers(2, 4)) for _ in range(levels - 1)
    ) + (draw(st.integers(2, 6)),)
    return branching


def run_one(config, src, dst, is_read):
    metrics = MetricsHub()
    network = build_network(config, IDLE, metrics, seed=1)
    engine = Engine()
    network.register(engine)
    network.pms[src].issue_remote(dst, is_read=is_read, cycle=0)
    for _ in range(1500):
        engine.step()
        if metrics.remote_completed:
            return metrics.remote_latency.last
    raise AssertionError(f"{src}->{dst} never completed on {config}")


@given(
    branching=hierarchies(),
    pair=st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
    cache_line=st.sampled_from([16, 32, 64, 128]),
    is_read=st.booleans(),
    switching=st.sampled_from(["wormhole", "slotted"]),
)
@settings(max_examples=60, deadline=None)
def test_ring_single_transaction_matches_closed_form(
    branching, pair, cache_line, is_read, switching
):
    config = RingSystemConfig(
        topology=branching, cache_line_bytes=cache_line, switching=switching
    )
    processors = config.processors
    src = pair[0] % processors
    dst = pair[1] % processors
    if src == dst:
        dst = (dst + 1) % processors
    measured = run_one(config, src, dst, is_read)
    expected = ring_zero_load_round_trip(config, src, dst, is_read=is_read)
    assert measured == expected, (branching, src, dst, measured, expected)


@given(
    side=st.integers(2, 5),
    pair=st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
    cache_line=st.sampled_from([16, 32, 64, 128]),
    buffer_flits=st.sampled_from([1, 2, 4, "cl"]),
    is_read=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_mesh_single_transaction_matches_closed_form(
    side, pair, cache_line, buffer_flits, is_read
):
    config = MeshSystemConfig(
        side=side, cache_line_bytes=cache_line, buffer_flits=buffer_flits
    )
    processors = config.processors
    src = pair[0] % processors
    dst = pair[1] % processors
    if src == dst:
        dst = (dst + 1) % processors
    measured = run_one(config, src, dst, is_read)
    expected = mesh_zero_load_round_trip(config, src, dst, is_read=is_read)
    assert measured == expected, (side, src, dst, measured, expected)


@given(
    branching=hierarchies(),
    seed=st.integers(0, 10),
)
@settings(max_examples=15, deadline=None)
def test_ring_loaded_run_conserves_transactions(branching, seed):
    """Under load, every response decrements exactly one open txn and
    buffers stay flit-conserving (enqueued - dequeued == occupancy)."""
    config = RingSystemConfig(topology=branching, cache_line_bytes=32)
    metrics = MetricsHub()
    network = build_network(
        config, WorkloadConfig(miss_rate=0.04, outstanding=2), metrics, seed=seed
    )
    engine = Engine()
    network.register(engine)
    engine.run(400)
    open_count = sum(len(pm.open_transactions) for pm in network.pms)
    assert metrics.remote_issued == metrics.remote_completed + open_count
    for pm in network.pms:
        for buffer in (pm.in_queue, pm.out_req, pm.out_resp):
            assert buffer.flits_enqueued - buffer.flits_dequeued == buffer.occupancy
