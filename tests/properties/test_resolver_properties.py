"""Property-based tests of the engine's flow-control resolution.

Random buffer graphs where every buffer has at most one incoming and one
outgoing edge — the union of chains and cycles, which is exactly the
structure ring networks and wormhole paths induce.  After one cycle:

* **safety** — no buffer ever exceeds its capacity, flits are conserved;
* **maximality (greatest fixed point)** — any proposed transfer that
  did not commit was genuinely blocked: its destination ends the cycle
  completely full.  (A least-fixed-point/conservative resolver would
  fail this on full cycles, which must rotate.)

Every property runs under all four schedulers ("batched" as a lockstep
batch of one — the engine used exactly like a plain ``Engine`` forms a
single implicit replica).  The capacity assertion is load-bearing for
the compiled datapath specifically: its commit loop elides the per-flit
overflow check (`FlitBuffer.push`'s raise) on the strength of the
integer-loop resolver, so an overflow there would corrupt silently
rather than raise — only this invariant check would catch it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batched import BatchedEngine
from repro.core.buffers import FlitBuffer
from repro.core.engine import Component, Engine
from repro.core.packet import Packet, PacketType

SCHEDULERS = ("compiled", "active", "naive", "batched")


def make_engine(scheduler):
    if scheduler == "batched":
        return BatchedEngine()
    return Engine(scheduler=scheduler)


class Pipe(Component):
    def __init__(self, source, dest):
        self.source = source
        self.dest = dest

    def propose(self, engine):
        flit = self.source.peek()
        if flit is not None:
            engine.propose(flit, self.source, self.dest, None, self)


def flit_supply(n):
    return list(Packet(PacketType.READ_RESPONSE, 0, 1, max(n, 1), 0, 0).flits)


@st.composite
def buffer_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    capacities = [draw(st.integers(min_value=1, max_value=3)) for _ in range(n)]
    occupancies = [
        draw(st.integers(min_value=0, max_value=capacities[i])) for i in range(n)
    ]
    # A partial matching: each buffer feeds at most one other buffer and
    # is fed by at most one.  Encode as a permutation plus an edge mask.
    permutation = draw(st.permutations(range(n)))
    edge_mask = [draw(st.booleans()) for _ in range(n)]
    return n, capacities, occupancies, permutation, edge_mask


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@given(graph=buffer_graphs())
@settings(max_examples=300, deadline=None)
def test_one_cycle_is_safe_and_maximal(scheduler, graph):
    n, capacities, occupancies, permutation, edge_mask = graph
    buffers = [FlitBuffer(f"b{i}", capacity=capacities[i]) for i in range(n)]
    supply = iter(flit_supply(sum(occupancies) + 1))
    for i, count in enumerate(occupancies):
        for _ in range(count):
            buffers[i].push(next(supply))

    edges = [
        (i, permutation[i])
        for i in range(n)
        if edge_mask[i] and permutation[i] != i
    ]
    engine = make_engine(scheduler)
    for src, dst in edges:
        engine.add_component(Pipe(buffers[src], buffers[dst]))

    before_total = sum(b.occupancy for b in buffers)
    before_occupancy = [b.occupancy for b in buffers]
    engine.step()

    # Safety: capacity respected, flits conserved.
    for buffer, capacity in zip(buffers, capacities):
        assert buffer.occupancy <= capacity
    assert sum(b.occupancy for b in buffers) == before_total

    # Per-buffer flow bounds: at most one in, one out.
    for i, buffer in enumerate(buffers):
        assert abs(buffer.occupancy - before_occupancy[i]) <= 1

    # Maximality: a proposed-but-uncommitted transfer implies a full,
    # non-draining destination at end of cycle.
    moved = {
        (src, dst)
        for src, dst in edges
        if buffers[src].flits_dequeued > 0
    }
    for src, dst in edges:
        if before_occupancy[src] == 0:
            continue  # nothing to propose
        if (src, dst) in moved:
            continue
        assert buffers[dst].occupancy == capacities[dst], (
            f"edge {src}->{dst} was revoked although destination "
            f"b{dst} is not full after the cycle"
        )


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@given(
    length=st.integers(min_value=2, max_value=10),
    capacity=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=100, deadline=None)
def test_full_cycle_always_rotates(scheduler, length, capacity):
    """A completely full directed cycle advances every flit, every cycle."""
    buffers = [FlitBuffer(f"b{i}", capacity=capacity) for i in range(length)]
    supply = iter(flit_supply(length * capacity))
    for buffer in buffers:
        for _ in range(capacity):
            buffer.push(next(supply))
    engine = make_engine(scheduler)
    for i in range(length):
        engine.add_component(Pipe(buffers[i], buffers[(i + 1) % length]))
    heads = [buffer.peek() for buffer in buffers]
    engine.step()
    for i in range(length):
        expected_newcomer = heads[i]
        landed = list(buffers[(i + 1) % length])[-1]
        assert landed is expected_newcomer
