"""Tests for the experiment registry and CLI plumbing."""

import json

import pytest

from repro.experiments.base import (
    DEFAULT,
    FULL,
    QUICK,
    SCALES,
    all_experiments,
    get_experiment,
    scale_from_env,
)
from repro.experiments.cli import build_parser, main

EXPECTED_IDS = {
    "table1", "table2",
    "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
    "ext-slotted",
    "ext-patterns",
    "ext-patterns-smoke",
}


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(all_experiments()) == EXPECTED_IDS

    def test_every_experiment_has_claim_and_check(self):
        for experiment in all_experiments().values():
            assert experiment.paper_claim
            assert experiment.title
            assert experiment.check is not None

    def test_get_unknown_raises_with_listing(self):
        with pytest.raises(KeyError, match="fig14"):
            get_experiment("fig99")

    def test_scales(self):
        assert set(SCALES) == {"quick", "default", "full"}
        assert QUICK.sim.total_cycles < DEFAULT.sim.total_cycles < FULL.sim.total_cycles

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env() is QUICK
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert scale_from_env() is FULL


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for eid in EXPECTED_IDS:
            assert eid in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.scale == "quick"
        assert args.experiments == ["fig6"]

    def test_run_table1_with_check_and_json(self, tmp_path, capsys):
        exit_code = main(["table1", "--check", "--json", str(tmp_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
        payload = json.loads((tmp_path / "table1_quick.json").read_text())
        assert "series" in payload

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig14" in capsys.readouterr().out

    def test_plot_and_ascii_outputs(self, tmp_path, capsys):
        exit_code = main(["table1", "--ascii", "--plot", str(tmp_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        svg = (tmp_path / "table1_quick.svg").read_text()
        assert svg.startswith("<svg")
