"""Smoke-runs of every experiment at a micro scale.

These verify each experiment produces non-empty, well-formed series and
that its check function executes.  The paper-shape assertions
themselves are exercised at default/full scale via the CLI (recorded in
EXPERIMENTS.md); at micro scale we only require that checks *run*.
"""

import pytest

from repro.core.config import SimulationParams
from repro.experiments.base import Scale, all_experiments

MICRO = Scale(
    name="quick",  # reuse the quick cell lists where experiments key on name
    sim=SimulationParams(batch_cycles=250, batches=2, seed=5),
    max_nodes=26,
    t_values=(2,),
    cache_lines=(32,),
    mesh_sides=(2, 3),
    locality_values=(0.2,),
    run_checks=False,
)

CHEAP = sorted(set(all_experiments()) - {"table2", "fig19", "fig20", "fig21"})


@pytest.mark.parametrize("experiment_id", CHEAP)
def test_experiment_produces_series(experiment_id):
    experiment = all_experiments()[experiment_id]
    result = experiment.run(MICRO)
    assert result.series, f"{experiment_id} produced no series"
    populated = [s for s in result.series.values() if s.xs]
    assert populated, f"{experiment_id} produced only empty series"
    for series in populated:
        assert len(series.xs) == len(series.ys)
        assert all(y == y for y in series.ys), "NaN latency in series"
    # The check must execute without raising (failures are allowed at
    # micro scale: too little data for the paper's shapes).
    failures = experiment.evaluate(result)
    assert isinstance(failures, list)


@pytest.mark.parametrize("experiment_id", ["fig19", "fig21"])
def test_double_speed_experiments_run(experiment_id):
    scale = Scale(
        name="quick",
        sim=SimulationParams(batch_cycles=250, batches=2, seed=5),
        max_nodes=60,
        t_values=(2,),
        cache_lines=(32,),
        mesh_sides=(2, 3),
        locality_values=(0.2,),
    )
    experiment = all_experiments()[experiment_id]
    result = experiment.run(scale)
    populated = [s for s in result.series.values() if s.xs]
    assert populated
    experiment.evaluate(result)


def test_table2_micro_cell():
    experiment = all_experiments()["table2"]
    result = experiment.run(MICRO)
    assert result.notes
    assert any(series.xs for series in result.series.values())


def test_format_table_renders_for_real_experiment():
    experiment = all_experiments()["table1"]
    result = experiment.run(MICRO)
    text = result.format_table()
    assert "Table 1" in text
