"""Scheduler equivalence: active-set and naive kernels are bit-identical.

The active-set scheduler (``SimulationParams.scheduler="active"``) skips
components it can prove idle and fast-forwards the clock over dead
cycles.  That is only legal if it is *behavior-identical* to the
full-scan scheduler — the same ``SimulationResult``, the same random
streams, the same flit movements — for every topology, switching mode,
clock-domain layout and buffer shape the simulator supports.  This
matrix enforces it, including byte-identical canonical result JSON so
the PR 1 content-addressed cache may treat the scheduler as a pure
execution detail (``params_payload`` deliberately omits it).
"""

from dataclasses import replace

import pytest

from repro.core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.core.simulation import simulate
from repro.runtime.serialization import canonical_json, result_payload

#: Short but non-trivial: long enough for multi-level round trips and
#: wormhole contention, short enough to keep the matrix fast.
PARAMS = SimulationParams(batch_cycles=350, batches=3, seed=11)

SYSTEMS = [
    pytest.param(RingSystemConfig(topology="8", cache_line_bytes=32), id="ring-1level"),
    pytest.param(RingSystemConfig(topology="2:4", cache_line_bytes=32), id="ring-2level"),
    pytest.param(
        RingSystemConfig(topology="2:2:4", cache_line_bytes=32), id="ring-3level"
    ),
    pytest.param(
        RingSystemConfig(topology="2:2:4", cache_line_bytes=32, global_ring_speed=2),
        id="ring-3level-fast-global",
    ),
    pytest.param(
        RingSystemConfig(topology="2:4", cache_line_bytes=32, switching="slotted"),
        id="ring-2level-slotted",
    ),
    pytest.param(
        MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=1), id="mesh-buf1"
    ),
    pytest.param(
        MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=4), id="mesh-buf4"
    ),
    pytest.param(
        MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits="cl"), id="mesh-bufcl"
    ),
]

OUTSTANDING = [1, 2, 4]


def run_both(system, workload):
    active = simulate(system, workload, replace(PARAMS, scheduler="active"))
    naive = simulate(system, workload, replace(PARAMS, scheduler="naive"))
    return active, naive


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("outstanding", OUTSTANDING, ids=lambda t: f"T{t}")
def test_schedulers_bit_identical(system, outstanding):
    workload = WorkloadConfig(miss_rate=0.05, outstanding=outstanding)
    active, naive = run_both(system, workload)

    # Every measured field, at full float precision.
    assert active.cycles == naive.cycles
    assert active.flits_moved == naive.flits_moved
    assert active.remote_transactions == naive.remote_transactions
    assert active.local_transactions == naive.local_transactions
    assert active.latency == naive.latency
    assert active.local_latency == naive.local_latency
    assert active.utilization == naive.utilization
    assert active.throughput == naive.throughput

    # And byte-identical cached-result JSON: the cache must not be able
    # to tell which scheduler computed a point.
    assert canonical_json(result_payload(active)) == canonical_json(
        result_payload(naive)
    )


def test_low_load_fast_forward_matches():
    """The empty-active-set clock jump must not skip any miss."""
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = WorkloadConfig(miss_rate=0.001, outstanding=2)
    active, naive = run_both(system, workload)
    assert canonical_json(result_payload(active)) == canonical_json(
        result_payload(naive)
    )
    assert active.remote_transactions > 0  # the jump did not starve the run


def test_near_zero_load_is_identical_and_quiet():
    """Effectively zero load (the lookahead-chunk path): nothing happens,
    under either scheduler, and this run's seed provably draws no miss."""
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = WorkloadConfig(miss_rate=1e-9, outstanding=2)
    active, naive = run_both(system, workload)
    assert active.flits_moved == naive.flits_moved == 0
    assert active.remote_transactions == naive.remote_transactions == 0
    assert canonical_json(result_payload(active)) == canonical_json(
        result_payload(naive)
    )


def test_scheduler_not_in_cache_identity():
    """params_payload omits the scheduler, so cache keys coincide."""
    from repro.runtime.serialization import params_payload

    active = params_payload(replace(PARAMS, scheduler="active"))
    naive = params_payload(replace(PARAMS, scheduler="naive"))
    assert active == naive
    assert "scheduler" not in active
