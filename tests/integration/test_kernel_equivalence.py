"""Scheduler equivalence: compiled, active, naive and batched agree.

The active-set scheduler (``SimulationParams.scheduler="active"``) skips
components it can prove idle and fast-forwards the clock over dead
cycles; the compiled scheduler (the default) additionally flattens the
propose/resolve/commit datapath into finalize-built closures over
parallel integer columns, eliding per-proposal structural checks its
component invariants make unreachable; the batched scheduler runs the
point as a lockstep replica batch over the compiled datapath (here a
batch of one — multi-replica identity is covered by
test_batched_replicas.py).  All are only legal if they are
*behavior-identical* to the full-scan scheduler — the same
``SimulationResult``, the same random streams, the same flit movements —
for every topology, switching mode, clock-domain layout and buffer
shape the simulator supports.  This matrix enforces it, including
byte-identical canonical result JSON so the PR 1 content-addressed
cache may treat the scheduler as a pure execution detail
(``params_payload`` deliberately omits it).
"""

from dataclasses import replace

import pytest

from repro.core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.core.simulation import simulate
from repro.runtime.serialization import canonical_json, result_payload

#: Short but non-trivial: long enough for multi-level round trips and
#: wormhole contention, short enough to keep the matrix fast.
PARAMS = SimulationParams(batch_cycles=350, batches=3, seed=11)

SCHEDULERS = ("compiled", "active", "naive", "batched")

SYSTEMS = [
    pytest.param(RingSystemConfig(topology="8", cache_line_bytes=32), id="ring-1level"),
    pytest.param(RingSystemConfig(topology="2:4", cache_line_bytes=32), id="ring-2level"),
    pytest.param(
        RingSystemConfig(topology="2:2:4", cache_line_bytes=32), id="ring-3level"
    ),
    pytest.param(
        RingSystemConfig(topology="2:2:4", cache_line_bytes=32, global_ring_speed=2),
        id="ring-3level-fast-global",
    ),
    pytest.param(
        RingSystemConfig(topology="2:4", cache_line_bytes=32, switching="slotted"),
        id="ring-2level-slotted",
    ),
    pytest.param(
        MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=1), id="mesh-buf1"
    ),
    pytest.param(
        MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=4), id="mesh-buf4"
    ),
    pytest.param(
        MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits="cl"), id="mesh-bufcl"
    ),
]

OUTSTANDING = [1, 2, 4]


def run_all(system, workload, params=PARAMS):
    return {
        scheduler: simulate(system, workload, replace(params, scheduler=scheduler))
        for scheduler in SCHEDULERS
    }


def assert_identical(results):
    """Byte-identical canonical JSON across every scheduler's result."""
    payloads = {
        scheduler: canonical_json(result_payload(result))
        for scheduler, result in results.items()
    }
    baseline = payloads["naive"]
    for scheduler, payload in payloads.items():
        assert payload == baseline, f"{scheduler} result diverged from naive"


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("outstanding", OUTSTANDING, ids=lambda t: f"T{t}")
def test_schedulers_bit_identical(system, outstanding):
    workload = WorkloadConfig(miss_rate=0.05, outstanding=outstanding)
    results = run_all(system, workload)
    naive = results["naive"]

    # Every measured field, at full float precision.
    for scheduler in ("compiled", "active", "batched"):
        fast = results[scheduler]
        assert fast.cycles == naive.cycles
        assert fast.flits_moved == naive.flits_moved
        assert fast.remote_transactions == naive.remote_transactions
        assert fast.local_transactions == naive.local_transactions
        assert fast.latency == naive.latency
        assert fast.local_latency == naive.local_latency
        assert fast.utilization == naive.utilization
        assert fast.throughput == naive.throughput

    # And byte-identical cached-result JSON: the cache must not be able
    # to tell which scheduler computed a point.
    assert_identical(results)


def test_saturated_ring_bit_identical():
    """The compiled datapath's design point: a saturated 2-level ring
    where full buffers rotate through bypass flow control every cycle."""
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = WorkloadConfig(miss_rate=0.2, outstanding=8)
    assert_identical(run_all(system, workload))


def test_low_load_fast_forward_matches():
    """The empty-active-set clock jump must not skip any miss."""
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = WorkloadConfig(miss_rate=0.001, outstanding=2)
    results = run_all(system, workload)
    assert_identical(results)
    # the jump did not starve the run
    assert results["naive"].remote_transactions > 0


def test_near_zero_load_is_identical_and_quiet():
    """Effectively zero load (the lookahead-chunk path): nothing happens,
    under any scheduler, and this run's seed provably draws no miss."""
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = WorkloadConfig(miss_rate=1e-9, outstanding=2)
    results = run_all(system, workload)
    for result in results.values():
        assert result.flits_moved == 0
        assert result.remote_transactions == 0
    assert_identical(results)


def test_profiled_run_bit_identical():
    """An active PhaseProfile must observe, never perturb.

    The instrumented step brackets the same phases with perf_counter
    laps; results must stay byte-identical to unprofiled runs under
    every scheduler, while the profile actually records cycles and all
    four phases for each of them.
    """
    from repro.core import profiling

    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = WorkloadConfig(miss_rate=0.05, outstanding=4)
    plain = run_all(system, workload)
    profile = profiling.PhaseProfile()
    with profiling.enabled(profile):
        profiled = run_all(system, workload)

    payloads = {
        scheduler: canonical_json(result_payload(result))
        for scheduler, result in plain.items()
    }
    for scheduler, result in profiled.items():
        assert canonical_json(result_payload(result)) == payloads[scheduler], (
            f"profiling perturbed the {scheduler} scheduler's result"
        )
    for scheduler in SCHEDULERS:
        assert profile.cycles.get(scheduler, 0) > 0
        for phase in profiling.PHASES:
            assert (scheduler, phase) in profile.seconds


def test_scheduler_not_in_cache_identity():
    """params_payload omits scheduler and replicas: cache keys coincide."""
    from repro.runtime.serialization import params_payload

    payloads = [
        params_payload(replace(PARAMS, scheduler=scheduler))
        for scheduler in SCHEDULERS
    ]
    assert all(payload == payloads[0] for payload in payloads)
    assert "scheduler" not in payloads[0]
    assert params_payload(replace(PARAMS, replicas=8)) == payloads[0]
    assert "replicas" not in payloads[0]
