"""Stability under saturation: the configurations the paper drives past
their bandwidth limits must keep making progress (no deadlock, no
livelock), because the processors self-throttle at T outstanding."""

import pytest

from repro.core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.core.simulation import simulate

SATURATING = WorkloadConfig(locality=1.0, miss_rate=0.04, outstanding=4)
PARAMS = SimulationParams(batch_cycles=1500, batches=3, seed=3, deadlock_threshold=3000)


@pytest.mark.parametrize(
    "config",
    [
        # Saturated single ring: double its sustainable size.
        RingSystemConfig(topology="16", cache_line_bytes=32),
        # Saturated global ring: five local rings on a 2-level hierarchy.
        RingSystemConfig(topology="5:8", cache_line_bytes=32),
        # Saturated 3-level hierarchy: four second-level rings.
        RingSystemConfig(topology="4:3:6", cache_line_bytes=64),
        # 1-flit mesh buffers with giant worms: the worst mesh case.
        MeshSystemConfig(side=5, cache_line_bytes=128, buffer_flits=1),
    ],
    ids=["single-ring-2x", "2-level-5-rings", "3-level-4-rings", "mesh-1flit-128B"],
)
def test_saturated_system_keeps_completing(config):
    result = simulate(config, SATURATING, PARAMS)
    assert result.remote_transactions > 100
    assert result.avg_latency > 0


def test_saturated_throughput_is_positive_and_bounded():
    result = simulate(
        RingSystemConfig(topology="5:8", cache_line_bytes=32), SATURATING, PARAMS
    )
    assert result.throughput is not None
    # Each of the 40 processors is capped at C = 0.04 misses/cycle.
    assert 0 < result.throughput.mean < 40 * 0.04 + 0.01
