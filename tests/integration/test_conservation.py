"""Conservation and drain tests: no packet is ever lost or duplicated.

Run a loaded simulation, stop all generation, keep clocking until the
network is silent, and verify that every issued transaction completed
and every buffer is empty.
"""

import pytest

from repro.core.config import MeshSystemConfig, RingSystemConfig, WorkloadConfig
from repro.core.engine import Engine
from repro.core.pm import MetricsHub
from repro.core.simulation import build_network

HEAVY = WorkloadConfig(locality=1.0, miss_rate=0.04, outstanding=4)
LOCAL = WorkloadConfig(locality=0.2, miss_rate=0.04, outstanding=4)

CONFIGS = [
    pytest.param(RingSystemConfig(topology="8", cache_line_bytes=32), HEAVY,
                 id="single-ring"),
    pytest.param(RingSystemConfig(topology="2:3:4", cache_line_bytes=64), HEAVY,
                 id="3-level-ring"),
    pytest.param(RingSystemConfig(topology="3:3:4", cache_line_bytes=128,
                                  global_ring_speed=2), HEAVY,
                 id="double-speed-ring"),
    pytest.param(RingSystemConfig(topology="2:3:4", cache_line_bytes=32), LOCAL,
                 id="ring-with-locality"),
    pytest.param(MeshSystemConfig(side=4, cache_line_bytes=32, buffer_flits=4),
                 HEAVY, id="mesh-4flit"),
    pytest.param(MeshSystemConfig(side=3, cache_line_bytes=128, buffer_flits=1),
                 HEAVY, id="mesh-1flit"),
    pytest.param(MeshSystemConfig(side=4, cache_line_bytes=64, buffer_flits="cl"),
                 LOCAL, id="mesh-cl-locality"),
    pytest.param(RingSystemConfig(topology="2:3:4", cache_line_bytes=32,
                                  switching="slotted"), HEAVY,
                 id="slotted-ring"),
    pytest.param(RingSystemConfig(topology="3:3:4", cache_line_bytes=64,
                                  switching="slotted", global_ring_speed=2),
                 HEAVY, id="slotted-double-speed"),
]


def network_buffers(network):
    buffers = []
    for pm in network.pms:
        buffers.extend([pm.in_queue, pm.out_req, pm.out_resp])
    if hasattr(network, "nics"):
        for nic in network.nics:
            buffers.append(nic.transit_buffer)
        for iri in network.iris.values():
            buffers.extend(iri.buffers)
    else:
        for router in network.routers:
            buffers.extend(router.input_buffers.values())
    return buffers


@pytest.mark.parametrize("config,workload", CONFIGS)
def test_drain_to_silence(config, workload):
    metrics = MetricsHub()
    network = build_network(config, workload, metrics, seed=13)
    engine = Engine()
    network.register(engine)

    engine.run(1500)
    for pm in network.pms:
        pm.generation_enabled = False

    for _ in range(200):
        engine.run(50)
        if all(not pm.open_transactions and pm.outstanding == 0 for pm in network.pms):
            break
    else:
        pytest.fail("network failed to drain after generation stopped")

    # Let any trailing responses-to-nobody (there are none) flush.
    engine.run(50)

    issued = metrics.remote_issued
    completed = metrics.remote_completed
    assert issued == completed, f"{issued} issued vs {completed} completed"
    assert issued > 20  # the run actually exercised the network

    for buffer in network_buffers(network):
        assert buffer.is_empty, f"{buffer.name} still holds flits after drain"
        assert buffer.flits_enqueued == buffer.flits_dequeued

    for pm in network.pms:
        assert pm.metrics is metrics
        assert pm.memory.in_service == 0

    assert engine.packets_in_flight == 0


@pytest.mark.parametrize("config,workload", CONFIGS[:2])
def test_flit_conservation_mid_flight(config, workload):
    """At any instant: enqueued - dequeued == occupancy, per buffer."""
    metrics = MetricsHub()
    network = build_network(config, workload, metrics, seed=5)
    engine = Engine()
    network.register(engine)
    for _ in range(20):
        engine.run(37)
        for buffer in network_buffers(network):
            assert buffer.flits_enqueued - buffer.flits_dequeued == buffer.occupancy
