"""Columnar scheduler integration: determinism, kernel identity, caching.

The columnar engine (``SimulationParams.scheduler="columnar"``) drops
the byte-identity contract the other four schedulers share: it keeps
all replicas of a point as flat numpy columns and resolves contention
with masked array ops, so its results are only *statistically*
equivalent to the object engines (enforced by repro.audit.stat_equiv).
What this module pins down instead:

* the columnar path is still **self-deterministic** — same seeds, same
  bytes, run after run, and each seed's result is independent of which
  other seeds share the batch;
* the optional C kernel (repro.core.ckernel) is bit-identical to the
  numpy columnar path it replaces (``REPRO_COLUMNAR_KERNEL=0``);
* configuration guards reject what the engine cannot model (slotted
  ring switching, externally supplied miss sources);
* cache identity: columnar payloads carry ``"fidelity":
  "statistical"`` so they can never be served for a bit-exact request,
  while the four bit-exact schedulers still share one identity.
"""

import math
from dataclasses import replace

import pytest

from repro.core import ckernel
from repro.core.columnar import simulate_columnar
from repro.core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.core.errors import ConfigurationError
from repro.core.simulation import simulate, simulate_batch
from repro.runtime.serialization import (
    canonical_json,
    params_from_payload,
    params_payload,
    result_payload,
)

PARAMS = SimulationParams(batch_cycles=300, batches=3, seed=7, scheduler="columnar")
WORKLOAD = WorkloadConfig(locality=0.9, miss_rate=0.04, outstanding=4)

RING = RingSystemConfig(topology="2:4", cache_line_bytes=32)
MESH = MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=4)

SYSTEMS = [
    pytest.param(RING, id="ring-2level"),
    pytest.param(
        RingSystemConfig(topology="2:2:4", cache_line_bytes=32, global_ring_speed=2),
        id="ring-3level-fast-global",
    ),
    pytest.param(MESH, id="mesh-buf4"),
]


def payloads(results):
    return [canonical_json(result_payload(r)) for r in results]


@pytest.mark.parametrize("system", SYSTEMS)
def test_columnar_is_self_deterministic(system):
    """Same seeds twice -> byte-identical canonical result JSON."""
    first = simulate_columnar(system, WORKLOAD, PARAMS, seeds=(7, 8, 9))
    second = simulate_columnar(system, WORKLOAD, PARAMS, seeds=(7, 8, 9))
    assert payloads(first) == payloads(second)


@pytest.mark.parametrize("system", [SYSTEMS[0], SYSTEMS[2]])
def test_seed_results_independent_of_batch_composition(system):
    """Philox streams are keyed per replica *seed*, not per column
    index: seed 8's result must not change when its neighbours do."""
    trio = simulate_columnar(system, WORKLOAD, PARAMS, seeds=(7, 8, 9))
    solo = simulate_columnar(system, WORKLOAD, PARAMS, seeds=(8,))
    assert payloads([trio[1]]) == payloads(solo)


@pytest.mark.skipif(not ckernel.available(), reason="no C toolchain")
@pytest.mark.parametrize("system", SYSTEMS)
def test_c_kernel_matches_numpy_path(system, monkeypatch):
    """The compiled kernel is an execution detail: forcing the numpy
    fallback (REPRO_COLUMNAR_KERNEL=0) must reproduce the same bytes."""
    kernel = simulate_columnar(system, WORKLOAD, PARAMS, seeds=(7, 8))
    monkeypatch.setenv("REPRO_COLUMNAR_KERNEL", "0")
    numpy_only = simulate_columnar(system, WORKLOAD, PARAMS, seeds=(7, 8))
    assert payloads(kernel) == payloads(numpy_only)


def test_slotted_switching_rejected():
    slotted = replace(RING, switching="slotted")
    with pytest.raises(ConfigurationError, match="slotted"):
        simulate_columnar(slotted, WORKLOAD, PARAMS, seeds=(1,))


def test_empty_seed_list_rejected():
    with pytest.raises(ConfigurationError, match="seed"):
        simulate_columnar(RING, WORKLOAD, PARAMS, seeds=())


def test_miss_sources_rejected():
    """The engine generates misses from its own per-column Philox
    streams; injected MissSource objects cannot be honoured."""
    with pytest.raises(ConfigurationError, match="miss"):
        simulate(RING, WORKLOAD, PARAMS, miss_sources=[])


def test_simulate_dispatches_columnar():
    """scheduler="columnar" flows through the ordinary entry points."""
    solo = simulate(RING, WORKLOAD, PARAMS)
    assert solo.params.scheduler == "columnar"
    assert solo.flits_moved > 0
    batch = simulate_batch(RING, WORKLOAD, replace(PARAMS, replicas=2))
    assert [r.params.seed for r in batch] == [7, 8]
    direct = simulate_columnar(RING, WORKLOAD, PARAMS, seeds=(7, 8))
    assert payloads(batch) == payloads(direct)
    assert payloads([solo]) == payloads([direct[0]])


def test_results_are_plausible():
    """Sanity on the metered outputs: finite latency, extremes bracket
    the mean, throughput positive, flits conserved per replica."""
    results = simulate_columnar(MESH, WORKLOAD, PARAMS, seeds=(7, 8, 9))
    for result in results:
        assert result.cycles == PARAMS.batch_cycles * PARAMS.batches
        assert math.isfinite(result.avg_latency)
        lo, hi = result.latency_range
        assert lo <= result.avg_latency <= hi
        assert result.throughput.mean > 0
        assert result.remote_transactions > 0
        assert result.flits_moved > 0


class TestCacheFidelity:
    def test_bit_exact_schedulers_share_one_identity(self):
        base = SimulationParams(batch_cycles=300, batches=3, seed=7)
        payloads_ = {
            scheduler: params_payload(replace(base, scheduler=scheduler))
            for scheduler in ("compiled", "active", "naive", "batched")
        }
        assert len({canonical_json(p) for p in payloads_.values()}) == 1
        assert "fidelity" not in payloads_["compiled"]

    def test_columnar_identity_is_disjoint(self):
        """A columnar cache entry can never be served for a bit-exact
        request (and vice versa): the payloads differ structurally."""
        exact = params_payload(replace(PARAMS, scheduler="compiled"))
        statistical = params_payload(PARAMS)
        assert statistical.pop("fidelity") == "statistical"
        assert statistical == exact  # only the tag separates them

    def test_columnar_round_trips_through_payload(self):
        restored = params_from_payload(params_payload(PARAMS))
        assert restored.scheduler == "columnar"
        assert restored.batch_cycles == PARAMS.batch_cycles
        assert restored.seed == PARAMS.seed

    def test_bit_exact_round_trip_restores_default_scheduler(self):
        restored = params_from_payload(
            params_payload(replace(PARAMS, scheduler="batched"))
        )
        assert restored.scheduler == "compiled"
