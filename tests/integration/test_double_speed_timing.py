"""Timing behaviour of the double-speed global ring (Section 6)."""

import pytest

from repro.core.config import RingSystemConfig, SimulationParams, WorkloadConfig
from repro.core.engine import Engine
from repro.core.pm import MetricsHub
from repro.core.simulation import simulate
from repro.ring.network import HierarchicalRingNetwork

IDLE = WorkloadConfig(miss_rate=1e-9, outstanding=1)


def one_round_trip(config, src, dst):
    metrics = MetricsHub()
    network = HierarchicalRingNetwork(config, IDLE, metrics, seed=1)
    engine = Engine()
    network.register(engine)
    network.pms[src].issue_remote(dst, cycle=0)
    for _ in range(1000):
        engine.step()
        if metrics.remote_completed:
            return metrics.remote_latency.last
    raise AssertionError("transaction never completed")


class TestZeroLoadEffect:
    def test_cross_subtree_trip_faster_with_2x_global(self):
        """Crossing the global ring takes fewer base cycles at 2x: the
        global hops complete in half-cycles."""
        normal = RingSystemConfig(topology="3:4", cache_line_bytes=32)
        double = RingSystemConfig(
            topology="3:4", cache_line_bytes=32, global_ring_speed=2
        )
        src, dst = 0, 11  # first PM to a PM in the last subtree
        assert one_round_trip(double, src, dst) <= one_round_trip(normal, src, dst)

    def test_same_subtree_trip_unchanged(self):
        """Traffic that never touches the global ring sees no change."""
        normal = RingSystemConfig(topology="3:4", cache_line_bytes=32)
        double = RingSystemConfig(
            topology="3:4", cache_line_bytes=32, global_ring_speed=2
        )
        assert one_round_trip(double, 0, 1) == one_round_trip(normal, 0, 1)


class TestLoadedEffect:
    @pytest.mark.parametrize("switching", ["wormhole", "slotted"])
    def test_2x_never_worse_at_saturation(self, switching):
        workload = WorkloadConfig(miss_rate=0.04, outstanding=4)
        params = SimulationParams(batch_cycles=1200, batches=4, seed=9,
                                  deadlock_threshold=8000)
        results = {}
        for speed in (1, 2):
            config = RingSystemConfig(
                topology="4:3:4",
                cache_line_bytes=64,
                global_ring_speed=speed,
                switching=switching,
            )
            results[speed] = simulate(config, workload, params)
        assert results[2].avg_latency <= 1.05 * results[1].avg_latency
        assert results[2].remote_transactions >= results[1].remote_transactions * 0.9
