"""Scheduler equivalence and cache identity for the traffic patterns.

The pattern suite reuses the PM draw discipline of the M-MRP selector
(one ``randrange`` per miss, none for permutation singletons), so the
byte-identity contract of ``test_kernel_equivalence`` must extend to
every pattern — including bursty injection, which runs the generic
(non-fused) PM path under the compiled and batched schedulers.  And a
pattern run must be a *distinct workload identity*: its canonical
payload (hence cache key and derived seed) must never collide with a
plain M-MRP run, while plain M-MRP payloads stay byte-identical to the
pre-pattern schema so existing cached results remain valid.
"""

from dataclasses import replace

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.core.simulation import simulate
from repro.runtime import PointSpec, run_points
from repro.runtime.serialization import (
    canonical_json,
    result_payload,
    workload_payload,
)
from repro.workload.patterns import PATTERN_NAMES

PARAMS = SimulationParams(batch_cycles=350, batches=3, seed=11)

SCHEDULERS = ("compiled", "active", "naive", "batched")

#: 16 PMs on both fabrics: P = 4^k keeps every bit pattern (and the
#: ring transpose) valid.
SYSTEMS = [
    pytest.param(
        RingSystemConfig(topology="2:8", cache_line_bytes=32), id="ring-2level"
    ),
    pytest.param(MeshSystemConfig(side=4, cache_line_bytes=32), id="mesh-4x4"),
]


def run_all(system, workload, params=PARAMS):
    return {
        scheduler: simulate(system, workload, replace(params, scheduler=scheduler))
        for scheduler in SCHEDULERS
    }


def assert_identical(results):
    payloads = {
        scheduler: canonical_json(result_payload(result))
        for scheduler, result in results.items()
    }
    baseline = payloads["naive"]
    for scheduler, payload in payloads.items():
        assert payload == baseline, f"{scheduler} result diverged from naive"


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("pattern", ("uniform", "transpose", "hotspot"))
def test_pattern_schedulers_bit_identical(system, pattern):
    workload = WorkloadConfig(miss_rate=0.05, outstanding=4, pattern=pattern)
    results = run_all(system, workload)
    assert results["naive"].remote_transactions > 0
    assert_identical(results)


@pytest.mark.parametrize("system", SYSTEMS)
def test_bursty_schedulers_bit_identical(system):
    """Bursty runs the generic PM path under compiled/batched; it must
    still agree with naive bit for bit."""
    workload = WorkloadConfig(
        miss_rate=0.05, outstanding=4, burst_on=25.0, burst_off=75.0
    )
    results = run_all(system, workload)
    assert results["naive"].remote_transactions > 0
    assert_identical(results)


def test_pattern_runs_identical_across_jobs():
    """--jobs 1 vs N byte-identity holds for pattern points too."""
    system = RingSystemConfig(topology="2:8", cache_line_bytes=32)
    specs = [
        PointSpec.of(system, WorkloadConfig(miss_rate=0.05, pattern=pattern), PARAMS)
        for pattern in ("uniform", "transpose", "hotspot")
    ]

    def payloads(results):
        return [canonical_json(result_payload(result)) for result in results]

    serial = payloads(run_points(specs, jobs=1, cache=None))
    parallel = payloads(run_points(specs, jobs=3, cache=None))
    assert serial == parallel


MISS_RATES = st.sampled_from([0.01, 0.04, 0.1])


class TestCacheIdentity:
    @given(pattern=st.sampled_from(PATTERN_NAMES), miss_rate=MISS_RATES)
    def test_pattern_payload_never_collides_with_mmrp(self, pattern, miss_rate):
        mmrp = workload_payload(WorkloadConfig(miss_rate=miss_rate))
        patterned = workload_payload(
            WorkloadConfig(miss_rate=miss_rate, pattern=pattern)
        )
        assert patterned != mmrp
        assert patterned["pattern"] == pattern

    @given(miss_rate=MISS_RATES, locality=st.sampled_from([0.25, 0.5, 1.0]))
    def test_mmrp_payload_schema_unchanged(self, miss_rate, locality):
        """Plain M-MRP payloads must stay byte-identical to the
        pre-pattern schema so existing cached results stay valid."""
        payload = workload_payload(
            WorkloadConfig(locality=locality, miss_rate=miss_rate)
        )
        assert sorted(payload) == [
            "locality", "miss_rate", "outstanding", "read_fraction",
        ]

    def test_hotspot_knobs_only_join_for_hotspot(self):
        uniform = workload_payload(WorkloadConfig(miss_rate=0.04, pattern="uniform"))
        assert "hotspot_count" not in uniform
        hotspot = workload_payload(WorkloadConfig(miss_rate=0.04, pattern="hotspot"))
        assert hotspot["hotspot_count"] == 2 and hotspot["hotspot_weight"] == 8

    def test_distinct_spec_keys_and_seeds(self):
        """Same system/params: a pattern point and an M-MRP point must
        differ in cache key AND derived seed — no cross-serving."""
        system = RingSystemConfig(topology="2:8", cache_line_bytes=32)
        params = SimulationParams(batch_cycles=350, batches=3, seed=1)  # base seed
        keys, seeds = set(), set()
        for workload in (
            WorkloadConfig(miss_rate=0.05),
            WorkloadConfig(miss_rate=0.05, pattern="uniform"),
            WorkloadConfig(miss_rate=0.05, pattern="hotspot"),
            WorkloadConfig(miss_rate=0.05, burst_on=25.0, burst_off=75.0),
        ):
            spec = PointSpec.of(system, workload, params)  # derives the seed
            keys.add(spec.key())
            seeds.add(spec.params.seed)
        assert len(keys) == 4
        assert len(seeds) == 4

    def test_roundtrip_through_payload(self):
        for workload in (
            WorkloadConfig(miss_rate=0.05, pattern="hotspot", hotspot_weight=4),
            WorkloadConfig(miss_rate=0.05, burst_on=25.0, burst_off=75.0),
        ):
            payload = workload_payload(workload)
            from repro.runtime.serialization import workload_from_payload

            rebuilt = workload_from_payload(payload)
            assert workload_payload(rebuilt) == payload
            assert rebuilt.pattern == workload.pattern
            assert rebuilt.bursty == workload.bursty
