"""Regression tests for the kernel benchmark's history bookkeeping.

Re-running ``benchmarks.bench_kernel`` on the same commit used to append
a duplicate ``(sha, mode)`` line to the report's history on every run,
so a commit benchmarked twice looked like two commits.  The merge must
replace the stale measurement in place — preserving its position in the
log — and only append when the ``(sha, mode)`` pair is genuinely new.
"""

import json

from benchmarks.bench_kernel import _merge_history, _prior_history


def entry(sha, mode, marker):
    return {"sha": sha, "mode": mode, "date": "2026-08-08", "points": marker}


def test_rerun_same_sha_replaces_in_place():
    history = [entry("aaa", "quick", 1), entry("bbb", "quick", 2)]
    merged = _merge_history(history, entry("aaa", "quick", 3))
    assert [(e["sha"], e["points"]) for e in merged] == [("aaa", 3), ("bbb", 2)]


def test_new_sha_appends():
    history = [entry("aaa", "quick", 1)]
    merged = _merge_history(history, entry("ccc", "quick", 2))
    assert [e["sha"] for e in merged] == ["aaa", "ccc"]


def test_same_sha_different_mode_is_a_distinct_entry():
    history = [entry("aaa", "quick", 1)]
    merged = _merge_history(history, entry("aaa", "full", 2))
    assert [(e["sha"], e["mode"]) for e in merged] == [
        ("aaa", "quick"),
        ("aaa", "full"),
    ]


def test_prior_history_round_trip(tmp_path):
    path = tmp_path / "BENCH_kernel.json"
    path.write_text(
        json.dumps({"history": [entry("aaa", "quick", 1)], "points": {}})
    )
    history = _prior_history(str(path))
    merged = _merge_history(history, entry("aaa", "quick", 9))
    assert merged == [entry("aaa", "quick", 9)]

    # idempotent: merging the identical entry again changes nothing
    assert _merge_history(list(merged), entry("aaa", "quick", 9)) == merged


def test_prior_history_tolerates_missing_or_malformed_files(tmp_path):
    assert _prior_history(str(tmp_path / "absent.json")) == []
    bad = tmp_path / "bad.json"
    bad.write_text("not json {")
    assert _prior_history(str(bad)) == []
    wrong_shape = tmp_path / "wrong.json"
    wrong_shape.write_text(json.dumps({"history": {"not": "a list"}}))
    assert _prior_history(str(wrong_shape)) == []
