"""Regression tests for the kernel benchmark's history bookkeeping.

Re-running ``benchmarks.bench_kernel`` on the same commit used to append
a duplicate ``(sha, mode)`` line to the report's history on every run,
so a commit benchmarked twice looked like two commits.  The merge must
replace the stale measurement in place — preserving its position in the
log — and only append when the ``(sha, mode)`` pair is genuinely new.

A second regression rode the same report: history rows carried no
record of the measuring host, so ``--bench-compare`` diffed wall-clock
numbers across machines and reported phantom regressions.  Rows now
carry a host fingerprint and ``compare_to_history`` skips (with a
notice) instead of comparing when it differs — including against
pre-fingerprint rows, whose provenance is unknown.
"""

import json

from benchmarks.bench_kernel import (
    _merge_history,
    _prior_history,
    compare_to_history,
)


def entry(sha, mode, marker):
    return {"sha": sha, "mode": mode, "date": "2026-08-08", "points": marker}


def timed_entry(sha, mode, host, cycles_per_sec):
    return {
        "sha": sha,
        "mode": mode,
        "host": host,
        "points": {"light": {"compiled": cycles_per_sec}},
    }


def test_rerun_same_sha_replaces_in_place():
    history = [entry("aaa", "quick", 1), entry("bbb", "quick", 2)]
    merged = _merge_history(history, entry("aaa", "quick", 3))
    assert [(e["sha"], e["points"]) for e in merged] == [("aaa", 3), ("bbb", 2)]


def test_new_sha_appends():
    history = [entry("aaa", "quick", 1)]
    merged = _merge_history(history, entry("ccc", "quick", 2))
    assert [e["sha"] for e in merged] == ["aaa", "ccc"]


def test_same_sha_different_mode_is_a_distinct_entry():
    history = [entry("aaa", "quick", 1)]
    merged = _merge_history(history, entry("aaa", "full", 2))
    assert [(e["sha"], e["mode"]) for e in merged] == [
        ("aaa", "quick"),
        ("aaa", "full"),
    ]


def test_prior_history_round_trip(tmp_path):
    path = tmp_path / "BENCH_kernel.json"
    path.write_text(
        json.dumps({"history": [entry("aaa", "quick", 1)], "points": {}})
    )
    history = _prior_history(str(path))
    merged = _merge_history(history, entry("aaa", "quick", 9))
    assert merged == [entry("aaa", "quick", 9)]

    # idempotent: merging the identical entry again changes nothing
    assert _merge_history(list(merged), entry("aaa", "quick", 9)) == merged


def test_prior_history_tolerates_missing_or_malformed_files(tmp_path):
    assert _prior_history(str(tmp_path / "absent.json")) == []
    bad = tmp_path / "bad.json"
    bad.write_text("not json {")
    assert _prior_history(str(bad)) == []
    wrong_shape = tmp_path / "wrong.json"
    wrong_shape.write_text(json.dumps({"history": {"not": "a list"}}))
    assert _prior_history(str(wrong_shape)) == []


class TestCompareHostPinning:
    def test_no_history_no_regressions_no_notice(self):
        assert compare_to_history(timed_entry("new", "quick", "h1", 100.0), []) == (
            [],
            None,
        )

    def test_same_host_reports_regressions(self):
        prior = timed_entry("old", "quick", "h1", 200.0)
        fresh = timed_entry("new", "quick", "h1", 100.0)  # 50% slower
        regressions, notice = compare_to_history(fresh, [prior])
        assert notice is None
        assert len(regressions) == 1
        assert "light/compiled" in regressions[0]

    def test_cross_host_skips_instead_of_comparing(self):
        prior = timed_entry("old", "quick", "laptop", 200.0)
        fresh = timed_entry("new", "quick", "ci-runner", 100.0)
        regressions, notice = compare_to_history(fresh, [prior])
        assert regressions == []
        assert notice is not None
        assert "laptop" in notice and "ci-runner" in notice
        assert "not comparable" in notice

    def test_pre_fingerprint_rows_are_skipped(self):
        """Committed history predates the host field: provenance is
        unknown, so the diff must be skipped, not trusted."""
        prior = timed_entry("old", "quick", None, 200.0)
        del prior["host"]
        fresh = timed_entry("new", "quick", "h1", 100.0)
        regressions, notice = compare_to_history(fresh, [prior])
        assert regressions == []
        assert notice is not None and "unknown" in notice

    def test_only_same_mode_rows_are_compared(self):
        prior = timed_entry("old", "full", "other-host", 200.0)
        fresh = timed_entry("new", "quick", "h1", 100.0)
        assert compare_to_history(fresh, [prior]) == ([], None)
