"""Multi-replica lockstep batches: decorrelation, identity, integration.

The kernel equivalence matrix (test_kernel_equivalence.py) already
proves a *batch of one* is byte-identical to the other schedulers; this
module covers what is new with N > 1:

* seed decorrelation — every replica of a batch equals the same seed
  run individually (lockstep neighbours leak nothing into each other);
* per-replica accounting — ``BatchedEngine.replica_flits`` splits the
  merged ``flits_moved`` exactly;
* the per-replica deadlock watchdog — a wedged replica raises at the
  same cycle and stall count as its solo run, batch mates or not;
* runner/cache integration — ``run_replica_batch`` results are
  interchangeable cache currency with solo ``run_point`` entries.
"""

import math
from dataclasses import replace

import pytest

from repro.core.batched import BatchedEngine
from repro.core.buffers import FlitBuffer
from repro.core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.core.engine import Component, Engine
from repro.core.errors import ConfigurationError, DeadlockError
from repro.core.packet import Packet, PacketType
from repro.core.simulation import simulate, simulate_batch
from repro.runtime.serialization import canonical_json, result_payload

PARAMS = SimulationParams(batch_cycles=300, batches=3, seed=21)


def payload(result):
    return canonical_json(result_payload(result))


@pytest.mark.parametrize(
    "system",
    [
        pytest.param(
            RingSystemConfig(topology="2:4", cache_line_bytes=32), id="ring-2level"
        ),
        pytest.param(
            RingSystemConfig(
                topology="2:2:4", cache_line_bytes=32, global_ring_speed=2
            ),
            id="ring-3level-fast-global",
        ),
        pytest.param(
            MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=1),
            id="mesh-buf1",
        ),
    ],
)
def test_replicas_equal_individual_seeds(system):
    """Seed decorrelation: batch results == the same seeds run solo."""
    workload = WorkloadConfig(miss_rate=0.05, outstanding=4)
    batch = simulate_batch(system, workload, replace(PARAMS, replicas=3))
    for result, seed in zip(batch, (21, 22, 23)):
        solo = simulate(system, workload, replace(PARAMS, seed=seed))
        assert payload(result) == payload(solo), f"replica seed {seed} diverged"
        assert result.params.seed == seed
        assert result.latency_range == solo.latency_range


def test_explicit_seed_list_orders_results():
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = WorkloadConfig(miss_rate=0.05, outstanding=4)
    seeds = (40, 2, 17)
    batch = simulate_batch(system, workload, PARAMS, seeds=seeds)
    assert [result.params.seed for result in batch] == list(seeds)
    for result, seed in zip(batch, seeds):
        assert payload(result) == payload(
            simulate(system, workload, replace(PARAMS, seed=seed))
        )


def test_replica_flits_partition_the_total():
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = WorkloadConfig(miss_rate=0.1, outstanding=4)
    batch = simulate_batch(system, workload, replace(PARAMS, replicas=4))
    solo_total = sum(
        simulate(system, workload, replace(PARAMS, seed=s)).flits_moved
        for s in (21, 22, 23, 24)
    )
    assert sum(result.flits_moved for result in batch) == solo_total
    assert solo_total > 0


def test_empty_seed_list_rejected():
    system = RingSystemConfig(topology="8", cache_line_bytes=32)
    with pytest.raises(ConfigurationError):
        simulate_batch(system, None, PARAMS, seeds=())


def test_replicas_validated():
    with pytest.raises(ConfigurationError):
        SimulationParams(replicas=0).validate()
    assert SimulationParams(replicas=8).validate().replicas == 8


# ----------------------------------------------------------------------
# engine-level behavior via toy components
# ----------------------------------------------------------------------
class Pipe(Component):
    """Propose the head of ``source`` into ``dest`` every subcycle."""

    def __init__(self, source, dest):
        self.source = source
        self.dest = dest

    def propose(self, engine):
        flit = self.source.peek()
        if flit is not None:
            engine.propose(flit, self.source, self.dest, None, self)


def flits(n):
    return list(Packet(PacketType.READ_RESPONSE, 0, 1, max(n, 1), 0, 0).flits)


def add_wedged_replica(engine):
    """One proposer into a permanently full destination: stalls forever."""
    source = FlitBuffer("src", capacity=2)
    dest = FlitBuffer("dst", capacity=1)
    supply = flits(2)
    source.push(supply[0])
    dest.push(supply[1])
    engine.add_component(Pipe(source, dest))
    engine.seal_replica()


def add_spinning_replica(engine):
    """A full two-buffer cycle: rotates (commits) every cycle forever."""
    a = FlitBuffer("a", capacity=1)
    b = FlitBuffer("b", capacity=1)
    supply = flits(2)
    a.push(supply[0])
    b.push(supply[1])
    engine.add_component(Pipe(a, b))
    engine.add_component(Pipe(b, a))
    engine.seal_replica()


def test_watchdog_counts_per_replica():
    """A wedged replica raises at its solo threshold even while a batch
    mate commits every cycle (the merged engine never looks idle)."""
    threshold = 40
    solo = Engine(deadlock_threshold=threshold, scheduler="compiled")
    src = FlitBuffer("src", capacity=2)
    dst = FlitBuffer("dst", capacity=1)
    supply = flits(2)
    src.push(supply[0])
    dst.push(supply[1])
    solo.add_component(Pipe(src, dst))
    with pytest.raises(DeadlockError) as solo_info:
        solo.run(10 * threshold)

    batch = BatchedEngine(deadlock_threshold=threshold)
    add_spinning_replica(batch)
    add_wedged_replica(batch)
    with pytest.raises(DeadlockError) as batch_info:
        batch.run(10 * threshold)

    assert batch_info.value.cycle == solo_info.value.cycle
    assert batch_info.value.stalled_cycles == solo_info.value.stalled_cycles
    assert "replica 1 of 2" in str(batch_info.value)
    # the healthy replica kept committing right up to the raise
    assert int(batch.replica_flits[0]) > 0


def test_single_replica_deadlock_message_matches_solo():
    """A batch of one must raise the byte-identical solo message (the
    differential fuzzer compares error strings across schedulers)."""
    threshold = 25
    solo = Engine(deadlock_threshold=threshold, scheduler="compiled")
    src = FlitBuffer("src", capacity=2)
    dst = FlitBuffer("dst", capacity=1)
    supply = flits(2)
    src.push(supply[0])
    dst.push(supply[1])
    solo.add_component(Pipe(src, dst))
    with pytest.raises(DeadlockError) as solo_info:
        solo.run(10 * threshold)

    batch = BatchedEngine(deadlock_threshold=threshold)
    add_wedged_replica(batch)
    with pytest.raises(DeadlockError) as batch_info:
        batch.run(10 * threshold)
    assert str(batch_info.value) == str(solo_info.value)


def test_replica_flits_per_replica_engine_level():
    engine = BatchedEngine()
    add_spinning_replica(engine)
    add_wedged_replica(engine)
    add_spinning_replica(engine)
    engine.run(10)
    assert engine.replicas == 3
    assert list(engine.replica_flits) == [20, 0, 20]  # 2 commits/cycle spin
    assert engine.flits_moved == 40
    assert engine.occupancy_matrix().sum() == 6
    assert "3 replica(s)" in engine.describe()


def test_seal_replica_guards():
    engine = BatchedEngine()
    with pytest.raises(Exception):
        engine.seal_replica()  # nothing registered yet
    add_spinning_replica(engine)
    engine.run(1)
    with pytest.raises(Exception):
        engine.seal_replica()  # already finalized


def test_trailing_unsealed_components_form_a_replica():
    engine = BatchedEngine()
    add_spinning_replica(engine)
    # no seal after this one: implicit trailing replica
    a = FlitBuffer("a2", capacity=1)
    b = FlitBuffer("b2", capacity=1)
    supply = flits(2)
    a.push(supply[0])
    b.push(supply[1])
    engine.add_component(Pipe(a, b))
    engine.add_component(Pipe(b, a))
    assert engine.replicas == 2
    engine.run(5)
    assert list(engine.replica_flits) == [10, 10]


# ----------------------------------------------------------------------
# runner / cache integration
# ----------------------------------------------------------------------
def test_run_replica_batch_interchangeable_with_solo_cache(tmp_path):
    from repro.runtime.cache import ResultCache
    from repro.runtime.runner import run_point, run_replica_batch
    from repro.runtime.spec import PointSpec

    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = WorkloadConfig(miss_rate=0.05, outstanding=4)
    spec = PointSpec(system, workload, replace(PARAMS, replicas=3))
    cache = ResultCache(str(tmp_path))

    # Pre-populate the middle seed from a solo compiled run.
    solo_spec = PointSpec(system, workload, replace(PARAMS, seed=22, replicas=1))
    solo = run_point(solo_spec, cache=cache)

    results = run_replica_batch(spec, cache=cache)
    assert [r.params.seed for r in results] == [21, 22, 23]
    assert payload(results[1]) == payload(solo)

    # Every replica is now a solo-readable cache entry.
    for seed, result in zip((21, 22, 23), results):
        entry = cache.get(
            PointSpec(system, workload, replace(PARAMS, seed=seed, replicas=1))
        )
        assert entry is not None
        assert payload(entry) == payload(result)

    # Second call is served fully from cache.
    hits = []
    again = run_replica_batch(spec, cache=cache, progress=lambda p: hits.append(p.cache_hits))
    assert [payload(r) for r in again] == [payload(r) for r in results]
    assert hits[-1] == 3


def test_run_replica_batch_multiprocess_matches_serial():
    from repro.runtime.runner import run_replica_batch
    from repro.runtime.spec import PointSpec

    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = WorkloadConfig(miss_rate=0.05, outstanding=4)
    spec = PointSpec(system, workload, PARAMS)
    seeds = (5, 6, 7, 8)
    serial = run_replica_batch(spec, seeds=seeds, jobs=1, cache=None)
    pooled = run_replica_batch(spec, seeds=seeds, jobs=2, cache=None)
    assert [payload(r) for r in pooled] == [payload(r) for r in serial]


def test_simulate_batch_rejects_multi_replica_miss_sources():
    class NullSource:
        def poll(self, cycle, can_issue):
            return None

    system = RingSystemConfig(topology="8", cache_line_bytes=32)
    sources = [NullSource() for __ in range(8)]
    with pytest.raises(ConfigurationError):
        simulate_batch(
            system, None, replace(PARAMS, replicas=2), miss_sources=sources
        )


def test_batched_latency_summaries_are_finite_under_load():
    """Sanity on the statistics plumbing: a loaded batch produces real
    per-replica latency summaries, not NaN placeholders."""
    system = RingSystemConfig(topology="2:4", cache_line_bytes=32)
    workload = WorkloadConfig(miss_rate=0.1, outstanding=4)
    batch = simulate_batch(
        system, workload, replace(PARAMS, batch_cycles=400, replicas=2)
    )
    for result in batch:
        assert result.remote_transactions > 0
        assert not math.isnan(result.latency.mean)
