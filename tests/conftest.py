"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

# Simulation-backed property tests vary in runtime (and CI machines in
# speed); wall-clock deadlines would only add flakes.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)

#: Short but statistically usable run for integration tests.
TEST_SIM = SimulationParams(batch_cycles=600, batches=3, seed=7)

#: Very short run for smoke-level assertions.
TINY_SIM = SimulationParams(batch_cycles=250, batches=2, seed=7)


@pytest.fixture
def test_sim() -> SimulationParams:
    return TEST_SIM


@pytest.fixture
def tiny_sim() -> SimulationParams:
    return TINY_SIM


@pytest.fixture
def light_workload() -> WorkloadConfig:
    """Low offered load: near-zero contention."""
    return WorkloadConfig(locality=1.0, miss_rate=0.005, outstanding=1)


@pytest.fixture
def heavy_workload() -> WorkloadConfig:
    """The paper's default no-locality workload."""
    return WorkloadConfig(locality=1.0, miss_rate=0.04, outstanding=4)


@pytest.fixture
def small_ring_config() -> RingSystemConfig:
    return RingSystemConfig(topology="6", cache_line_bytes=32)


@pytest.fixture
def small_hierarchy_config() -> RingSystemConfig:
    return RingSystemConfig(topology="2:3", cache_line_bytes=32)


@pytest.fixture
def small_mesh_config() -> MeshSystemConfig:
    return MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=4)
