"""Unit and property tests for mesh geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import TopologyError
from repro.mesh.topology import OPPOSITE, MeshShape


class TestMeshShape:
    def test_coordinates_row_major(self):
        shape = MeshShape(3)
        assert shape.coordinates(0) == (0, 0)
        assert shape.coordinates(2) == (2, 0)
        assert shape.coordinates(3) == (0, 1)
        assert shape.coordinates(8) == (2, 2)

    def test_pm_id_round_trip(self):
        shape = MeshShape(4)
        for pm in range(16):
            assert shape.pm_id(*shape.coordinates(pm)) == pm

    def test_out_of_range(self):
        shape = MeshShape(3)
        with pytest.raises(TopologyError):
            shape.coordinates(9)
        with pytest.raises(TopologyError):
            shape.pm_id(3, 0)
        with pytest.raises(TopologyError):
            MeshShape(0)

    def test_hop_distance_is_manhattan(self):
        shape = MeshShape(4)
        assert shape.hop_distance(0, 15) == 6
        assert shape.hop_distance(0, 3) == 3
        assert shape.hop_distance(5, 5) == 0

    def test_corner_neighbors(self):
        shape = MeshShape(3)
        assert shape.neighbors(0) == {"S": 3, "E": 1}
        assert shape.neighbors(8) == {"N": 5, "W": 7}

    def test_center_neighbors(self):
        shape = MeshShape(3)
        assert shape.neighbors(4) == {"N": 1, "S": 7, "E": 5, "W": 3}

    @pytest.mark.parametrize("side,expected", [(2, 8), (3, 24), (4, 48), (11, 440)])
    def test_internal_links(self, side, expected):
        """4*k*(k-1) unidirectional links in a k x k mesh."""
        shape = MeshShape(side)
        assert shape.internal_links() == expected
        counted = sum(len(shape.neighbors(pm)) for pm in range(shape.processors))
        assert counted == expected

    def test_average_distance(self):
        assert MeshShape(2).average_distance() == pytest.approx(4 / 3)

    def test_opposite_directions(self):
        assert OPPOSITE == {"N": "S", "S": "N", "E": "W", "W": "E"}


@given(side=st.integers(2, 8), a=st.integers(0, 63), b=st.integers(0, 63))
def test_distance_symmetric_and_triangular(side, a, b):
    shape = MeshShape(side)
    a %= shape.processors
    b %= shape.processors
    assert shape.hop_distance(a, b) == shape.hop_distance(b, a)
    assert shape.hop_distance(a, b) <= 2 * (side - 1)
    assert (shape.hop_distance(a, b) == 0) == (a == b)


@given(side=st.integers(2, 6))
def test_neighbor_relation_is_symmetric(side):
    shape = MeshShape(side)
    for pm in range(shape.processors):
        for direction, other in shape.neighbors(pm).items():
            assert shape.neighbors(other)[OPPOSITE[direction]] == pm
