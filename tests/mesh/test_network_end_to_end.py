"""End-to-end mesh tests: delivery for all pairs and exact zero-load timing."""

import pytest

from repro.analysis.zero_load import mesh_zero_load_round_trip
from repro.core.config import MeshSystemConfig, WorkloadConfig
from repro.core.engine import Engine
from repro.core.pm import MetricsHub
from repro.mesh.network import MeshNetwork

IDLE = WorkloadConfig(miss_rate=1e-9, outstanding=1)


def build_idle(side=3, buffer_flits=4, cache_line=32):
    config = MeshSystemConfig(
        side=side, cache_line_bytes=cache_line, buffer_flits=buffer_flits
    )
    metrics = MetricsHub()
    network = MeshNetwork(config, IDLE, metrics, seed=1)
    engine = Engine()
    network.register(engine)
    return config, network, engine, metrics


@pytest.mark.parametrize("side", [2, 3, 4])
@pytest.mark.parametrize("buffer_flits", [1, 4, "cl"])
def test_all_pairs_delivered(side, buffer_flits):
    config, network, engine, metrics = build_idle(side, buffer_flits)
    processors = config.processors
    completed = 0
    for src in range(processors):
        for dst in range(processors):
            if src == dst:
                continue
            network.pms[src].issue_remote(dst, cycle=engine.cycle)
            for _ in range(600):
                engine.step()
                if metrics.remote_completed > completed:
                    break
            completed += 1
            assert metrics.remote_completed == completed, f"{src}->{dst} lost"


@pytest.mark.parametrize("is_read", [True, False], ids=["read", "write"])
@pytest.mark.parametrize("buffer_flits", [1, 4, "cl"])
def test_zero_load_latency_matches_analytic(buffer_flits, is_read):
    """Idle-mesh round trips land exactly on the closed form, for any
    buffer depth (at zero load the buffers never fill)."""
    config, network, engine, metrics = build_idle(3, buffer_flits)
    for src, dst in [(0, 1), (0, 8), (4, 2), (7, 0), (3, 5)]:
        before = metrics.remote_completed
        network.pms[src].issue_remote(dst, is_read=is_read, cycle=engine.cycle)
        start = engine.cycle
        for _ in range(600):
            engine.step()
            if metrics.remote_completed > before:
                break
        measured = metrics.remote_latency.last
        expected = mesh_zero_load_round_trip(config, src, dst, is_read=is_read)
        assert measured == expected, (src, dst, measured, expected)


def test_utilization_counts_only_router_links():
    config, network, engine, metrics = build_idle(3)
    network.pms[0].issue_remote(1)
    engine.run(40)
    # A 4-flit read request + 12-flit response over one hop each way:
    # 16 link-flits total on router-router channels.
    assert network.flits_carried() == 16
    assert network.opportunities(40) == 24 * 40


def test_levels_reported():
    __, network, __, __ = build_idle(2)
    assert network.levels_present == ["mesh"]
    assert network.flits_carried("bogus") == 0
    assert network.opportunities(10, "bogus") == 0.0
