"""Behavioural tests for the 5x5 mesh crossbar router."""

import pytest

from repro.core.config import MeshSystemConfig, WorkloadConfig
from repro.core.engine import Engine
from repro.core.errors import SimulationError
from repro.core.packet import Packet, PacketType
from repro.core.pm import MetricsHub
from repro.mesh.network import MeshNetwork
from repro.mesh.router import INPUT_ORDER, MeshRouter


def packet(dst, ptype=PacketType.WRITE_REQUEST, size=4, src=0):
    return Packet(ptype, src, dst, size, transaction_id=1, issue_cycle=0)


def build(side=3, buffer_flits=4, cache_line=32):
    config = MeshSystemConfig(
        side=side, cache_line_bytes=cache_line, buffer_flits=buffer_flits
    )
    network = MeshNetwork(config, WorkloadConfig(miss_rate=1e-9), MetricsHub())
    engine = Engine()
    network.register(engine)
    return network, engine


class TestWiring:
    def test_corner_router_outputs(self):
        network, __ = build(3)
        assert set(network.routers[0].connected_outputs) == {"E", "S", "L"}
        assert set(network.routers[4].connected_outputs) == {"N", "E", "S", "W", "L"}

    def test_channel_count(self):
        network, __ = build(3)
        assert len(network.channels) == 24

    def test_send_lands_in_opposite_buffer(self):
        network, engine = build(3)
        router = network.routers[0]
        incoming = packet(dst=2)  # routed East from node 0
        for flit in incoming.flits:
            router.input_buffers["W"].push(flit)  # pretend it came from the West edge
        engine.step()
        neighbor = network.routers[1]
        assert neighbor.input_buffers["W"].occupancy == 1


class TestOutputLocking:
    def test_output_held_until_tail(self):
        network, engine = build(3)
        router = network.routers[0]
        first = packet(dst=2, src=6)
        second = packet(dst=1, src=0, size=4)
        for flit in first.flits:
            router.input_buffers["S"].push(flit)
        engine.step()  # S wins output E (routes 0->1->2 East)
        assert router._output_lock["E"] == "S"
        # A local packet also wanting East must wait for the tail.
        pm = network.pms[0]
        for flit in second.flits:
            pm.out_req.push(flit)
        for _ in range(3):
            engine.step()
        assert router._output_lock["E"] is None  # tail passed, lock released
        assert pm.out_req.occupancy in (3, 4)  # local packet at most now starting

    def test_interleaving_never_happens(self):
        """Downstream West buffer receives the two packets contiguously."""
        network, engine = build(3, buffer_flits=8)
        router = network.routers[0]
        pm = network.pms[0]
        a = packet(dst=2, src=6)
        b = packet(dst=2, src=0)
        for flit in a.flits:
            router.input_buffers["S"].push(flit)
        for flit in b.flits:
            pm.out_req.push(flit)
        seen = []
        neighbor = network.routers[1]
        for _ in range(20):
            engine.step()
            while not neighbor.input_buffers["W"].is_empty:
                seen.append(neighbor.input_buffers["W"].pop())
        order = [flit.packet.packet_id for flit in seen]
        # Contiguous blocks: once a packet id stops, it never reappears.
        blocks = [order[0]]
        for pid in order[1:]:
            if pid != blocks[-1]:
                blocks.append(pid)
        assert len(blocks) == len(set(blocks))
        assert len(seen) == 8


class TestRoundRobinArbitration:
    def test_pointer_advances_after_grant(self):
        network, engine = build(3)
        router = network.routers[4]  # center node
        a = packet(dst=5, src=3)  # arrives from W, heads E
        b = packet(dst=5, src=1)  # arrives from N... also heads E
        for flit in a.flits:
            router.input_buffers["W"].push(flit)
        for flit in b.flits:
            router.input_buffers["N"].push(flit)
        engine.step()
        first_winner = router._output_lock["E"]
        assert first_winner in ("N", "W")
        # Drain the first packet fully, then the other input must win.
        for _ in range(10):
            engine.step()
        assert router.input_buffers["N"].is_empty
        assert router.input_buffers["W"].is_empty

    def test_rr_pointer_moves_past_winner(self):
        network, engine = build(3)
        router = network.routers[4]
        flit_packet = packet(dst=5, src=3, size=1)
        router.input_buffers["W"].push(flit_packet.head)
        engine.step()
        expected = (INPUT_ORDER.index("W") + 1) % len(INPUT_ORDER)
        assert router._rr_pointer["E"] == expected


class TestEjection:
    def test_packet_for_local_pm_ejects(self):
        network, engine = build(3)
        router = network.routers[4]
        incoming = packet(dst=4, src=0)
        for flit in incoming.flits:
            router.input_buffers["W"].push(flit)
        engine.run(6)
        # Memory absorbed it: the request is in service.
        assert network.pms[4].memory.in_service == 1

    def test_response_priority_at_injection(self):
        network, engine = build(3)
        pm = network.pms[0]
        request = packet(dst=2, src=0, ptype=PacketType.READ_REQUEST, size=4)
        response = packet(dst=2, src=0, ptype=PacketType.READ_RESPONSE, size=4)
        for flit in request.flits:
            pm.out_req.push(flit)
        for flit in response.flits:
            pm.out_resp.push(flit)
        engine.step()
        assert pm.out_resp.occupancy == 3  # response started first
        assert pm.out_req.occupancy == 4


class TestOneFlitBuffers:
    def test_pipeline_through_single_slot_buffers(self):
        network, engine = build(3, buffer_flits=1)
        router = network.routers[0]
        incoming = packet(dst=2, src=6)
        router.input_buffers["S"].push(incoming.flits[0])
        moved = []
        for cycle in range(12):
            engine.step()
            if len(moved) < len(incoming.flits) - 1 and router.input_buffers["S"].is_empty:
                nxt = incoming.flits[len(moved) + 1]
                router.input_buffers["S"].push(nxt)
                moved.append(nxt)
        assert network.pms[2].memory.in_service == 1


class TestErrorPaths:
    def test_idle_input_with_body_flit_rejected(self):
        network, engine = build(3)
        router = network.routers[0]
        body = packet(dst=2, src=6).flits[2]
        router.input_buffers["S"].push(body)
        with pytest.raises(SimulationError):
            engine.step()

    def test_unknown_direction_connect(self):
        network, __ = build(2)
        with pytest.raises(KeyError):
            network.routers[0].input_buffers["X"]
