"""Unit and property tests for e-cube (dimension-order) routing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mesh.routing import LOCAL, ecube_next_direction, ecube_path
from repro.mesh.topology import MeshShape


class TestNextDirection:
    def test_x_corrected_first(self):
        shape = MeshShape(4)
        # From (0,0) to (2,2): must head East until x matches.
        assert ecube_next_direction(shape, 0, 10) == "E"
        # From (2,0) to (2,2): x matches, head South.
        assert ecube_next_direction(shape, 2, 10) == "S"

    def test_west_and_north(self):
        shape = MeshShape(4)
        assert ecube_next_direction(shape, 10, 8) == "W"
        assert ecube_next_direction(shape, 8, 0) == "N"

    def test_arrival_is_local(self):
        shape = MeshShape(4)
        assert ecube_next_direction(shape, 7, 7) == LOCAL


class TestPath:
    def test_path_is_x_then_y(self):
        shape = MeshShape(4)
        path = ecube_path(shape, 0, 10)  # (0,0) -> (2,2)
        assert path == [0, 1, 2, 6, 10]

    def test_path_length_is_manhattan(self):
        shape = MeshShape(5)
        for src in range(25):
            for dst in range(25):
                path = ecube_path(shape, src, dst)
                assert len(path) - 1 == shape.hop_distance(src, dst)


@given(side=st.integers(2, 7), src=st.integers(0, 48), dst=st.integers(0, 48))
def test_each_hop_reduces_distance(side, src, dst):
    shape = MeshShape(side)
    src %= shape.processors
    dst %= shape.processors
    current = src
    steps = 0
    while current != dst:
        direction = ecube_next_direction(shape, current, dst)
        nxt = shape.neighbors(current)[direction]
        assert shape.hop_distance(nxt, dst) == shape.hop_distance(current, dst) - 1
        current = nxt
        steps += 1
        assert steps <= 2 * side  # no cycles


@given(side=st.integers(2, 6), src=st.integers(0, 35), dst=st.integers(0, 35))
def test_deadlock_freedom_ordering(side, src, dst):
    """Dimension order: no E/W hop may follow an N/S hop.

    This ordering is what makes the channel dependency graph acyclic and
    e-cube deadlock-free on a mesh without end-around links.
    """
    shape = MeshShape(side)
    src %= shape.processors
    dst %= shape.processors
    path = ecube_path(shape, src, dst)
    directions = []
    for here, there in zip(path, path[1:]):
        for direction, neighbor in shape.neighbors(here).items():
            if neighbor == there:
                directions.append(direction)
    saw_y = False
    for direction in directions:
        if direction in ("N", "S"):
            saw_y = True
        elif saw_y:
            raise AssertionError(f"X hop after Y hop in {directions}")
