"""Tests for the slotted (non-blocking) ring switching extension.

The paper simulates wormhole rings but notes (footnote 3, Section 5)
that Hector and NUMAchine implement slotted switching, which "tends to
perform somewhat better".  In slotted mode a packet that cannot change
rings recirculates instead of blocking, and injection only starts into
a clear station.
"""

import pytest

from repro.core.config import (
    ConfigurationError,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from repro.core.engine import Engine
from repro.core.packet import Packet, PacketType
from repro.core.pm import MetricsHub
from repro.core.simulation import simulate
from repro.ring.iri import InterRingInterface
from repro.ring.network import HierarchicalRingNetwork
from repro.ring.topology import HierarchySpec

IDLE = WorkloadConfig(miss_rate=1e-9, outstanding=1)


def build_idle(topology="2:3", switching="slotted"):
    config = RingSystemConfig(
        topology=topology, cache_line_bytes=32, switching=switching
    )
    metrics = MetricsHub()
    network = HierarchicalRingNetwork(config, IDLE, metrics, seed=1)
    engine = Engine()
    network.register(engine)
    return config, network, engine, metrics


def packet(ptype, dst, size=3):
    return Packet(ptype, 0, dst, size, transaction_id=1, issue_cycle=0)


class TestConfig:
    def test_validation(self):
        RingSystemConfig(switching="slotted").validate()
        with pytest.raises(ConfigurationError):
            RingSystemConfig(switching="virtual-cut-through").validate()

    def test_flags_propagate(self):
        __, network, __, __ = build_idle()
        assert all(nic.slotted for nic in network.nics)
        assert all(iri.slotted for iri in network.iris.values())
        assert all(iri.lower_port.slotted for iri in network.iris.values())


class TestRecirculation:
    def make_iri(self, slotted=True):
        spec = HierarchySpec.parse("2:3")
        return InterRingInterface(
            "iri", spec, child_prefix=(0,), buffer_flits=3, slotted=slotted
        )

    def test_full_up_queue_recirculates(self):
        iri = self.make_iri()
        blocker = packet(PacketType.READ_RESPONSE, dst=4, size=3)
        for flit in blocker:
            iri.up_resp.push(flit)
        arriving = packet(PacketType.READ_RESPONSE, dst=4, size=3)
        assert iri._classify_lower(arriving) is iri.lower_port.transit_buffer
        assert iri.recirculations == 1

    def test_partial_space_admits_per_slot(self):
        """Slots are routed independently: any free entry admits a slot
        (a packet's remaining slots may recirculate separately)."""
        iri = self.make_iri()
        one = packet(PacketType.READ_REQUEST, dst=4, size=1)
        iri.up_req.push(one.head)
        arriving = packet(PacketType.WRITE_REQUEST, dst=4, size=3)
        assert iri._classify_lower(arriving) is iri.up_req

    def test_fitting_packet_ascends(self):
        iri = self.make_iri()
        arriving = packet(PacketType.READ_REQUEST, dst=4, size=1)
        assert iri._classify_lower(arriving) is iri.up_req
        assert iri.recirculations == 0

    def test_wormhole_mode_blocks_instead(self):
        iri = self.make_iri(slotted=False)
        blocker = packet(PacketType.READ_RESPONSE, dst=4, size=3)
        for flit in blocker:
            iri.up_resp.push(flit)
        arriving = packet(PacketType.READ_RESPONSE, dst=4, size=3)
        assert iri._classify_lower(arriving) is iri.up_resp  # backpressure

    def test_down_queue_recirculates_on_upper_ring(self):
        iri = self.make_iri()
        blocker = packet(PacketType.READ_RESPONSE, dst=1, size=3)
        for flit in blocker:
            iri.down_resp.push(flit)
        arriving = packet(PacketType.READ_RESPONSE, dst=2, size=3)
        assert iri._classify_upper(arriving) is iri.upper_port.transit_buffer


class TestInsertionInterleaving:
    def test_contended_station_alternates(self):
        """With transit and insertion both waiting, slots alternate
        (register-insertion fairness): 6 cycles move 3 flits of each."""
        __, network, engine, __ = build_idle("4")
        nic = network.nics[0]
        transit = packet(PacketType.WRITE_REQUEST, dst=2, size=3)
        own = packet(PacketType.WRITE_REQUEST, dst=2, size=3)
        for flit in transit:
            nic.transit_buffer.push(flit)
        for flit in own:
            network.pms[0].out_req.push(flit)
        engine.run(2)
        # One of each moved in the first two cycles.
        assert network.pms[0].out_req.occupancy == 2
        assert nic.transit_buffer.occupancy <= 2

    def test_transit_goes_first_from_idle(self):
        __, network, engine, __ = build_idle("4")
        nic = network.nics[0]
        transit = packet(PacketType.WRITE_REQUEST, dst=2, size=3)
        own = packet(PacketType.WRITE_REQUEST, dst=2, size=3)
        for flit in transit:
            nic.transit_buffer.push(flit)
        for flit in own:
            network.pms[0].out_req.push(flit)
        engine.step()
        assert nic.transit_buffer.occupancy == 2  # transit advanced first
        assert network.pms[0].out_req.occupancy == 3

    def test_injection_when_clear(self):
        __, network, engine, __ = build_idle("4")
        own = packet(PacketType.WRITE_REQUEST, dst=2, size=3)
        for flit in own:
            network.pms[0].out_req.push(flit)
        engine.step()
        assert network.pms[0].out_req.occupancy == 2

    def test_slots_of_concurrent_packets_deliver(self):
        """Unlike wormhole, slotted flits from different packets can mix
        on a link; destination reassembly is by count (ProcessingModule)."""
        __, network, engine, metrics = build_idle("4")
        network.pms[0].issue_remote(2, is_read=False, cycle=0)
        network.pms[1].issue_remote(2, is_read=False, cycle=0)
        engine.run(120)
        assert metrics.remote_completed == 2


class TestEndToEnd:
    @pytest.mark.parametrize("topology", ["4", "2:3", "2:2:3"])
    def test_all_pairs_delivered(self, topology):
        __, network, engine, metrics = build_idle(topology)
        processors = network.spec.processors
        completed = 0
        for src in range(processors):
            for dst in range(processors):
                if src == dst:
                    continue
                network.pms[src].issue_remote(dst, cycle=engine.cycle)
                for _ in range(500):
                    engine.step()
                    if metrics.remote_completed > completed:
                        break
                completed += 1
                assert metrics.remote_completed == completed, f"{src}->{dst}"

    def test_idle_latency_matches_wormhole(self):
        """With no contention the two switching modes time identically."""
        results = {}
        for switching in ("wormhole", "slotted"):
            config = RingSystemConfig(
                topology="2:3", cache_line_bytes=32, switching=switching
            )
            results[switching] = simulate(
                config,
                WorkloadConfig(miss_rate=0.002, outstanding=1),
                SimulationParams(batch_cycles=3000, batches=4, seed=3),
            )
        assert results["wormhole"].avg_latency == pytest.approx(
            results["slotted"].avg_latency, rel=0.02
        )

    def test_saturated_slotted_system_completes(self):
        config = RingSystemConfig(
            topology="4:8", cache_line_bytes=32, switching="slotted"
        )
        result = simulate(
            config,
            WorkloadConfig(miss_rate=0.04, outstanding=4),
            SimulationParams(batch_cycles=1500, batches=3, seed=3,
                             deadlock_threshold=5000),
        )
        assert result.remote_transactions > 100
