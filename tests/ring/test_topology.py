"""Unit and property tests for hierarchical ring topology/addressing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import TopologyError
from repro.ring.topology import (
    MAX_RINGS_PER_DOUBLE_SPEED_RING,
    MAX_RINGS_PER_RING,
    PAPER_TABLE2,
    SINGLE_RING_MAX,
    HierarchySpec,
    candidate_topologies,
    double_speed_max_processors,
    max_children,
    recommended_topology,
)

branching_strategy = st.lists(
    st.integers(min_value=2, max_value=6), min_size=1, max_size=4
).map(tuple)


class TestHierarchySpec:
    def test_basic_shape(self):
        spec = HierarchySpec.parse("2:3:4")
        assert spec.levels == 3
        assert spec.processors == 24
        assert spec.pms_per_local_ring == 4
        assert str(spec) == "2:3:4"

    def test_ring_enumeration(self):
        spec = HierarchySpec.parse("2:3:4")
        assert list(spec.rings_at_depth(0)) == [()]
        assert list(spec.rings_at_depth(1)) == [(0,), (1,)]
        assert len(list(spec.rings_at_depth(2))) == 6
        assert spec.ring_count() == 9
        assert spec.iri_count() == 8

    def test_single_ring(self):
        spec = HierarchySpec.parse("8")
        assert spec.levels == 1
        assert spec.ring_count() == 1
        assert spec.iri_count() == 0

    def test_address_mapping(self):
        spec = HierarchySpec.parse("2:3:4")
        assert spec.address_of(0) == (0, 0, 0)
        assert spec.address_of(23) == (1, 2, 3)
        assert spec.address_of(13) == (1, 0, 1)

    def test_addresses_are_dfs_order(self):
        """PM ids follow the linear projection (lexicographic DFS)."""
        spec = HierarchySpec.parse("2:2:3")
        addresses = [spec.address_of(pm) for pm in range(spec.processors)]
        assert addresses == sorted(addresses)

    def test_in_subtree(self):
        spec = HierarchySpec.parse("2:3:4")
        assert spec.in_subtree(0, ())
        assert spec.in_subtree(0, (0,))
        assert not spec.in_subtree(0, (1,))
        assert spec.in_subtree(23, (1, 2))

    def test_local_ring_of(self):
        spec = HierarchySpec.parse("2:3:4")
        assert spec.local_ring_of(5) == (0, 1)

    def test_hop_levels(self):
        spec = HierarchySpec.parse("2:3:4")
        assert spec.hop_levels(0, 1) == 1  # same local ring
        assert spec.hop_levels(0, 5) == 2  # same intermediate subtree
        assert spec.hop_levels(0, 23) == 3  # across the global ring
        assert spec.hop_levels(7, 7) == 0

    def test_out_of_range(self):
        spec = HierarchySpec.parse("2:3")
        with pytest.raises(TopologyError):
            spec.address_of(6)
        with pytest.raises(TopologyError):
            spec.pm_id_of((2, 0))
        with pytest.raises(TopologyError):
            spec.rings_at_depth(2)


@given(branching=branching_strategy)
def test_address_round_trip(branching):
    spec = HierarchySpec(branching)
    for pm in range(spec.processors):
        assert spec.pm_id_of(spec.address_of(pm)) == pm


@given(branching=branching_strategy)
def test_local_rings_partition_pms(branching):
    spec = HierarchySpec(branching)
    count = 0
    for prefix in spec.rings_at_depth(spec.levels - 1):
        members = [
            pm for pm in range(spec.processors) if spec.local_ring_of(pm) == prefix
        ]
        assert len(members) == spec.pms_per_local_ring
        count += len(members)
    assert count == spec.processors


class TestPaperTable2:
    def test_products_match_processor_counts(self):
        for table in PAPER_TABLE2.values():
            for processors, branching in table.items():
                spec = HierarchySpec(branching)
                assert spec.processors == processors

    def test_design_rules_hold(self):
        """Every Table 2 topology obeys the paper's fan-out limits."""
        for cache_line, table in PAPER_TABLE2.items():
            for branching in table.values():
                assert branching[-1] <= SINGLE_RING_MAX[cache_line]
                for fan in branching[:-1]:
                    assert fan <= MAX_RINGS_PER_RING

    def test_all_sizes_present(self):
        sizes = {4, 6, 8, 12, 18, 24, 36, 54, 72, 108}
        for table in PAPER_TABLE2.values():
            assert set(table) == sizes


class TestCandidateTopologies:
    def test_products_correct(self):
        for branching in candidate_topologies(24, 32):
            assert HierarchySpec(branching).processors == 24

    def test_respects_design_rules(self):
        for branching in candidate_topologies(36, 128):
            assert branching[-1] <= SINGLE_RING_MAX[128]
            for fan in branching[:-1]:
                assert fan <= MAX_RINGS_PER_RING

    def test_includes_paper_choice(self):
        for cache_line in (16, 32, 64, 128):
            for processors, choice in PAPER_TABLE2[cache_line].items():
                if processors > 36:
                    continue
                assert choice in candidate_topologies(processors, cache_line), (
                    processors, cache_line, choice,
                )

    def test_unconstrained_mode(self):
        free = candidate_topologies(16, 128, enforce_design_rules=False)
        assert (16,) in free  # way over the 128B single-ring max of 4


class TestRecommendedTopology:
    def test_prefers_paper_table(self):
        assert recommended_topology(24, 32) == (3, 8)
        assert recommended_topology(108, 128) == (3, 3, 3, 4)

    def test_fallback_for_other_sizes(self):
        branching = recommended_topology(16, 32)
        assert HierarchySpec(branching).processors == 16
        assert branching[-1] <= SINGLE_RING_MAX[32]

    def test_impossible_size_raises(self):
        with pytest.raises(TopologyError):
            recommended_topology(7919, 128)  # large prime


class TestDesignRuleHelpers:
    def test_max_children(self):
        assert max_children(2, 3, 32, 1) == SINGLE_RING_MAX[32]
        assert max_children(0, 3, 32, 1) == MAX_RINGS_PER_RING
        assert max_children(0, 3, 32, 2) == MAX_RINGS_PER_DOUBLE_SPEED_RING
        assert max_children(1, 3, 32, 2) == MAX_RINGS_PER_RING

    def test_double_speed_max_processors(self):
        """Section 6: 180/120/90/60 processors for 16/32/64/128B lines."""
        assert double_speed_max_processors(16) == 180
        assert double_speed_max_processors(32) == 120
        assert double_speed_max_processors(64) == 90
        assert double_speed_max_processors(128) == 60
