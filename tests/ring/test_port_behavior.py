"""Behavioural tests for ring ports: classification, arbitration
priority, and wormhole continuity."""

import pytest

from repro.core.buffers import FlitBuffer
from repro.core.config import RingSystemConfig, WorkloadConfig
from repro.core.engine import Engine
from repro.core.errors import SimulationError
from repro.core.packet import Packet, PacketType
from repro.core.pm import MetricsHub
from repro.ring.iri import InterRingInterface
from repro.ring.network import HierarchicalRingNetwork
from repro.ring.topology import HierarchySpec


def packet(ptype, dst, size=3, src=0):
    return Packet(ptype, src, dst, size, transaction_id=1, issue_cycle=0)


def build(topology="2:3"):
    config = RingSystemConfig(topology=topology, cache_line_bytes=32)
    return HierarchicalRingNetwork(
        config, WorkloadConfig(miss_rate=1e-9), MetricsHub()
    )


class TestNICClassification:
    def test_own_packets_sink(self):
        network = build()
        nic = network.nics[2]
        incoming = packet(PacketType.READ_RESPONSE, dst=2)
        assert nic.classify(incoming) is network.pms[2].in_queue

    def test_transit_packets_continue(self):
        network = build()
        nic = network.nics[2]
        incoming = packet(PacketType.READ_RESPONSE, dst=1)
        assert nic.classify(incoming) is nic.transit_buffer


class TestIRIClassification:
    def make_iri(self):
        spec = HierarchySpec.parse("2:3")
        return InterRingInterface(
            "iri", spec, child_prefix=(0,), buffer_flits=3
        )

    def test_lower_side_in_subtree_transits(self):
        iri = self.make_iri()
        assert iri._classify_lower(packet(PacketType.READ_REQUEST, dst=1)) \
            is iri.lower_port.transit_buffer

    def test_lower_side_out_of_subtree_ascends_split_by_type(self):
        iri = self.make_iri()
        assert iri._classify_lower(packet(PacketType.READ_REQUEST, dst=4)) is iri.up_req
        assert iri._classify_lower(packet(PacketType.READ_RESPONSE, dst=4)) is iri.up_resp
        assert iri._classify_lower(packet(PacketType.WRITE_REQUEST, dst=4)) is iri.up_req
        assert iri._classify_lower(packet(PacketType.WRITE_RESPONSE, dst=4)) is iri.up_resp

    def test_upper_side_in_subtree_descends_split_by_type(self):
        iri = self.make_iri()
        assert iri._classify_upper(packet(PacketType.READ_REQUEST, dst=2)) is iri.down_req
        assert iri._classify_upper(packet(PacketType.WRITE_RESPONSE, dst=2)) is iri.down_resp

    def test_upper_side_out_of_subtree_transits(self):
        iri = self.make_iri()
        assert iri._classify_upper(packet(PacketType.READ_REQUEST, dst=4)) \
            is iri.upper_port.transit_buffer


class TestOutputPriority:
    """Section 2.1: transit first, then responses, then requests."""

    def run_one_cycle_with(self, transit=None, response=None, request=None):
        network = build("4")
        nic = network.nics[0]
        pm = network.pms[0]
        engine = Engine()
        network.register(engine)
        if transit is not None:
            for flit in transit:
                nic.transit_buffer.push(flit)
        if response is not None:
            for flit in response:
                pm.out_resp.push(flit)
        if request is not None:
            for flit in request:
                pm.out_req.push(flit)
        engine.step()
        return network, nic, pm

    def test_transit_beats_response(self):
        transit = packet(PacketType.READ_RESPONSE, dst=2, src=3)
        own = packet(PacketType.READ_RESPONSE, dst=2, src=0)
        network, nic, pm = self.run_one_cycle_with(
            transit=transit.flits, response=own.flits
        )
        assert nic.transit_buffer.occupancy == 2  # one transit flit left
        assert pm.out_resp.occupancy == 3  # response untouched

    def test_response_beats_request(self):
        own_resp = packet(PacketType.READ_RESPONSE, dst=2, src=0)
        own_req = packet(PacketType.READ_REQUEST, dst=2, src=0, size=1)
        network, nic, pm = self.run_one_cycle_with(
            response=own_resp.flits, request=own_req.flits
        )
        assert pm.out_resp.occupancy == 2  # response advanced
        assert pm.out_req.occupancy == 1  # request waits

    def test_request_sent_when_alone(self):
        own_req = packet(PacketType.READ_REQUEST, dst=2, src=0, size=1)
        network, nic, pm = self.run_one_cycle_with(request=own_req.flits)
        assert pm.out_req.is_empty


class TestWormholeContinuity:
    def test_packet_not_interleaved_once_started(self):
        """After a response's head is sent, a newly arrived transit flit
        must wait for the tail even though transit has priority."""
        network = build("4")
        nic = network.nics[0]
        pm = network.pms[0]
        engine = Engine()
        network.register(engine)
        own = packet(PacketType.WRITE_REQUEST, dst=2, src=0)
        for flit in own.flits:
            pm.out_resp.push(flit)
        engine.step()  # head of own packet goes out
        transit = packet(PacketType.WRITE_REQUEST, dst=2, src=3)
        for flit in transit.flits:
            nic.transit_buffer.push(flit)
        engine.step()
        engine.step()  # remaining two flits of own packet
        assert pm.out_resp.is_empty
        assert nic.transit_buffer.occupancy == 3  # transit waited throughout
        engine.step()
        assert nic.transit_buffer.occupancy == 2  # now transit proceeds

    def test_mid_packet_head_of_idle_port_rejected(self):
        network = build("4")
        nic = network.nics[0]
        body = packet(PacketType.READ_RESPONSE, dst=2, src=3).flits[1]
        nic.transit_buffer.push(body)
        engine = Engine()
        network.register(engine)
        with pytest.raises(SimulationError):
            engine.step()


class TestUnwiredPort:
    def test_propose_requires_wiring(self):
        from repro.ring.port import RingPort

        port = RingPort(
            "lonely",
            transit_buffer=FlitBuffer("t", 3),
            injection_sources=[],
            classify=lambda p: None,
        )
        port.transit_buffer.push(packet(PacketType.READ_REQUEST, dst=1, size=1).head)
        engine = Engine()
        engine.add_component(port)
        with pytest.raises(SimulationError):
            engine.step()
