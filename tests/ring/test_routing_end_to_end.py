"""End-to-end routing tests: every packet reaches its destination along
the unique hierarchical route, in exactly the analytically predicted
number of cycles on an idle network."""

import pytest

from repro.analysis.zero_load import ring_path_length, ring_zero_load_round_trip
from repro.core.config import RingSystemConfig, SimulationParams, WorkloadConfig
from repro.core.engine import Engine
from repro.core.pm import MetricsHub
from repro.core.simulation import simulate
from repro.ring.network import HierarchicalRingNetwork
from repro.ring.topology import HierarchySpec

IDLE = WorkloadConfig(miss_rate=1e-9, outstanding=1)

TOPOLOGIES = ["4", "2:3", "3:4", "2:2:3", "2:3:2", "3:2:2:2"]


def build_idle_network(topology, cache_line=32, speed=1):
    config = RingSystemConfig(
        topology=topology, cache_line_bytes=cache_line, global_ring_speed=speed
    )
    metrics = MetricsHub()
    network = HierarchicalRingNetwork(config, IDLE, metrics, seed=1)
    engine = Engine()
    network.register(engine)
    return config, network, engine, metrics


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_all_pairs_delivered(topology):
    """One read transaction per (src, dst) pair completes, serially."""
    config, network, engine, metrics = build_idle_network(topology)
    processors = network.spec.processors
    completed = 0
    for src in range(processors):
        for dst in range(processors):
            if src == dst:
                continue
            network.pms[src].issue_remote(dst, is_read=True, cycle=engine.cycle)
            for _ in range(500):
                engine.step()
                if metrics.remote_completed > completed:
                    break
            completed += 1
            assert metrics.remote_completed == completed, (
                f"transaction {src}->{dst} did not complete"
            )


@pytest.mark.parametrize("topology", ["4", "2:3", "2:2:3"])
@pytest.mark.parametrize("is_read", [True, False], ids=["read", "write"])
def test_zero_load_latency_matches_analytic(topology, is_read):
    """Idle-network round trips land exactly on the closed form."""
    config, network, engine, metrics = build_idle_network(topology)
    processors = network.spec.processors
    for src in range(processors):
        for dst in range(processors):
            if src == dst:
                continue
            start = engine.cycle
            network.pms[src].issue_remote(dst, is_read=is_read, cycle=start)
            before = metrics.remote_completed
            for _ in range(500):
                engine.step()
                if metrics.remote_completed > before:
                    break
            measured = metrics.remote_latency.last
            expected = ring_zero_load_round_trip(config, src, dst, is_read=is_read)
            assert measured == expected, (src, dst, measured, expected)


class TestPathLengthModel:
    def test_single_ring_pairs(self):
        spec = HierarchySpec.parse("5")
        assert ring_path_length(spec, 0, 1) == 1
        assert ring_path_length(spec, 0, 4) == 4
        assert ring_path_length(spec, 4, 0) == 1
        assert ring_path_length(spec, 2, 2) == 0

    def test_forward_backward_sum_on_single_ring(self):
        """On a unidirectional ring the two directions sum to N links."""
        spec = HierarchySpec.parse("7")
        for src in range(7):
            for dst in range(7):
                if src != dst:
                    forward = ring_path_length(spec, src, dst)
                    backward = ring_path_length(spec, dst, src)
                    assert forward + backward == 7

    def test_hierarchy_same_local_ring(self):
        spec = HierarchySpec.parse("2:3")
        # PMs 0,1,2 share local ring (0,): ring has IRI + 3 NICs (size 4).
        assert ring_path_length(spec, 0, 1) == 1
        assert ring_path_length(spec, 2, 0) == 2  # wraps via the IRI position

    def test_hierarchy_cross_ring(self):
        spec = HierarchySpec.parse("2:3")
        # 0 -> 3: around local ring 0 to IRI (3 hops from NIC pos 1),
        # across the global ring (1 hop), down into ring 1 to NIC pos 1.
        assert ring_path_length(spec, 0, 3) == 3 + 1 + 1


class TestUtilizationAccounting:
    def test_flits_counted_per_level(self):
        __, network, engine, __ = build_idle_network("2:2")
        network.pms[0].issue_remote(2)  # must cross the global ring
        engine.run(60)
        assert network.flits_carried("local") > 0
        assert network.flits_carried("global") > 0
        total = network.flits_carried(None)
        assert total == network.flits_carried("local") + network.flits_carried("global")


def test_simulate_front_end_agrees_with_manual_engine():
    """simulate() on a tiny idle system reports the analytic average."""
    config = RingSystemConfig(topology="4", cache_line_bytes=32)
    result = simulate(
        config,
        WorkloadConfig(miss_rate=0.003, outstanding=1),
        SimulationParams(batch_cycles=3000, batches=4, seed=11),
    )
    expected = ring_zero_load_round_trip(config, 0, 1)  # pair-independent
    assert abs(result.avg_latency - expected) < 1.0
