"""Structural tests for the hierarchical ring network builder."""

import pytest

from repro.core.config import RingSystemConfig, WorkloadConfig
from repro.core.errors import ConfigurationError
from repro.core.pm import MetricsHub
from repro.ring.network import HierarchicalRingNetwork, level_name


def build(topology, cache_line=32, speed=1):
    config = RingSystemConfig(
        topology=topology, cache_line_bytes=cache_line, global_ring_speed=speed
    )
    return HierarchicalRingNetwork(config, WorkloadConfig(), MetricsHub())


class TestLevelNames:
    def test_single_ring_is_local(self):
        assert level_name(0, 1) == "local"

    def test_two_levels(self):
        assert level_name(0, 2) == "global"
        assert level_name(1, 2) == "local"

    def test_four_levels(self):
        assert level_name(0, 4) == "global"
        assert level_name(1, 4) == "intermediate"
        assert level_name(2, 4) == "intermediate"
        assert level_name(3, 4) == "local"


class TestComponentCounts:
    def test_single_ring(self):
        network = build("6")
        assert len(network.pms) == 6
        assert len(network.nics) == 6
        assert len(network.iris) == 0
        # 6 NICs in a loop -> 6 unidirectional links, all local.
        assert len(network.channels) == 6
        assert network.levels_present == ["local"]

    def test_three_level(self):
        network = build("2:3:4")
        assert len(network.pms) == 24
        assert len(network.iris) == 8  # 2 intermediate + 6 local rings
        # Links: global ring 2; intermediate rings 2*(1+3)=8;
        # local rings 6*(1+4)=30.
        by_level = {}
        for channel in network.channels:
            by_level[channel.klass] = by_level.get(channel.klass, 0) + 1
        assert by_level == {"global": 2, "intermediate": 8, "local": 30}

    def test_ring_member_order(self):
        """Parent IRI occupies position 0, then children in index order."""
        network = build("2:3")
        members = network._ring_members(())
        assert members[0] is network.iris[(0,)].upper_port
        assert members[1] is network.iris[(1,)].upper_port
        local_members = network._ring_members((0,))
        assert local_members[0] is network.iris[(0,)].lower_port
        assert local_members[1] is network.nics[0]
        assert local_members[2] is network.nics[1]
        assert local_members[3] is network.nics[2]

    def test_every_port_wired(self):
        network = build("3:3:4")
        ports = list(network.nics)
        for iri in network.iris.values():
            ports.extend([iri.lower_port, iri.upper_port])
        for port in ports:
            assert port.downstream is not None
            assert port.out_channel is not None


class TestBufferSizing:
    @pytest.mark.parametrize(
        "cache_line,expected", [(16, 2), (32, 3), (64, 5), (128, 9)]
    )
    def test_all_buffers_hold_one_cl_packet(self, cache_line, expected):
        network = build("2:3", cache_line=cache_line)
        for nic in network.nics:
            assert nic.transit_buffer.capacity == expected
        for iri in network.iris.values():
            for buffer in iri.buffers:
                assert buffer.capacity == expected
        for pm in network.pms:
            assert pm.out_req.capacity == expected
            assert pm.out_resp.capacity == expected
            assert pm.in_queue.capacity is None


class TestDoubleSpeedWiring:
    def test_global_ring_in_fast_domain(self):
        network = build("2:3:4", speed=2)
        for prefix, iri in network.iris.items():
            if len(prefix) == 1:  # IRIs joining level-1 rings to the global ring
                assert iri.upper_port.speed == 2
                assert iri.lower_port.speed == 1
            else:
                assert iri.upper_port.speed == 1
                assert iri.lower_port.speed == 1
        for channel in network.channels:
            assert channel.speed == (2 if channel.klass == "global" else 1)

    def test_opportunities_account_for_speed(self):
        normal = build("2:3:4", speed=1)
        fast = build("2:3:4", speed=2)
        cycles = 100
        assert fast.opportunities(cycles, "global") == 2 * normal.opportunities(
            cycles, "global"
        )
        assert fast.opportunities(cycles, "local") == normal.opportunities(
            cycles, "local"
        )

    def test_single_ring_double_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            build("8", speed=2)
