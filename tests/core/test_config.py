"""Unit tests for configuration objects and packet geometry."""

import pytest

from repro import (
    CL_BUFFER,
    ConfigurationError,
    MeshSystemConfig,
    PacketType,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
    format_hierarchy,
    hierarchy_processors,
    mesh_packet_geometry,
    parse_hierarchy,
    ring_packet_geometry,
)


class TestPacketGeometry:
    @pytest.mark.parametrize(
        "cache_line,expected", [(16, 2), (32, 3), (64, 5), (128, 9)]
    )
    def test_ring_cl_packet_flits(self, cache_line, expected):
        """Paper Section 2.2: 1-flit headers on 128-bit channels."""
        assert ring_packet_geometry(cache_line).cl_packet_flits == expected

    @pytest.mark.parametrize(
        "cache_line,expected", [(16, 8), (32, 12), (64, 20), (128, 36)]
    )
    def test_mesh_cl_packet_flits(self, cache_line, expected):
        """Paper Section 2.2: 4-flit headers on 32-bit channels."""
        assert mesh_packet_geometry(cache_line).cl_packet_flits == expected

    def test_packet_type_sizes(self):
        geometry = ring_packet_geometry(64)
        assert geometry.size_of(PacketType.READ_REQUEST) == 1
        assert geometry.size_of(PacketType.WRITE_RESPONSE) == 1
        assert geometry.size_of(PacketType.READ_RESPONSE) == 5
        assert geometry.size_of(PacketType.WRITE_REQUEST) == 5

    def test_invalid_cache_line(self):
        with pytest.raises(ConfigurationError):
            ring_packet_geometry(48)


class TestParseHierarchy:
    def test_string_notation(self):
        assert parse_hierarchy("2:3:4") == (2, 3, 4)
        assert parse_hierarchy("8") == (8,)

    def test_sequence_inputs(self):
        assert parse_hierarchy((3, 3, 6)) == (3, 3, 6)
        assert parse_hierarchy([2, 12]) == (2, 12)

    def test_round_trip(self):
        assert format_hierarchy(parse_hierarchy("3:3:2:3")) == "3:3:2:3"

    def test_processors(self):
        assert hierarchy_processors((2, 3, 4)) == 24
        assert hierarchy_processors((8,)) == 8

    @pytest.mark.parametrize("bad", ["", "a:b", "2:0:4", "1:4", "-2"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            parse_hierarchy(bad)

    def test_leaf_of_one_allowed(self):
        assert parse_hierarchy("2:1") == (2, 1)


class TestRingSystemConfig:
    def test_derived_properties(self):
        config = RingSystemConfig(topology="2:3:4", cache_line_bytes=64)
        assert config.levels == 3
        assert config.processors == 24
        assert config.ring_buffer_flits == 5

    def test_validation(self):
        RingSystemConfig(topology="8").validate()
        with pytest.raises(ConfigurationError):
            RingSystemConfig(topology="8", cache_line_bytes=40).validate()
        with pytest.raises(ConfigurationError):
            RingSystemConfig(topology="8", global_ring_speed=3).validate()
        with pytest.raises(ConfigurationError):
            RingSystemConfig(topology="8", memory_latency=-1).validate()

    def test_with_topology(self):
        config = RingSystemConfig(topology="8").with_topology("2:4")
        assert config.branching == (2, 4)


class TestMeshSystemConfig:
    def test_processors(self):
        assert MeshSystemConfig(side=4).processors == 16

    def test_cl_buffer_resolution(self):
        config = MeshSystemConfig(side=3, cache_line_bytes=128, buffer_flits=CL_BUFFER)
        assert config.input_buffer_flits == 36
        assert MeshSystemConfig(side=3, buffer_flits=4).input_buffer_flits == 4

    def test_for_processors(self):
        assert MeshSystemConfig.for_processors(49).side == 7
        with pytest.raises(ConfigurationError):
            MeshSystemConfig.for_processors(50)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MeshSystemConfig(side=0).validate()
        with pytest.raises(ConfigurationError):
            MeshSystemConfig(side=3, buffer_flits=0).validate()


class TestWorkloadConfig:
    def test_defaults_match_paper(self):
        workload = WorkloadConfig()
        assert workload.miss_rate == 0.04
        assert workload.read_fraction == 0.7
        assert workload.outstanding == 4
        assert workload.locality == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"locality": 0.0},
            {"locality": 1.5},
            {"miss_rate": 0.0},
            {"outstanding": 0},
            {"read_fraction": 1.2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(**kwargs).validate()


class TestSimulationParams:
    def test_total_cycles(self):
        params = SimulationParams(batch_cycles=100, batches=5)
        assert params.total_cycles == 500

    def test_needs_two_batches(self):
        with pytest.raises(ConfigurationError):
            SimulationParams(batches=1).validate()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationParams(batch_cycles=0).validate()
        with pytest.raises(ConfigurationError):
            SimulationParams(deadlock_threshold=0).validate()
