"""Unit tests for the cycle engine and its flow-control resolver.

Built around toy ``Pipe`` components so resolver behaviour (greatest
fixed point, two-phase commit, clock domains, watchdog) is tested in
isolation from the real networks.
"""

import pytest

from repro.core.buffers import FlitBuffer
from repro.core.channel import Channel
from repro.core.engine import Component, Engine
from repro.core.errors import DeadlockError, SimulationError
from repro.core.packet import Packet, PacketType


def fresh_flits(n):
    return list(Packet(PacketType.READ_RESPONSE, 0, 1, n, 0, 0).flits)


class Pipe(Component):
    """Proposes moving the head flit of ``source`` into ``dest``."""

    def __init__(self, source, dest, channel=None, speed=1):
        self.source = source
        self.dest = dest
        self.channel = channel
        self.speed = speed
        self.commits = 0
        self.propose_calls = 0

    def propose(self, engine):
        self.propose_calls += 1
        flit = self.source.peek()
        if flit is not None:
            engine.propose(flit, self.source, self.dest, self.channel, self)

    def on_transfer_commit(self, transfer, engine):
        self.commits += 1


class Counter(Component):
    def __init__(self):
        self.updates = 0

    def update(self, engine):
        self.updates += 1


def buffers(*capacities):
    return [FlitBuffer(f"b{i}", capacity=c) for i, c in enumerate(capacities)]


class TestPipelineAdvance:
    def test_chain_advances_through_draining_buffer(self):
        """A full buffer that drains this cycle accepts a flit this cycle."""
        a, b, c = buffers(1, 1, 1)
        f1, f2 = fresh_flits(2)
        a.push(f1)
        b.push(f2)
        engine = Engine()
        engine.add_components([Pipe(a, b), Pipe(b, c)])
        engine.step()
        assert a.is_empty
        assert b.peek() is f1
        assert c.peek() is f2

    def test_blocked_by_full_nondraining_buffer(self):
        a, b = buffers(1, 1)
        f1, f2 = fresh_flits(2)
        a.push(f1)
        b.push(f2)  # b never drains: no pipe out of b
        engine = Engine()
        engine.add_component(Pipe(a, b))
        engine.step()
        assert a.peek() is f1  # revoked
        assert b.occupancy == 1

    def test_cascading_revocation(self):
        a, b, c = buffers(1, 1, 1)
        f1, f2, f3 = fresh_flits(3)
        a.push(f1)
        b.push(f2)
        c.push(f3)  # c full, never drains
        engine = Engine()
        engine.add_components([Pipe(a, b), Pipe(b, c)])
        engine.step()
        assert a.peek() is f1 and b.peek() is f2 and c.peek() is f3

    def test_unbounded_sink_always_accepts(self):
        a, = buffers(1)
        sink = FlitBuffer("sink", capacity=None)
        (f1,) = fresh_flits(1)
        a.push(f1)
        engine = Engine()
        engine.add_component(Pipe(a, sink))
        engine.step()
        assert sink.peek() is f1


class TestRingRotation:
    def test_full_ring_rotates(self):
        """The greatest fixed point lets a completely full cycle rotate.

        Three single-slot buffers in a loop, all full: a conservative
        resolver would deadlock; hardware (and this engine) shifts all
        three flits simultaneously.
        """
        ring = buffers(1, 1, 1)
        flits = fresh_flits(3)
        for buf, flit in zip(ring, flits):
            buf.push(flit)
        engine = Engine()
        for i in range(3):
            engine.add_component(Pipe(ring[i], ring[(i + 1) % 3]))
        engine.step()
        for i in range(3):
            assert ring[(i + 1) % 3].peek() is flits[i]
        engine.step()
        for i in range(3):
            assert ring[(i + 2) % 3].peek() is flits[i]

    def test_partial_ring_rotates(self):
        ring = buffers(1, 1, 1)
        f1, f2 = fresh_flits(2)
        ring[0].push(f1)
        ring[1].push(f2)
        engine = Engine()
        for i in range(3):
            engine.add_component(Pipe(ring[i], ring[(i + 1) % 3]))
        engine.step()
        assert ring[1].peek() is f1
        assert ring[2].peek() is f2
        assert ring[0].is_empty


class TestConservativeFlowControl:
    """The occupancy-at-cycle-start ablation (flow_control="conservative")."""

    def test_full_ring_cannot_rotate(self):
        ring = buffers(1, 1, 1)
        for buf, flit in zip(ring, fresh_flits(3)):
            buf.push(flit)
        engine = Engine(flow_control="conservative")
        for i in range(3):
            engine.add_component(Pipe(ring[i], ring[(i + 1) % 3]))
        heads = [buf.peek() for buf in ring]
        engine.step()
        assert [buf.peek() for buf in ring] == heads  # wedged

    def test_draining_buffer_not_entered_same_cycle(self):
        a, b, c = buffers(1, 1, 1)
        f1, f2 = fresh_flits(2)
        a.push(f1)
        b.push(f2)
        engine = Engine(flow_control="conservative")
        engine.add_components([Pipe(a, b), Pipe(b, c)])
        engine.step()
        # b drained to c, but a could not enter b in the same cycle.
        assert a.peek() is f1
        assert b.is_empty
        assert c.peek() is f2
        engine.step()
        assert b.peek() is f1  # catches up one cycle later

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            Engine(flow_control="psychic")


@pytest.mark.parametrize("scheduler", ("compiled", "active", "naive"))
class TestProposalValidation:
    """The structural proposal checks hold under every scheduler.

    The compiled scheduler routes generic components through a
    compatibility shim that re-implements these checks inline over its
    index rows; parametrizing keeps the shim in lockstep with the
    object path.
    """

    def test_non_head_flit_rejected(self, scheduler):
        a, b = buffers(2, 2)
        f1, f2 = fresh_flits(2)
        a.push(f1)
        a.push(f2)

        class BadPipe(Pipe):
            def propose(self, engine):
                engine.propose(f2, a, b, None, self)  # not the head

        engine = Engine(scheduler=scheduler)
        engine.add_component(BadPipe(a, b))
        with pytest.raises(SimulationError):
            engine.step()

    def test_two_writers_to_bounded_buffer_rejected(self, scheduler):
        a, b, c = buffers(1, 1, 2)
        f1, f2 = fresh_flits(2)
        a.push(f1)
        b.push(f2)
        engine = Engine(scheduler=scheduler)
        engine.add_components([Pipe(a, c), Pipe(b, c)])
        with pytest.raises(SimulationError):
            engine.step()

    def test_two_readers_of_buffer_rejected(self, scheduler):
        a, b, c = buffers(1, 2, 2)
        (f1,) = fresh_flits(1)
        a.push(f1)
        engine = Engine(scheduler=scheduler)
        engine.add_components([Pipe(a, b), Pipe(a, c)])
        with pytest.raises(SimulationError):
            engine.step()

    def test_add_component_after_start_rejected(self, scheduler):
        engine = Engine(scheduler=scheduler)
        engine.add_component(Counter())
        engine.step()
        with pytest.raises(SimulationError):
            engine.add_component(Counter())


class TestCompiledShimValidation:
    def test_foreign_owner_rejected(self):
        """The compiled shim indexes commit handlers by the owner's
        registration index; a proposal owned by a component this engine
        never registered must raise, not index some other component's
        handler (the object path simply never calls back into a foreign
        owner, so only the compiled scheduler needs this check)."""
        a, b = buffers(1, 1)
        (f1,) = fresh_flits(1)
        a.push(f1)
        stranger = Pipe(a, b)  # never added to any engine

        class Delegator(Component):
            def propose(self, engine):
                flit = a.peek()
                if flit is not None:
                    engine.propose(flit, a, b, None, stranger)

        engine = Engine(scheduler="compiled")
        engine.add_component(Delegator())
        with pytest.raises(SimulationError):
            engine.step()


class TestCompiledObjectReuse:
    """Buffers and channels carry dense ids stamped by whichever compiled
    engine saw them last; a fresh engine must detect the stale ids (the
    identity check in the propose shim) and re-register rather than
    trust them."""

    def test_buffers_reused_across_engines(self):
        a, b, c = buffers(1, 1, 1)
        (f1,) = fresh_flits(1)
        a.push(f1)
        engine1 = Engine()
        engine1.add_components([Pipe(a, b), Pipe(b, c)])
        engine1.step()  # stamps dense ids owned by engine1
        assert b.peek() is f1
        # New engine, same buffers, different wiring: every stale id
        # must fail the identity check and be reassigned.
        engine2 = Engine()
        engine2.add_components([Pipe(b, c), Pipe(c, a)])
        engine2.step()
        assert c.peek() is f1
        engine2.step()
        assert a.peek() is f1

    def test_channel_reused_across_engines(self):
        a, b = buffers(1, 1)
        (f1,) = fresh_flits(1)
        a.push(f1)
        channel = Channel("ch", "test")
        engine1 = Engine()
        engine1.add_component(Pipe(a, b, channel=channel))
        engine1.step()
        assert channel.flits_carried == 1
        engine2 = Engine()
        engine2.add_component(Pipe(b, a, channel=channel))
        engine2.step()
        assert a.peek() is f1
        assert channel.flits_carried == 2


class TestWatchdog:
    def test_deadlock_detected(self):
        a, b = buffers(1, 1)
        f1, f2 = fresh_flits(2)
        a.push(f1)
        b.push(f2)
        engine = Engine(deadlock_threshold=5)
        engine.add_component(Pipe(a, b))
        with pytest.raises(DeadlockError) as excinfo:
            engine.run(100)
        assert excinfo.value.stalled_cycles == 5

    def test_progress_resets_watchdog(self):
        a = FlitBuffer("a", capacity=1)
        sink = FlitBuffer("sink", capacity=None)
        engine = Engine(deadlock_threshold=3)

        class Feeder(Component):
            def __init__(self):
                self.supply = iter(fresh_flits(50))

            def update(self, engine):
                if a.is_empty:
                    a.push(next(self.supply))

        engine.add_components([Pipe(a, sink), Feeder()])
        engine.run(40)  # every cycle commits; watchdog never fires
        assert sink.occupancy > 30

    def test_idle_engine_never_deadlocks(self):
        engine = Engine(deadlock_threshold=2)
        engine.add_component(Counter())
        engine.run(50)  # no proposals at all -> no deadlock

    @pytest.mark.parametrize("scheduler", ("compiled", "active", "naive"))
    def test_threshold_counts_base_cycles_not_subcycles(self, scheduler):
        """A double-speed wedge stalls once per *base* cycle.

        A speed-2 component proposes (and fails to commit) in both
        subcycles of every base cycle; a watchdog that counted
        per-subcycle would fire after 5 base cycles.  The threshold is
        documented as base (PM) clock cycles, so the error must arrive
        at base cycle 10 with exactly 10 stalled cycles — under every
        scheduler.
        """
        a, b = buffers(1, 1)
        f1, f2 = fresh_flits(2)
        a.push(f1)
        b.push(f2)
        engine = Engine(deadlock_threshold=10, scheduler=scheduler)
        engine.add_component(Pipe(a, b, speed=2))
        with pytest.raises(DeadlockError) as excinfo:
            engine.run(100)
        assert excinfo.value.stalled_cycles == 10
        assert excinfo.value.cycle == 10


class TestClockDomains:
    def test_fast_component_proposes_twice_per_cycle(self):
        a = FlitBuffer("a", capacity=None)
        sink = FlitBuffer("sink", capacity=None)
        for flit in fresh_flits(10):
            a.push(flit)
        fast = Pipe(a, sink, speed=2)
        slow_src = FlitBuffer("s", capacity=None)
        for flit in fresh_flits(10):
            slow_src.push(flit)
        slow = Pipe(slow_src, FlitBuffer("sink2", capacity=None), speed=1)
        engine = Engine()
        engine.add_components([fast, slow])
        engine.run(3)
        assert fast.propose_calls == 6
        assert slow.propose_calls == 3
        assert sink.occupancy == 6

    def test_single_domain_has_one_subcycle(self):
        a = FlitBuffer("a", capacity=None)
        for flit in fresh_flits(5):
            a.push(flit)
        pipe = Pipe(a, FlitBuffer("sink", capacity=None), speed=1)
        engine = Engine()
        engine.add_component(pipe)
        engine.run(2)
        assert pipe.propose_calls == 2

    def test_unsupported_speed_rejected(self):
        pipe = Pipe(FlitBuffer("a", 1), FlitBuffer("b", 1))
        pipe.speed = 3
        engine = Engine()
        engine.add_component(pipe)
        with pytest.raises(SimulationError):
            engine.step()


class TestUpdatePhase:
    def test_update_called_once_per_cycle(self):
        counter = Counter()
        engine = Engine()
        engine.add_component(counter)
        engine.run(7)
        assert counter.updates == 7
        assert engine.cycle == 7

    def test_channel_counted_on_commit_only(self):
        a, b = buffers(1, 1)
        (f1,) = fresh_flits(1)
        a.push(f1)
        channel = Channel("ch", "test")
        blocked = FlitBuffer("blocked", capacity=1)
        blocked.push(fresh_flits(1)[0])
        engine = Engine()
        engine.add_components([Pipe(a, b, channel=channel), Pipe(b, blocked)])
        engine.step()  # a->b commits (b drains? no: b empty) ; b empty so only a->b
        assert channel.flits_carried == 1
