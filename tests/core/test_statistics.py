"""Unit and property tests for batch-means output analysis."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.statistics import BatchMeans, LatencyStats, RateMeter, _T_TABLE, _t_critical


class TestBatchMeans:
    def test_first_batch_discarded(self):
        """The paper discards the first batch for initialization bias."""
        bm = BatchMeans()
        bm.observe(1000.0)  # warm-up junk
        bm.close_batch()
        for value in (10.0, 20.0):
            bm.observe(value)
        bm.close_batch()
        assert bm.retained_means == (15.0,)

    def test_summary_mean(self):
        bm = BatchMeans()
        for batch in ([99.0], [10.0, 20.0], [30.0], [40.0]):
            for value in batch:
                bm.observe(value)
            bm.close_batch()
        summary = bm.summary()
        assert summary.mean == (15.0 + 30.0 + 40.0) / 3
        assert summary.half_width > 0
        lo, hi = summary.confidence_interval
        assert lo < summary.mean < hi

    def test_empty_batches_skipped(self):
        bm = BatchMeans()
        bm.observe(5.0)
        bm.close_batch()
        bm.close_batch()  # empty batch
        bm.observe(7.0)
        bm.close_batch()
        assert bm.retained_means == (7.0,)

    def test_no_data_gives_nan(self):
        summary = BatchMeans().summary()
        assert math.isnan(summary.mean)

    def test_single_retained_batch_has_infinite_half_width(self):
        bm = BatchMeans()
        bm.observe(1.0)
        bm.close_batch()
        bm.observe(2.0)
        bm.close_batch()
        assert bm.summary().half_width == math.inf

    def test_single_retained_batch_summary(self):
        """One retained batch: the mean is exact, the spread unknown."""
        bm = BatchMeans()
        bm.observe(3.0)
        bm.close_batch()  # warm-up
        bm.observe(8.0)
        bm.close_batch()
        summary = bm.summary()
        assert summary.mean == 8.0
        assert summary.half_width == math.inf
        assert summary.relative_half_width == math.inf

    def test_observe_many(self):
        bm = BatchMeans()
        bm.close_batch()  # empty: holds no warm-up data, discards nothing
        bm.observe_many(total=30.0, count=3)
        bm.close_batch()  # first non-empty batch is the warm-up
        bm.observe_many(total=40.0, count=2)
        bm.close_batch()
        assert bm.retained_means == (20.0,)
        assert bm.total_observations == 5

    def test_observe_many_zero_count_is_a_noop(self):
        """count == 0 must not fold a stray total into the batch sum."""
        bm = BatchMeans()
        bm.observe(1.0)
        bm.close_batch()  # warm-up
        bm.observe_many(total=999.0, count=0)
        bm.observe(5.0)
        bm.close_batch()
        assert bm.retained_means == (5.0,)
        assert bm.total_observations == 2

    def test_empty_first_batch_does_not_consume_the_discard(self):
        """Warm-up leakage: an empty leading batch must not count as the
        discarded warm-up batch — the first batch with real data is the
        one carrying initialization bias."""
        bm = BatchMeans()
        bm.close_batch()  # batch 0: empty (NaN)
        bm.observe(1000.0)  # warm-up junk lands in batch 1
        bm.close_batch()
        bm.observe(10.0)
        bm.close_batch()
        assert bm.retained_means == (10.0,)


class TestSummary:
    def test_relative_half_width_zero_mean_is_unbounded(self):
        """Idle-link guard: a zero mean gives no scale to normalize
        against, so the relative width is inf, not a division artifact."""
        from repro.core.statistics import Summary

        assert Summary(0.0, 0.0, ()).relative_half_width == math.inf
        assert Summary(0.0, 1.0, (0.0,)).relative_half_width == math.inf

    def test_relative_half_width_nan_mean_is_unbounded(self):
        from repro.core.statistics import Summary

        assert Summary(math.nan, math.nan, ()).relative_half_width == math.inf
        assert Summary(math.nan, 1.0, ()).relative_half_width == math.inf

    def test_relative_half_width_normal_case(self):
        from repro.core.statistics import Summary

        assert Summary(10.0, 2.0, (8.0, 12.0)).relative_half_width == 0.2


class TestTCritical:
    def test_exact_table_entries(self):
        assert _t_critical(1) == 12.706
        assert _t_critical(15) == 2.131

    def test_dof_16_to_19_have_exact_entries(self):
        """Regression: these dofs used to fall through to the *next
        higher* key (20 → 2.086), understating every CI at 17-20
        retained batches."""
        assert _t_critical(16) == 2.120
        assert _t_critical(17) == 2.110
        assert _t_critical(18) == 2.101
        assert _t_critical(19) == 2.093

    def test_between_keys_uses_nearest_lower_key(self):
        """A dof between table keys must round *down* (conservative:
        smaller dof → larger critical value)."""
        assert _t_critical(35) == _T_TABLE[30]
        assert _t_critical(119) == _T_TABLE[60]

    def test_beyond_table_stays_conservative(self):
        """Regression: dof > 120 used to return the normal-limit 1.96,
        below the finite-sample critical value."""
        for dof in (121, 500, 10**6):
            assert _t_critical(dof) == _T_TABLE[120]
            assert _t_critical(dof) >= 1.96

    def test_monotone_nonincreasing(self):
        values = [_t_critical(dof) for dof in range(1, 200)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_nonpositive_dof_is_unbounded(self):
        assert _t_critical(0) == math.inf


class TestRateMeter:
    def test_rates_are_deltas(self):
        meter = RateMeter()
        meter.close_batch(numerator=10, denominator=100)   # discarded
        meter.close_batch(numerator=40, denominator=200)   # (30/100)
        meter.close_batch(numerator=100, denominator=300)  # (60/100)
        assert meter.retained_rates == (0.3, 0.6)
        assert math.isclose(meter.summary().mean, 0.45)

    def test_zero_denominator_skipped(self):
        meter = RateMeter()
        meter.close_batch(0, 0)
        meter.close_batch(5, 10)   # first measurable batch: the warm-up
        meter.close_batch(5, 10)   # no denominator progress
        meter.close_batch(11, 20)  # (6/10)
        assert meter.retained_rates == (0.6,)

    def test_leading_nan_does_not_consume_the_discard(self):
        """Warm-up leakage regression: a leading zero-denominator batch
        (NaN rate) must not absorb the warm-up discard — the first batch
        with a measurable rate is the one carrying initialization bias,
        mirroring BatchMeans.retained_means."""
        meter = RateMeter()
        meter.close_batch(0, 0)     # NaN: no time progressed
        meter.close_batch(90, 100)  # warm-up rate 0.9, must be dropped
        meter.close_batch(110, 200)  # steady state (20/100)
        assert meter.retained_rates == (0.2,)

    def test_all_nan_batches_give_nan_summary(self):
        meter = RateMeter()
        for _ in range(3):
            meter.close_batch(0, 0)
        assert meter.retained_rates == ()
        assert math.isnan(meter.summary().mean)

    def test_first_close_with_negative_denominator_delta(self):
        """A first close_batch whose denominator delta is <= 0 yields a
        NaN batch and must leave the warm-up discard for the next
        measurable batch."""
        meter = RateMeter()
        assert meter.close_batch(5, -1) is None  # den delta -1 <= 0
        meter.close_batch(10, 9)   # warm-up (den delta 10)
        meter.close_batch(15, 19)  # (5/10)
        assert meter.retained_rates == (0.5,)

    def test_backwards_numerator_is_rejected(self):
        """Regression: a numerator snapshot that goes backwards (e.g. a
        counter reset) used to record a negative "rate"; it must yield a
        NaN batch instead, filtered out of the retained rates."""
        meter = RateMeter()
        meter.close_batch(10, 100)  # warm-up (10/100), dropped
        meter.close_batch(20, 200)  # (10/100)
        assert meter.close_batch(5, 300) is None  # num delta -15 < 0
        meter.close_batch(35, 400)  # (30/100)
        assert all(rate >= 0 for rate in meter.retained_rates)
        assert meter.retained_rates == (0.1, 0.3)

    def test_backwards_numerator_does_not_consume_the_discard(self):
        """A leading backwards-numerator batch is NaN and must not
        absorb the warm-up discard (same policy as zero denominators)."""
        meter = RateMeter()
        meter._last_numerator = 50.0  # counter reset before first close
        assert meter.close_batch(10, 100) is None
        meter.close_batch(100, 200)  # warm-up (90/100), dropped
        meter.close_batch(120, 300)  # (20/100)
        assert meter.retained_rates == (0.2,)

    def test_nan_batch_is_recorded_as_nan_not_dropped(self):
        """The NaN path records a NaN *batch*, not nothing: the batch
        list keeps its slot so batch indices stay aligned with the
        simulation's batch boundaries."""
        meter = RateMeter()
        meter.close_batch(10, 100)
        assert meter.close_batch(10, 100) is None  # no time progressed
        meter.close_batch(30, 200)
        assert len(meter._batch_rates) == 3
        assert math.isnan(meter._batch_rates[1])

    def test_nan_batch_still_advances_the_snapshots(self):
        """A NaN close must still latch the counter snapshots: the next
        batch's delta is measured from the rejected snapshot, not from
        the last good one — otherwise the lost interval's flits would be
        double-counted into the following batch's rate."""
        meter = RateMeter()
        meter.close_batch(10, 100)   # warm-up, dropped
        meter.close_batch(20, 200)   # (10/100)
        assert meter.close_batch(5, 300) is None  # reset: NaN, but latched
        # Delta measured from (5, 300), not (20, 200): (25-5)/(400-300).
        meter.close_batch(25, 400)
        assert meter.retained_rates == (0.1, 0.2)


class TestLatencyStats:
    def test_extremes(self):
        stats = LatencyStats()
        stats.record(1000.0)  # warm-up junk
        stats.close_batch()
        for value in (5.0, 1.0, 9.0):
            stats.record(value)
        stats.close_batch()
        assert stats.minimum == 1.0
        assert stats.maximum == 9.0

    def test_trailing_unclosed_batch_excluded_from_extremes(self):
        """Regression: observations in a trailing batch that never
        closes enter no retained batch mean, so they must not pin the
        extremes either (the docstring's "span exactly the retained
        observations")."""
        stats = LatencyStats()
        stats.record(50.0)
        stats.close_batch()  # warm-up, dropped
        for value in (10.0, 20.0):
            stats.record(value)
        stats.close_batch()
        stats.record(999.0)  # run ends mid-batch: never retained
        stats.record(0.5)
        assert stats.minimum == 10.0
        assert stats.maximum == 20.0
        assert stats.batch.retained_means == (15.0,)

    def test_unclosed_warmup_observations_never_reach_extremes(self):
        """Before any batch closes, the extremes are still empty."""
        import math

        stats = LatencyStats()
        for value in (5.0, 1.0, 9.0):
            stats.record(value)
        assert stats.minimum == math.inf
        assert stats.maximum == -math.inf

    def test_warmup_batch_does_not_pin_extremes(self):
        """The discarded warm-up batch's observations must leave the
        min/max along with the batch mean."""
        stats = LatencyStats()
        stats.record(1000.0)  # warm-up junk
        stats.close_batch()
        for value in (10.0, 30.0):
            stats.record(value)
        stats.close_batch()
        assert stats.batch.retained_means == (20.0,)
        assert stats.minimum == 10.0
        assert stats.maximum == 30.0

    def test_empty_leading_batch_does_not_reset_extremes(self):
        """An empty batch holds no warm-up data: closing it must not
        consume the extremes reset (same policy as retained_means)."""
        stats = LatencyStats()
        stats.close_batch()   # empty
        stats.record(500.0)   # warm-up junk lands here
        stats.close_batch()
        stats.record(7.0)
        stats.close_batch()
        assert stats.batch.retained_means == (7.0,)
        assert stats.minimum == 7.0
        assert stats.maximum == 7.0


class TestLatencyStatsArrayFed:
    """The columnar engine feeds pre-aggregated blocks via observe_batch
    instead of per-transaction record calls; the batch-retention policy
    (warm-up discard, extremes, ``last``) must be representation-blind.
    """

    def test_observe_batch_matches_record_stream(self):
        """Array-fed blocks and per-observation record() produce the
        same summary, extremes and last for the same observations."""
        scalar = LatencyStats()
        array = LatencyStats()
        blocks = [(100.0, 200.0), (10.0, 30.0, 20.0), (5.0, 45.0)]
        for block in blocks:
            for value in block:
                scalar.record(value)
            array.observe_batch(
                total=sum(block),
                count=len(block),
                minimum=min(block),
                maximum=max(block),
                last=block[-1],
            )
            scalar.close_batch()
            array.close_batch()
        assert array.batch.retained_means == scalar.batch.retained_means
        assert array.minimum == scalar.minimum == 5.0
        assert array.maximum == scalar.maximum == 45.0
        assert array.last == scalar.last == 45.0

    def test_empty_block_is_a_noop(self):
        """count == 0 carries no observations: ``last`` and the staged
        extremes must not move (NaN min/max reductions over an empty
        array would otherwise poison the staged extremes)."""
        stats = LatencyStats()
        stats.observe_batch(total=0.0, count=0, minimum=math.inf,
                            maximum=-math.inf, last=math.nan)
        assert math.isnan(stats.last)
        assert stats._open_min == math.inf
        assert stats._open_max == -math.inf
        stats.record(3.0)
        stats.observe_batch(total=0.0, count=0, minimum=math.nan,
                            maximum=math.nan, last=math.nan)
        assert stats.last == 3.0  # empty block did not clobber it

    def test_last_survives_warmup_discard(self):
        """``last`` is a diagnostic of the most recent observation,
        regardless of retention: an array-fed warm-up batch updates it
        even though its extremes and mean are discarded."""
        stats = LatencyStats()
        stats.observe_batch(total=900.0, count=2, minimum=400.0,
                            maximum=500.0, last=500.0)
        stats.close_batch()  # warm-up: mean and extremes discarded
        assert stats.last == 500.0
        assert stats.minimum == math.inf
        assert stats.maximum == -math.inf
        assert stats.batch.retained_means == ()

    def test_warmup_block_extremes_discarded_retained_block_folds(self):
        """The warm-up discard applies to array-fed batches exactly as
        to per-observation ones: only the retained block's extremes
        reach minimum/maximum, and ``last`` tracks the newest block."""
        stats = LatencyStats()
        stats.observe_batch(total=1000.0, count=1, minimum=1000.0,
                            maximum=1000.0, last=1000.0)
        stats.close_batch()  # warm-up
        stats.observe_batch(total=60.0, count=3, minimum=10.0,
                            maximum=30.0, last=25.0)
        stats.close_batch()
        assert stats.batch.retained_means == (20.0,)
        assert stats.minimum == 10.0
        assert stats.maximum == 30.0
        assert stats.last == 25.0

    def test_trailing_unclosed_block_excluded_from_extremes(self):
        """A block folded into a batch that never closes enters no
        retained mean, so its extremes stay staged — but ``last`` still
        reflects it (the diagnostic ignores retention)."""
        stats = LatencyStats()
        stats.observe_batch(total=50.0, count=1, minimum=50.0,
                            maximum=50.0, last=50.0)
        stats.close_batch()  # warm-up
        stats.observe_batch(total=40.0, count=2, minimum=15.0,
                            maximum=25.0, last=15.0)
        stats.close_batch()
        stats.observe_batch(total=999.5, count=2, minimum=0.5,
                            maximum=999.0, last=0.5)  # run ends mid-batch
        assert stats.minimum == 15.0
        assert stats.maximum == 25.0
        assert stats.last == 0.5


@given(
    batches=st.lists(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=10),
        min_size=2,
        max_size=8,
    )
)
def test_batch_means_of_constant_stream(batches):
    """If every observation equals c, the summary mean is exactly c."""
    constant = 42.5
    bm = BatchMeans()
    for batch in batches:
        for _ in batch:
            bm.observe(constant)
        bm.close_batch()
    summary = bm.summary()
    assert math.isclose(summary.mean, constant)
    assert summary.half_width == 0 or summary.half_width == math.inf


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=40
    )
)
def test_summary_mean_within_range(values):
    """The batch-means estimate stays within the observed value range."""
    bm = BatchMeans()
    bm.observe(0.0)
    bm.close_batch()
    for value in values:
        bm.observe(value)
        bm.close_batch()
    summary = bm.summary()
    assert min(values) - 1e-9 <= summary.mean <= max(values) + 1e-9
