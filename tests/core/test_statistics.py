"""Unit and property tests for batch-means output analysis."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.statistics import BatchMeans, LatencyStats, RateMeter


class TestBatchMeans:
    def test_first_batch_discarded(self):
        """The paper discards the first batch for initialization bias."""
        bm = BatchMeans()
        bm.observe(1000.0)  # warm-up junk
        bm.close_batch()
        for value in (10.0, 20.0):
            bm.observe(value)
        bm.close_batch()
        assert bm.retained_means == (15.0,)

    def test_summary_mean(self):
        bm = BatchMeans()
        for batch in ([99.0], [10.0, 20.0], [30.0], [40.0]):
            for value in batch:
                bm.observe(value)
            bm.close_batch()
        summary = bm.summary()
        assert summary.mean == (15.0 + 30.0 + 40.0) / 3
        assert summary.half_width > 0
        lo, hi = summary.confidence_interval
        assert lo < summary.mean < hi

    def test_empty_batches_skipped(self):
        bm = BatchMeans()
        bm.observe(5.0)
        bm.close_batch()
        bm.close_batch()  # empty batch
        bm.observe(7.0)
        bm.close_batch()
        assert bm.retained_means == (7.0,)

    def test_no_data_gives_nan(self):
        summary = BatchMeans().summary()
        assert math.isnan(summary.mean)

    def test_single_retained_batch_has_infinite_half_width(self):
        bm = BatchMeans()
        bm.observe(1.0)
        bm.close_batch()
        bm.observe(2.0)
        bm.close_batch()
        assert bm.summary().half_width == math.inf

    def test_observe_many(self):
        bm = BatchMeans()
        bm.close_batch()
        bm.observe_many(total=30.0, count=3)
        bm.close_batch()
        assert bm.retained_means == (10.0,)
        assert bm.total_observations == 3


class TestRateMeter:
    def test_rates_are_deltas(self):
        meter = RateMeter()
        meter.close_batch(numerator=10, denominator=100)   # discarded
        meter.close_batch(numerator=40, denominator=200)   # (30/100)
        meter.close_batch(numerator=100, denominator=300)  # (60/100)
        assert meter.retained_rates == (0.3, 0.6)
        assert math.isclose(meter.summary().mean, 0.45)

    def test_zero_denominator_skipped(self):
        meter = RateMeter()
        meter.close_batch(0, 0)
        meter.close_batch(5, 10)
        meter.close_batch(5, 10)  # no denominator progress
        assert meter.retained_rates == (0.5,)


class TestLatencyStats:
    def test_extremes(self):
        stats = LatencyStats()
        for value in (5.0, 1.0, 9.0):
            stats.record(value)
        assert stats.minimum == 1.0
        assert stats.maximum == 9.0


@given(
    batches=st.lists(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=10),
        min_size=2,
        max_size=8,
    )
)
def test_batch_means_of_constant_stream(batches):
    """If every observation equals c, the summary mean is exactly c."""
    constant = 42.5
    bm = BatchMeans()
    for batch in batches:
        for _ in batch:
            bm.observe(constant)
        bm.close_batch()
    summary = bm.summary()
    assert math.isclose(summary.mean, constant)
    assert summary.half_width == 0 or summary.half_width == math.inf


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=40
    )
)
def test_summary_mean_within_range(values):
    """The batch-means estimate stays within the observed value range."""
    bm = BatchMeans()
    bm.observe(0.0)
    bm.close_batch()
    for value in values:
        bm.observe(value)
        bm.close_batch()
    summary = bm.summary()
    assert min(values) - 1e-9 <= summary.mean <= max(values) + 1e-9
