"""Unit tests for the fixed-latency pipelined memory model."""

import pytest

from repro.core.memory import MemoryModel
from repro.core.packet import Packet, PacketType


def request(n=0):
    return Packet(PacketType.READ_REQUEST, source=n, destination=9, size_flits=1,
                  transaction_id=n, issue_cycle=0)


class TestMemoryModel:
    def test_fixed_latency(self):
        memory = MemoryModel(latency=5)
        memory.accept(request(), cycle=10)
        assert memory.ready_requests(14) == []
        ready = memory.ready_requests(15)
        assert len(ready) == 1

    def test_pipelined_overlap(self):
        """Requests overlap fully: no port contention (DESIGN.md §4)."""
        memory = MemoryModel(latency=5)
        first, second = request(1), request(2)
        memory.accept(first, cycle=10)
        memory.accept(second, cycle=11)
        assert memory.ready_requests(15) == [first]
        assert memory.ready_requests(16) == [second]

    def test_service_order_preserved_on_ties(self):
        memory = MemoryModel(latency=3)
        reqs = [request(i) for i in range(4)]
        for req in reqs:
            memory.accept(req, cycle=0)
        assert memory.ready_requests(3) == reqs

    def test_zero_latency(self):
        memory = MemoryModel(latency=0)
        memory.accept(request(), cycle=7)
        assert len(memory.ready_requests(7)) == 1

    def test_in_service_count(self):
        memory = MemoryModel(latency=10)
        memory.accept(request(1), cycle=0)
        memory.accept(request(2), cycle=0)
        assert memory.in_service == 2
        memory.ready_requests(10)
        assert memory.in_service == 0

    def test_accesses_served_counter(self):
        memory = MemoryModel(latency=1)
        memory.accept(request(), cycle=0)
        memory.ready_requests(1)
        assert memory.accesses_served == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel(latency=-1)
