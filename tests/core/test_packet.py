"""Unit tests for packets and flits."""

import pytest

from repro.core.packet import Packet, PacketType


class TestPacketType:
    def test_requests(self):
        assert PacketType.READ_REQUEST.is_request
        assert PacketType.WRITE_REQUEST.is_request
        assert not PacketType.READ_RESPONSE.is_request
        assert not PacketType.WRITE_RESPONSE.is_request

    def test_responses(self):
        assert PacketType.READ_RESPONSE.is_response
        assert PacketType.WRITE_RESPONSE.is_response
        assert not PacketType.READ_REQUEST.is_response

    def test_carries_data(self):
        """Read responses and write requests ship the cache line."""
        assert PacketType.READ_RESPONSE.carries_data
        assert PacketType.WRITE_REQUEST.carries_data
        assert not PacketType.READ_REQUEST.carries_data
        assert not PacketType.WRITE_RESPONSE.carries_data

    def test_response_type(self):
        assert PacketType.READ_REQUEST.response_type is PacketType.READ_RESPONSE
        assert PacketType.WRITE_REQUEST.response_type is PacketType.WRITE_RESPONSE

    @pytest.mark.parametrize(
        "ptype", [PacketType.READ_RESPONSE, PacketType.WRITE_RESPONSE]
    )
    def test_response_of_response_raises(self, ptype):
        with pytest.raises(ValueError):
            ptype.response_type


def make_packet(size=5, ptype=PacketType.READ_RESPONSE):
    return Packet(
        ptype=ptype,
        source=1,
        destination=2,
        size_flits=size,
        transaction_id=42,
        issue_cycle=100,
    )


class TestPacket:
    def test_flit_count(self):
        packet = make_packet(size=5)
        assert len(packet.flits) == 5
        assert packet.size_flits == 5

    def test_head_and_tail(self):
        packet = make_packet(size=3)
        assert packet.head.is_head
        assert not packet.head.is_tail
        assert packet.tail.is_tail
        assert not packet.tail.is_head
        assert packet.flits[1].index == 1
        assert not packet.flits[1].is_head
        assert not packet.flits[1].is_tail

    def test_single_flit_packet_is_head_and_tail(self):
        packet = make_packet(size=1, ptype=PacketType.READ_REQUEST)
        assert packet.head is packet.tail
        assert packet.head.is_head and packet.head.is_tail

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            make_packet(size=0)

    def test_unique_ids(self):
        a, b = make_packet(), make_packet()
        assert a.packet_id != b.packet_id

    def test_flits_reference_packet(self):
        packet = make_packet(size=4)
        assert all(flit.packet is packet for flit in packet)
        assert [flit.index for flit in packet] == [0, 1, 2, 3]

    def test_metadata_carried(self):
        packet = make_packet()
        assert packet.source == 1
        assert packet.destination == 2
        assert packet.transaction_id == 42
        assert packet.issue_cycle == 100
        assert packet.inject_cycle is None
