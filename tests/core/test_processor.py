"""Unit tests for the M-MRP miss generator."""

import random

from repro.core.config import WorkloadConfig
from repro.core.packet import PacketType
from repro.core.processor import MissGenerator


def generator(miss_rate=0.04, read_fraction=0.7, seed=3, target=5):
    workload = WorkloadConfig(miss_rate=miss_rate, read_fraction=read_fraction)
    return MissGenerator(
        pm_id=0,
        workload=workload,
        select_target=lambda pm, rng: target,
        rng=random.Random(seed),
    )


class TestMissRate:
    def test_miss_rate_statistics(self):
        """Bernoulli-per-cycle misses have mean rate C when never blocked."""
        gen = generator(miss_rate=0.04)
        cycles = 60_000
        misses = sum(
            1 for cycle in range(cycles) if gen.poll(cycle, lambda: True) is not None
        )
        assert abs(misses / cycles - 0.04) < 0.004

    def test_read_fraction_statistics(self):
        gen = generator(miss_rate=0.5, read_fraction=0.7)
        outcomes = []
        for cycle in range(20_000):
            miss = gen.poll(cycle, lambda: True)
            if miss is not None:
                outcomes.append(miss.is_read)
        reads = sum(outcomes) / len(outcomes)
        assert abs(reads - 0.7) < 0.03

    def test_deterministic_given_seed(self):
        a, b = generator(seed=11), generator(seed=11)
        for cycle in range(2000):
            ma = a.poll(cycle, lambda: True)
            mb = b.poll(cycle, lambda: True)
            assert (ma is None) == (mb is None)
            if ma is not None:
                assert (ma.is_read, ma.target) == (mb.is_read, mb.target)


class TestBlocking:
    def test_blocked_miss_waits_for_slot(self):
        """A generated miss is held (not dropped) while T is exhausted."""
        gen = generator(miss_rate=1.0)
        first = gen.poll(0, lambda: True)
        assert first is not None
        held = gen.poll(1, lambda: False)
        assert held is None
        assert gen.blocked
        released = gen.poll(2, lambda: True)
        assert released is not None
        assert released.generated_cycle == 1  # the held miss, not a new one

    def test_no_draws_while_blocked(self):
        """Generation pauses while a pending miss waits (processor blocks)."""
        gen = generator(miss_rate=1.0)
        gen.poll(0, lambda: True)
        for cycle in range(1, 10):
            assert gen.poll(cycle, lambda: False) is None
        assert gen.misses_generated == 2  # the issued one and the pending one

    def test_target_comes_from_selector(self):
        gen = generator(miss_rate=1.0, target=13)
        miss = gen.poll(0, lambda: True)
        assert miss.target == 13

    def test_request_type_mapping(self):
        gen = generator(miss_rate=1.0)
        miss = gen.poll(0, lambda: True)
        expected = (
            PacketType.READ_REQUEST if miss.is_read else PacketType.WRITE_REQUEST
        )
        assert MissGenerator.request_type(miss) is expected
