"""End-to-end tests of the simulation front end."""

import math

import pytest

from repro import (
    ConfigurationError,
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
    simulate,
)


class TestRingEndToEnd:
    def test_transactions_complete(self, small_ring_config, heavy_workload, test_sim):
        result = simulate(small_ring_config, heavy_workload, test_sim)
        assert result.remote_transactions > 50
        assert result.avg_latency > 0
        assert result.cycles == test_sim.total_cycles

    def test_hierarchy_runs(self, small_hierarchy_config, heavy_workload, test_sim):
        result = simulate(small_hierarchy_config, heavy_workload, test_sim)
        assert result.remote_transactions > 50
        assert "global" in result.utilization
        assert "local" in result.utilization

    def test_latency_above_zero_load_floor(self, small_ring_config, test_sim):
        """Measured latency can never beat the zero-load minimum."""
        from repro.analysis.zero_load import single_ring_round_trip

        result = simulate(
            small_ring_config, WorkloadConfig(outstanding=4), test_sim
        )
        assert result.avg_latency >= single_ring_round_trip(small_ring_config) - 1e-9


class TestMeshEndToEnd:
    def test_transactions_complete(self, small_mesh_config, heavy_workload, test_sim):
        result = simulate(small_mesh_config, heavy_workload, test_sim)
        assert result.remote_transactions > 50
        assert result.utilization_percent("mesh") > 0

    def test_one_flit_buffers_work(self, heavy_workload, test_sim):
        config = MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=1)
        result = simulate(config, heavy_workload, test_sim)
        assert result.remote_transactions > 50

    def test_deeper_buffers_not_slower(self, test_sim):
        """cl-sized router buffers beat 1-flit buffers under load."""
        workload = WorkloadConfig(outstanding=4)
        params = SimulationParams(batch_cycles=1200, batches=4, seed=3)
        shallow = simulate(
            MeshSystemConfig(side=4, cache_line_bytes=128, buffer_flits=1),
            workload, params,
        )
        deep = simulate(
            MeshSystemConfig(side=4, cache_line_bytes=128, buffer_flits="cl"),
            workload, params,
        )
        assert deep.avg_latency < shallow.avg_latency


class TestDeterminism:
    @pytest.mark.parametrize(
        "config",
        [
            RingSystemConfig(topology="2:4", cache_line_bytes=32),
            MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=4),
        ],
        ids=["ring", "mesh"],
    )
    def test_same_seed_same_result(self, config, heavy_workload, tiny_sim):
        first = simulate(config, heavy_workload, tiny_sim)
        second = simulate(config, heavy_workload, tiny_sim)
        assert first.avg_latency == second.avg_latency
        assert first.remote_transactions == second.remote_transactions
        assert first.flits_moved == second.flits_moved

    def test_different_seed_different_stream(self, small_ring_config, heavy_workload):
        a = simulate(small_ring_config, heavy_workload,
                     SimulationParams(batch_cycles=400, batches=3, seed=1))
        b = simulate(small_ring_config, heavy_workload,
                     SimulationParams(batch_cycles=400, batches=3, seed=2))
        assert a.flits_moved != b.flits_moved


class TestResultObject:
    def test_describe_renders(self, small_ring_config, heavy_workload, tiny_sim):
        result = simulate(small_ring_config, heavy_workload, tiny_sim)
        text = result.describe()
        assert "remote latency" in text
        assert "util[" in text

    def test_unknown_level_is_nan(self, small_ring_config, heavy_workload, tiny_sim):
        result = simulate(small_ring_config, heavy_workload, tiny_sim)
        assert math.isnan(result.utilization_percent("nonexistent"))

    def test_local_latency_tracked_with_locality(self, tiny_sim):
        config = RingSystemConfig(topology="2:4", cache_line_bytes=32)
        workload = WorkloadConfig(locality=0.2, outstanding=2)
        result = simulate(config, workload, tiny_sim)
        assert result.local_transactions > 0

    def test_bad_config_type_rejected(self, heavy_workload, tiny_sim):
        with pytest.raises(ConfigurationError):
            simulate(object(), heavy_workload, tiny_sim)  # type: ignore[arg-type]


class TestSaturatedHeuristic:
    """``saturated`` must consult the latency CI width, per its docstring."""

    @staticmethod
    def _result(latency, transactions=100):
        from repro.core.simulation import SimulationResult

        return SimulationResult(
            system=RingSystemConfig(topology="8"),
            workload=WorkloadConfig(),
            params=SimulationParams(),
            cycles=1000,
            latency=latency,
            local_latency=latency,
            remote_transactions=transactions,
        )

    def test_tight_ci_is_not_saturated(self):
        from repro.core.statistics import Summary

        result = self._result(Summary(mean=50.0, half_width=2.0, batch_means=(49.0, 51.0)))
        assert not result.saturated

    def test_wide_ci_is_saturated(self):
        """CI wider than SATURATION_RELATIVE_HALF_WIDTH of the mean."""
        from repro.core.statistics import Summary

        result = self._result(Summary(mean=50.0, half_width=40.0, batch_means=(20.0, 80.0)))
        assert result.saturated

    def test_single_batch_unbounded_ci_is_saturated(self):
        from repro.core.statistics import Summary

        result = self._result(Summary(mean=50.0, half_width=math.inf, batch_means=(50.0,)))
        assert result.saturated

    def test_no_transactions_is_saturated(self):
        from repro.core.statistics import Summary

        result = self._result(
            Summary(mean=math.nan, half_width=math.nan, batch_means=()), transactions=0
        )
        assert result.saturated


class TestDoubleSpeedGlobalRing:
    def test_double_speed_helps_saturated_hierarchy(self):
        """4 second-level rings saturate a normal global ring; 2x relieves it."""
        workload = WorkloadConfig(outstanding=4)
        params = SimulationParams(batch_cycles=1200, batches=4, seed=3)
        normal = simulate(
            RingSystemConfig(topology="4:3:4", cache_line_bytes=64), workload, params
        )
        double = simulate(
            RingSystemConfig(topology="4:3:4", cache_line_bytes=64,
                             global_ring_speed=2),
            workload, params,
        )
        assert double.avg_latency < normal.avg_latency

    def test_double_speed_single_ring_rejected(self, heavy_workload, tiny_sim):
        config = RingSystemConfig(topology="8", global_ring_speed=2)
        with pytest.raises(ConfigurationError):
            simulate(config, heavy_workload, tiny_sim)
