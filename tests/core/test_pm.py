"""Unit tests for the processing module endpoint logic."""

import math
import random

import pytest

from repro.core.config import WorkloadConfig, ring_packet_geometry
from repro.core.errors import SimulationError
from repro.core.packet import Packet, PacketType
from repro.core.pm import MetricsHub, ProcessingModule


class FakeEngine:
    """Just enough of Engine for ProcessingModule.update()."""

    def __init__(self):
        self.cycle = 0
        self.packets_in_flight = 0

    def tick(self, pm):
        pm.update(self)
        self.cycle += 1


def make_pm(pm_id=0, target=1, miss_rate=1.0, outstanding=2, memory_latency=4):
    workload = WorkloadConfig(
        locality=1.0, miss_rate=miss_rate, outstanding=outstanding, read_fraction=1.0
    )
    return ProcessingModule(
        pm_id=pm_id,
        geometry=ring_packet_geometry(32),
        workload=workload,
        memory_latency=memory_latency,
        select_target=lambda pm, rng: target,
        rng=random.Random(5),
        metrics=MetricsHub(),
    )


class TestRemoteIssue:
    def test_request_enqueued_and_outstanding(self):
        pm = make_pm()
        engine = FakeEngine()
        engine.tick(pm)
        assert pm.outstanding == 1
        assert len(pm.open_transactions) == 1
        head = pm.out_req.peek()
        assert head is not None and head.is_head
        assert head.packet.ptype is PacketType.READ_REQUEST
        assert head.packet.destination == 1
        assert engine.packets_in_flight == 1

    def test_blocks_at_outstanding_limit(self):
        pm = make_pm(outstanding=2)
        engine = FakeEngine()
        for _ in range(10):
            engine.tick(pm)
        assert pm.outstanding == 2
        # Only the two issued requests exist (out_req holds 1-flit reads).
        assert pm.metrics.remote_issued == 2

    def test_inject_cycle_stamped(self):
        pm = make_pm()
        engine = FakeEngine()
        engine.tick(pm)
        assert pm.out_req.peek().packet.inject_cycle == 0


class TestLocalAccess:
    def test_local_completes_after_memory_latency(self):
        pm = make_pm(target=0, memory_latency=4, outstanding=1)
        engine = FakeEngine()
        engine.tick(pm)  # issue at cycle 0
        pm.generation_enabled = False
        assert pm.outstanding == 1
        assert pm.metrics.local_issued == 1
        for _ in range(4):
            engine.tick(pm)  # cycles 1..4; completes at cycle 4
        assert pm.outstanding == 0
        assert pm.metrics.local_completed == 1
        assert pm.metrics.local_latency.batch.total_observations == 1
        assert pm.metrics.remote_issued == 0

    def test_local_does_not_touch_network(self):
        pm = make_pm(target=0)
        engine = FakeEngine()
        engine.tick(pm)
        assert pm.out_req.is_empty
        assert engine.packets_in_flight == 0


class TestResponseHandling:
    def test_response_completes_transaction(self):
        pm = make_pm()
        engine = FakeEngine()
        engine.tick(pm)  # issue request at cycle 0
        pm.generation_enabled = False
        request = pm.out_req.peek().packet
        response = Packet(
            PacketType.READ_RESPONSE,
            source=1,
            destination=0,
            size_flits=3,
            transaction_id=request.transaction_id,
            issue_cycle=request.issue_cycle,
        )
        for flit in response:
            pm.in_queue.push(flit)
        engine.cycle = 25
        engine.tick(pm)
        assert pm.outstanding == 0  # response freed the slot (new miss may re-issue)
        assert pm.metrics.remote_completed == 1

        # Latency extremes follow batch-means retention: tx1's latency
        # sits in the warm-up batch, so closing it discards the extreme.
        pm.metrics.close_batch()
        assert pm.metrics.remote_latency.maximum == -math.inf

        # A second transaction in a retained batch pins the extremes.
        pm.generation_enabled = True
        engine.tick(pm)  # issue tx2 at cycle 26
        pm.generation_enabled = False
        request2 = list(pm.out_req)[-1].packet
        response2 = Packet(
            PacketType.READ_RESPONSE,
            source=1,
            destination=0,
            size_flits=3,
            transaction_id=request2.transaction_id,
            issue_cycle=request2.issue_cycle,
        )
        for flit in response2:
            pm.in_queue.push(flit)
        engine.cycle = 66
        engine.tick(pm)
        assert pm.metrics.remote_completed == 2
        pm.metrics.close_batch()
        assert pm.metrics.remote_latency.maximum == 66.0 - request2.issue_cycle

    def test_unknown_response_rejected(self):
        pm = make_pm(miss_rate=0.000001)
        stray = Packet(PacketType.READ_RESPONSE, 1, 0, 3, transaction_id=999,
                       issue_cycle=0)
        for flit in stray:
            pm.in_queue.push(flit)
        with pytest.raises(SimulationError):
            FakeEngine().tick(pm)

    def test_misrouted_packet_rejected(self):
        pm = make_pm(miss_rate=0.000001)
        wrong = Packet(PacketType.READ_REQUEST, 1, 7, 1, transaction_id=0,
                       issue_cycle=0)
        pm.in_queue.push(wrong.head)
        with pytest.raises(SimulationError):
            FakeEngine().tick(pm)


class TestMemoryService:
    def test_request_produces_response(self):
        pm = make_pm(miss_rate=0.000001, memory_latency=3)
        incoming = Packet(PacketType.READ_REQUEST, source=2, destination=0,
                          size_flits=1, transaction_id=7, issue_cycle=10)
        pm.in_queue.push(incoming.head)
        engine = FakeEngine()
        engine.tick(pm)  # request absorbed at cycle 0
        for _ in range(2):
            engine.tick(pm)
        assert pm.out_resp.is_empty  # not ready until cycle 3
        engine.tick(pm)
        head = pm.out_resp.peek()
        assert head is not None
        assert head.packet.ptype is PacketType.READ_RESPONSE
        assert head.packet.destination == 2
        assert head.packet.transaction_id == 7
        assert head.packet.issue_cycle == 10  # inherited for latency measurement

    def test_write_request_gets_header_only_response(self):
        pm = make_pm(miss_rate=0.000001, memory_latency=0)
        incoming = Packet(PacketType.WRITE_REQUEST, source=2, destination=0,
                          size_flits=3, transaction_id=8, issue_cycle=0)
        for flit in incoming:
            pm.in_queue.push(flit)
        FakeEngine().tick(pm)
        response = pm.out_resp.peek().packet
        assert response.ptype is PacketType.WRITE_RESPONSE
        assert response.size_flits == 1

    def test_staging_respects_queue_capacity(self):
        """Responses exceeding the 1-packet output queue wait their turn."""
        pm = make_pm(miss_rate=0.000001, memory_latency=0)
        for txn in (1, 2):
            incoming = Packet(PacketType.READ_REQUEST, source=2, destination=0,
                              size_flits=1, transaction_id=txn, issue_cycle=0)
            pm.in_queue.push(incoming.head)
        engine = FakeEngine()
        engine.tick(pm)
        # Queue capacity is one cl packet (3 flits for 32B): one response fits.
        assert pm.out_resp.occupancy == 3
        # Drain the queue as the NIC would, then the second response moves.
        while not pm.out_resp.is_empty:
            pm.out_resp.pop()
        engine.tick(pm)
        assert pm.out_resp.occupancy == 3
