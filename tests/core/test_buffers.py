"""Unit and property tests for FIFO flit buffers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.buffers import FlitBuffer
from repro.core.packet import Packet, PacketType


def flits(n):
    packet = Packet(PacketType.READ_RESPONSE, 0, 1, n, 0, 0)
    return list(packet.flits)


class TestBoundedBuffer:
    def test_starts_empty(self):
        buf = FlitBuffer("b", capacity=3)
        assert buf.is_empty
        assert not buf.is_full
        assert buf.occupancy == 0
        assert buf.free_slots == 3
        assert buf.peek() is None

    def test_fifo_order(self):
        buf = FlitBuffer("b", capacity=3)
        items = flits(3)
        for flit in items:
            buf.push(flit)
        assert [buf.pop() for _ in range(3)] == items

    def test_full_and_overflow(self):
        buf = FlitBuffer("b", capacity=2)
        a, b, c = flits(3)
        buf.push(a)
        buf.push(b)
        assert buf.is_full
        assert buf.free_slots == 0
        with pytest.raises(OverflowError):
            buf.push(c)

    def test_underflow(self):
        buf = FlitBuffer("b", capacity=2)
        with pytest.raises(IndexError):
            buf.pop()

    def test_peek_does_not_remove(self):
        buf = FlitBuffer("b", capacity=2)
        (a,) = flits(1)
        buf.push(a)
        assert buf.peek() is a
        assert buf.occupancy == 1

    def test_counters(self):
        buf = FlitBuffer("b", capacity=4)
        for flit in flits(4):
            buf.push(flit)
        buf.pop()
        assert buf.flits_enqueued == 4
        assert buf.flits_dequeued == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlitBuffer("b", capacity=0)

    def test_push_packet_atomic(self):
        buf = FlitBuffer("b", capacity=5)
        packet_flits = flits(5)
        buf.push_packet(iter(packet_flits))
        assert list(buf) == packet_flits


class TestUnboundedBuffer:
    def test_never_full(self):
        buf = FlitBuffer("sink", capacity=None)
        for flit in flits(100):
            buf.push(flit)
        assert not buf.is_full
        assert buf.free_slots is None
        assert buf.occupancy == 100


@given(
    ops=st.lists(st.sampled_from(["push", "pop"]), max_size=60),
    capacity=st.integers(min_value=1, max_value=8),
)
def test_fifo_property(ops, capacity):
    """Any push/pop sequence preserves order and occupancy bounds."""
    buf = FlitBuffer("p", capacity=capacity)
    supply = iter(flits(60))
    model = []
    for op in ops:
        if op == "push" and len(model) < capacity:
            flit = next(supply)
            buf.push(flit)
            model.append(flit)
        elif op == "pop" and model:
            assert buf.pop() is model.pop(0)
        assert buf.occupancy == len(model)
        assert buf.peek() is (model[0] if model else None)
        assert buf.is_full == (len(model) == capacity)
