"""Tests for precision-driven (sequential batch-means) simulation."""

import pytest

from repro import ConfigurationError, RingSystemConfig, WorkloadConfig
from repro.core.adaptive import simulate_to_precision

CONFIG = RingSystemConfig(topology="6", cache_line_bytes=32)
LIGHT = WorkloadConfig(miss_rate=0.01, outstanding=1)
HEAVY = WorkloadConfig(miss_rate=0.04, outstanding=4)


class TestConvergence:
    def test_light_load_converges_quickly(self):
        adaptive = simulate_to_precision(
            CONFIG, LIGHT, relative_precision=0.1, batch_cycles=1200,
            min_batches=4, max_batches=20, seed=5,
        )
        assert adaptive.converged
        assert adaptive.relative_half_width <= 0.1
        assert adaptive.batches_run < 20
        assert adaptive.avg_latency > 0

    def test_tighter_precision_needs_more_batches(self):
        loose = simulate_to_precision(
            CONFIG, HEAVY, relative_precision=0.25, batch_cycles=600,
            min_batches=4, max_batches=40, seed=5,
        )
        tight = simulate_to_precision(
            CONFIG, HEAVY, relative_precision=0.04, batch_cycles=600,
            min_batches=4, max_batches=40, seed=5,
        )
        assert tight.batches_run >= loose.batches_run

    def test_budget_exhaustion_reported(self):
        adaptive = simulate_to_precision(
            RingSystemConfig(topology="4:8", cache_line_bytes=32),  # saturated
            HEAVY, relative_precision=0.001, batch_cycles=300,
            min_batches=4, max_batches=5, seed=5,
        )
        assert not adaptive.converged
        assert adaptive.batches_run == 5

    def test_result_params_reflect_actual_run(self):
        adaptive = simulate_to_precision(
            CONFIG, LIGHT, relative_precision=0.2, batch_cycles=800,
            min_batches=4, max_batches=12, seed=5,
        )
        assert adaptive.result.params.batches == adaptive.batches_run
        assert adaptive.result.cycles == adaptive.batches_run * 800


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"relative_precision": 0.0},
            {"relative_precision": 1.5},
            {"min_batches": 2},
            {"min_batches": 10, "max_batches": 5},
        ],
    )
    def test_bad_arguments(self, kwargs):
        with pytest.raises(ConfigurationError):
            simulate_to_precision(CONFIG, LIGHT, **kwargs)
