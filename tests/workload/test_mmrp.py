"""Unit and property tests for M-MRP locality regions and target draws."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload.mmrp import (
    RegionTargetSelector,
    expected_remote_fraction,
    mesh_region,
    ring_region,
)


class TestRingRegion:
    def test_full_locality_is_everyone(self):
        assert ring_region(3, 8, locality=1.0) == list(range(8))

    def test_window_centered_and_truncated(self):
        # ceil(0.25 * 7 / 2) = 1 PM on either side; truncated at the ends.
        assert ring_region(0, 8, locality=0.25) == [0, 1]
        assert ring_region(4, 8, locality=0.25) == [3, 4, 5]
        assert ring_region(7, 8, locality=0.25) == [6, 7]

    def test_region_size_formula(self):
        # ceil(0.5 * 11 / 2) = 3 on either side -> 7 PMs.
        region = ring_region(5, 12, locality=0.5)
        assert len(region) == 7
        assert region == [2, 3, 4, 5, 6, 7, 8]

    def test_includes_self(self):
        for processors in (2, 5, 24):
            for pm in range(processors):
                assert pm in ring_region(pm, processors, locality=0.1)

    def test_single_processor(self):
        assert ring_region(0, 1, locality=0.5) == [0]

    def test_invalid_locality(self):
        with pytest.raises(ValueError):
            ring_region(0, 8, locality=0.0)


class TestMeshRegion:
    def test_full_locality_is_everyone(self):
        assert mesh_region(0, 3, locality=1.0) == list(range(9))

    def test_closest_by_hops(self):
        # ceil(0.5 * 9) - 1 = 4 remote PMs closest to the center node 4.
        region = mesh_region(4, 3, locality=0.5)
        assert region == [1, 3, 4, 5, 7]  # the four 1-hop neighbors + self

    def test_corner_region(self):
        region = mesh_region(0, 3, locality=0.34)  # ceil(3.06)-1 = 3 remotes
        assert 0 in region
        assert len(region) == 4
        # Ties at distance 2 broken by PM index: neighbors 1,3 first (d=1),
        # then the lowest-id distance-2 node (2).
        assert region == [0, 1, 2, 3]

    def test_region_sizes_scale_with_r(self):
        sizes = [len(mesh_region(0, 4, r)) for r in (0.1, 0.3, 0.6, 1.0)]
        assert sizes == sorted(sizes)
        assert sizes[0] == math.ceil(0.1 * 16)

    def test_invalid_locality(self):
        with pytest.raises(ValueError):
            mesh_region(0, 3, locality=1.5)


class TestRegionTargetSelector:
    def test_targets_stay_in_region(self):
        selector = RegionTargetSelector.for_ring(12, locality=0.3)
        rng = random.Random(1)
        region = set(ring_region(4, 12, 0.3))
        for _ in range(500):
            assert selector(4, rng) in region

    def test_uniform_over_region(self):
        selector = RegionTargetSelector.for_mesh(3, locality=1.0)
        rng = random.Random(2)
        counts = {pm: 0 for pm in range(9)}
        draws = 9000
        for _ in range(draws):
            counts[selector(0, rng)] += 1
        for pm, count in counts.items():
            assert abs(count / draws - 1 / 9) < 0.03, (pm, count)

    def test_region_must_include_self(self):
        with pytest.raises(ValueError):
            RegionTargetSelector([[1, 2], [0, 1]])

    def test_expected_remote_fraction(self):
        # Regions of size 4 including self -> remote fraction 3/4.
        regions = [[0, 1, 2, 3]] * 4
        assert expected_remote_fraction(regions) == pytest.approx(0.75)
        assert expected_remote_fraction([]) == 0.0


class TestWeightedRemoteFraction:
    """The weight-aware generalization must preserve the uniform pins."""

    def test_uniform_weights_reduce_to_historical_formula(self):
        regions = [[0, 1, 2, 3]] * 4
        weights = [[1.0, 1.0, 1.0, 1.0]] * 4
        assert expected_remote_fraction(regions, weights) == pytest.approx(0.75)

    def test_repeated_targets_count_multiplicity(self):
        # The pool encoding: PM 0's pool lists itself 3 times out of 4.
        assert expected_remote_fraction([[0, 0, 0, 1]]) == pytest.approx(0.25)

    def test_weighted_self_draw(self):
        # PM 0 draws itself with weight 3 of 4 -> remote fraction 1/4.
        assert expected_remote_fraction([[0, 1]], [[3.0, 1.0]]) == pytest.approx(0.25)

    def test_zero_weight_targets_drop_out(self):
        assert expected_remote_fraction(
            [[0, 1, 2]], [[1.0, 1.0, 0.0]]
        ) == pytest.approx(0.5)

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            expected_remote_fraction([[0, 1]], [[1.0]])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            expected_remote_fraction([[0, 1]], [[1.0, -1.0]])

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            expected_remote_fraction([[0, 1]], [[0.0, 0.0]])

    @given(
        size=st.integers(2, 8),
        scale=st.floats(0.1, 100.0),
        raw=st.lists(st.floats(0.1, 10.0), min_size=2, max_size=8),
    )
    def test_scale_invariance(self, size, scale, raw):
        """Multiplying every weight by a constant changes nothing."""
        size = min(size, len(raw))
        region = list(range(size))
        weights = raw[:size]
        base = expected_remote_fraction([region], [weights])
        scaled = expected_remote_fraction([region], [[w * scale for w in weights]])
        assert scaled == pytest.approx(base)


@given(
    processors=st.integers(2, 64),
    pm=st.integers(0, 63),
    locality=st.floats(0.01, 1.0),
)
def test_ring_region_properties(processors, pm, locality):
    pm %= processors
    region = ring_region(pm, processors, locality)
    assert pm in region
    assert len(region) == len(set(region))
    assert all(0 <= member < processors for member in region)
    assert region == list(range(region[0], region[-1] + 1))  # contiguous line
    half = math.ceil(locality * (processors - 1) / 2)
    assert len(region) <= 2 * half + 1
    # Interior PMs get the full window.
    if half <= pm <= processors - 1 - half:
        assert len(region) == 2 * half + 1


@given(
    side=st.integers(2, 8),
    pm=st.integers(0, 63),
    locality=st.floats(0.01, 1.0),
)
def test_mesh_region_properties(side, pm, locality):
    pm %= side * side
    region = mesh_region(pm, side, locality)
    assert pm in region
    assert len(region) == min(side * side, math.ceil(locality * side * side))
    # Everyone inside the region is at least as close as anyone outside.
    from repro.mesh.topology import MeshShape

    shape = MeshShape(side)
    inside = max(shape.hop_distance(pm, member) for member in region)
    outside = [
        shape.hop_distance(pm, other)
        for other in range(side * side)
        if other not in region
    ]
    if outside:
        assert inside <= min(outside) + 0  # ties broken by index may equal
