"""Unit and property tests for the synthetic traffic-pattern suite."""

import random
from collections import Counter

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.config import TRAFFIC_PATTERNS, WorkloadConfig
from repro.core.errors import ConfigurationError
from repro.core.processor import BurstyMissGenerator, make_miss_generator
from repro.workload.mmrp import RegionTargetSelector, expected_remote_fraction
from repro.workload.patterns import (
    PATTERN_NAMES,
    PERMUTATIONS,
    PatternTargetSelector,
    TargetSpace,
    bitrev_target,
    build_target_selector,
    hotspot_modules,
    pattern_pools,
    shuffle_target,
    tornado_target,
    transpose_target,
)


@st.composite
def spaces_for(draw, pattern):
    """A ring or mesh :class:`TargetSpace` on which *pattern* is valid."""
    on_ring = draw(st.booleans())
    if pattern == "tornado":  # valid everywhere
        if on_ring:
            return TargetSpace.ring(draw(st.integers(2, 64)))
        return TargetSpace.mesh(draw(st.integers(2, 8)))
    if pattern == "transpose":  # ring needs P = 4^k; mesh any side
        if on_ring:
            return TargetSpace.ring(draw(st.sampled_from([4, 16, 64])))
        return TargetSpace.mesh(draw(st.integers(2, 8)))
    # shuffle / bitrev permute address bits: power-of-two P.
    if on_ring:
        return TargetSpace.ring(draw(st.sampled_from([2, 4, 8, 16, 32, 64])))
    return TargetSpace.mesh(draw(st.sampled_from([2, 4, 8])))


class TestPermutations:
    @pytest.mark.parametrize("pattern", sorted(PERMUTATIONS))
    @given(data=st.data())
    def test_bijection_on_pm_ids(self, pattern, data):
        space = data.draw(spaces_for(pattern))
        target_of = PERMUTATIONS[pattern]
        targets = [target_of(pm, space) for pm in range(space.processors)]
        assert sorted(targets) == list(range(space.processors))

    def test_ring_tornado_is_half_machine_shift(self):
        space = TargetSpace.ring(8)
        assert [tornado_target(pm, space) for pm in range(8)] == [
            4, 5, 6, 7, 0, 1, 2, 3,
        ]

    def test_mesh_tornado_shifts_both_dimensions(self):
        space = TargetSpace.mesh(4)
        # (x, y) = (1, 0) -> (3, 2): id 1 -> 2*4 + 3 = 11.
        assert tornado_target(1, space) == 11

    def test_mesh_transpose_swaps_coordinates(self):
        space = TargetSpace.mesh(4)
        # id 9 = (x=1, y=2) -> (x=2, y=1) = id 6; the diagonal is fixed.
        assert transpose_target(9, space) == 6
        for diag in range(4):
            assert transpose_target(diag * 4 + diag, space) == diag * 4 + diag

    def test_ring_transpose_swaps_bit_halves(self):
        space = TargetSpace.ring(16)
        # 0b0110 -> 0b1001: high half 01, low half 10 swapped.
        assert transpose_target(0b0110, space) == 0b1001

    def test_ring_and_mesh_transpose_coincide_on_squares(self):
        # On a power-of-two square mesh the coordinate transpose IS the
        # bit-half swap of the linearized id.
        side = 4
        mesh, ring = TargetSpace.mesh(side), TargetSpace.ring(side * side)
        for pm in range(side * side):
            assert transpose_target(pm, mesh) == transpose_target(pm, ring)

    def test_shuffle_rotates_bits_left(self):
        space = TargetSpace.ring(8)
        assert shuffle_target(0b011, space) == 0b110
        assert shuffle_target(0b100, space) == 0b001

    def test_bitrev_reverses_bits(self):
        space = TargetSpace.ring(8)
        assert bitrev_target(0b001, space) == 0b100
        assert bitrev_target(0b110, space) == 0b011

    def test_bit_patterns_reject_non_power_of_two(self):
        for fn in (shuffle_target, bitrev_target):
            with pytest.raises(ConfigurationError):
                fn(0, TargetSpace.ring(6))

    def test_ring_transpose_rejects_non_square_power(self):
        # P = 8 is a power of two but not 4^k: halves are unequal.
        with pytest.raises(ConfigurationError):
            transpose_target(0, TargetSpace.ring(8))


class TestHotspot:
    def test_modules_evenly_spaced(self):
        assert hotspot_modules(16, 2) == [0, 8]
        assert hotspot_modules(16, 4) == [0, 4, 8, 12]
        assert hotspot_modules(9, 3) == [0, 3, 6]

    def test_module_count_bounds(self):
        with pytest.raises(ConfigurationError):
            hotspot_modules(8, 0)
        with pytest.raises(ConfigurationError):
            hotspot_modules(8, 9)

    @given(
        processors=st.integers(2, 64),
        count=st.integers(1, 4),
        weight=st.integers(2, 16),
    )
    def test_pool_weights_normalize(self, processors, count, weight):
        """Every PM's pool holds each target with exactly its weight."""
        assume(count <= processors)
        workload = WorkloadConfig(
            miss_rate=0.04,
            pattern="hotspot",
            hotspot_count=count,
            hotspot_weight=weight,
        )
        pools = pattern_pools(workload, TargetSpace.ring(processors))
        hot = set(hotspot_modules(processors, count))
        assert len(pools) == processors
        for pool in pools:
            counts = Counter(pool)
            assert set(counts) == set(range(processors))
            for target, multiplicity in counts.items():
                assert multiplicity == (weight if target in hot else 1)

    @given(
        processors=st.integers(2, 32),
        count=st.integers(1, 3),
        weight=st.integers(2, 8),
    )
    def test_remote_fraction_matches_analytic(self, processors, count, weight):
        assume(count <= processors)
        workload = WorkloadConfig(
            miss_rate=0.04,
            pattern="hotspot",
            hotspot_count=count,
            hotspot_weight=weight,
        )
        pools = pattern_pools(workload, TargetSpace.ring(processors))
        hot = set(hotspot_modules(processors, count))
        total = processors + count * (weight - 1)
        expected = sum(
            (total - (weight if pm in hot else 1)) / total
            for pm in range(processors)
        ) / processors
        assert expected_remote_fraction(pools) == pytest.approx(expected)


class TestPools:
    def test_uniform_pool_is_everyone_for_every_pm(self):
        workload = WorkloadConfig(miss_rate=0.04, pattern="uniform")
        pools = pattern_pools(workload, TargetSpace.mesh(3))
        assert pools == [list(range(9))] * 9

    def test_mmrp_pools_are_locality_regions(self):
        workload = WorkloadConfig(locality=0.25, miss_rate=0.04)
        pools = pattern_pools(workload, TargetSpace.ring(8))
        assert pools[0] == [0, 1]  # matches ring_region truncation
        assert pools[4] == [3, 4, 5]

    def test_permutation_pools_are_singletons(self):
        workload = WorkloadConfig(miss_rate=0.04, pattern="tornado")
        pools = pattern_pools(workload, TargetSpace.ring(8))
        assert all(len(pool) == 1 for pool in pools)

    def test_pattern_names_track_config_registry(self):
        assert set(PATTERN_NAMES) == set(TRAFFIC_PATTERNS) - {"mmrp"}
        for name in PATTERN_NAMES:
            workload = WorkloadConfig(miss_rate=0.04, pattern=name)
            pools = pattern_pools(workload, TargetSpace.mesh(4))
            assert len(pools) == 16 and all(pools)


class TestSelectors:
    def test_singleton_pool_consumes_no_randomness(self):
        selector = PatternTargetSelector([[3], [0]])
        rng = random.Random(1)
        before = rng.getstate()
        assert selector(0, rng) == 3
        assert selector(1, rng) == 0
        assert rng.getstate() == before

    def test_multi_pool_draws_match_region_selector_discipline(self):
        """Same pool, same seed -> the exact randrange draw sequence of
        RegionTargetSelector, the bit-identity contract."""
        pools = [[0, 1, 2, 3]] * 4
        pattern = PatternTargetSelector(pools)
        region = RegionTargetSelector(pools)
        draws_a = [pattern(0, random.Random(7)) for _ in range(1)]
        draws_b = [region(0, random.Random(7)) for _ in range(1)]
        rng_a, rng_b = random.Random(7), random.Random(7)
        assert [pattern(2, rng_a) for _ in range(50)] == [
            region(2, rng_b) for _ in range(50)
        ]
        assert draws_a == draws_b

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            PatternTargetSelector([[0], []])

    def test_build_keeps_region_selector_for_mmrp(self):
        workload = WorkloadConfig(locality=0.5, miss_rate=0.04)
        selector = build_target_selector(workload, TargetSpace.ring(8))
        assert isinstance(selector, RegionTargetSelector)

    def test_build_uses_pattern_selector_otherwise(self):
        workload = WorkloadConfig(miss_rate=0.04, pattern="uniform")
        selector = build_target_selector(workload, TargetSpace.mesh(3))
        assert isinstance(selector, PatternTargetSelector)


class TestWorkloadValidation:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(miss_rate=0.04, pattern="zipf").validate()

    def test_patterns_require_full_locality(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(locality=0.5, miss_rate=0.04, pattern="uniform").validate()

    def test_hotspot_weight_floor(self):
        # Weight 1 would be uniform under another name.
        with pytest.raises(ConfigurationError):
            WorkloadConfig(
                miss_rate=0.04, pattern="hotspot", hotspot_weight=1
            ).validate()

    def test_burst_knobs_come_in_pairs(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(miss_rate=0.04, burst_on=25.0).validate()
        with pytest.raises(ConfigurationError):
            WorkloadConfig(miss_rate=0.04, burst_off=75.0).validate()

    def test_on_state_rate_must_stay_a_probability(self):
        # duty = 0.1 -> on-rate would be 10 * miss_rate > 1.
        with pytest.raises(ConfigurationError):
            WorkloadConfig(miss_rate=0.2, burst_on=10.0, burst_off=90.0).validate()

    def test_bursty_properties(self):
        workload = WorkloadConfig(miss_rate=0.04, burst_on=25.0, burst_off=75.0)
        assert workload.bursty
        assert workload.burst_on_rate == pytest.approx(0.16)
        assert not WorkloadConfig(miss_rate=0.04).bursty


def _drain(generator, cycles):
    """Issue every miss up to *cycles* with always-free slots."""
    misses = []
    cycle = 0
    while cycle < cycles:
        wake = generator.next_issue_cycle(cycle)
        if wake is None or wake >= cycles:
            break
        cycle = max(cycle, wake)
        miss = generator.poll(cycle, lambda: True)
        if miss is not None:
            misses.append(miss)
        cycle += 1
    return misses


class TestBurstyGenerator:
    WORKLOAD = WorkloadConfig(miss_rate=0.04, burst_on=25.0, burst_off=75.0)

    def test_factory_picks_bursty(self):
        gen = make_miss_generator(0, self.WORKLOAD, lambda pm, rng: 0, random.Random(3))
        assert isinstance(gen, BurstyMissGenerator)
        plain = make_miss_generator(
            0, WorkloadConfig(miss_rate=0.04), lambda pm, rng: 0, random.Random(3)
        )
        assert type(plain).__name__ == "MissGenerator"

    def test_lazy_and_lookahead_streams_identical(self):
        """One-draw-per-poll and burst lookahead must consume the PM's
        random stream identically — the scheduler bit-identity contract."""
        select = PatternTargetSelector([[0, 1, 2, 3]])

        lazy = BurstyMissGenerator(0, self.WORKLOAD, select, random.Random(11))
        lazy_misses = []
        for cycle in range(4000):
            miss = lazy.poll(cycle, lambda: True)
            if miss is not None:
                lazy_misses.append(miss)

        eager = BurstyMissGenerator(0, self.WORKLOAD, select, random.Random(11))
        eager_misses = _drain(eager, 4000)
        assert lazy_misses == eager_misses
        assert lazy_misses  # the run actually generated load

    def test_long_run_rate_approaches_miss_rate(self):
        select = PatternTargetSelector([[1]])
        gen = BurstyMissGenerator(0, self.WORKLOAD, select, random.Random(5))
        cycles = 200_000
        misses = _drain(gen, cycles)
        rate = len(misses) / cycles
        # Mean 0.04 with on/off modulation: generous 20% tolerance.
        assert rate == pytest.approx(self.WORKLOAD.miss_rate, rel=0.2)

    def test_misses_cluster_into_bursts(self):
        """On/off modulation must visibly clump arrivals: the variance
        of per-window counts far exceeds a Poisson stream's."""
        select = PatternTargetSelector([[1]])
        gen = BurstyMissGenerator(0, self.WORKLOAD, select, random.Random(9))
        misses = _drain(gen, 100_000)
        window = 100  # matches the on+off period
        counts = Counter(miss.generated_cycle // window for miss in misses)
        total_windows = 100_000 // window
        mean = len(misses) / total_windows
        var = (
            sum((counts.get(w, 0) - mean) ** 2 for w in range(total_windows))
            / total_windows
        )
        # Poisson would give var ~= mean; Markov-modulated is far burstier.
        assert var > 2.0 * mean
