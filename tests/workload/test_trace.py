"""Tests for the trace-driven workload (record and replay)."""

import pytest

from repro import (
    ConfigurationError,
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
    simulate,
)
from repro.workload.mmrp import RegionTargetSelector
from repro.workload.trace import (
    MemoryTrace,
    TracePlayer,
    TraceRecord,
    record_mmrp_trace,
    trace_miss_sources,
)

WORKLOAD = WorkloadConfig(locality=1.0, miss_rate=0.04, outstanding=2)


def make_trace():
    selector = RegionTargetSelector.for_ring(6, locality=1.0)
    return record_mmrp_trace(6, cycles=2000, workload=WORKLOAD,
                             select_target=selector, seed=9)


class TestMemoryTrace:
    def test_recording_rate(self):
        trace = make_trace()
        # 6 PMs x 2000 cycles x C=0.04 ~ 480 misses.
        assert 350 < len(trace) < 620
        assert trace.horizon < 2000

    def test_records_in_order(self):
        trace = make_trace()
        for pm in range(6):
            cycles = [record.cycle for record in trace.records_of(pm)]
            assert cycles == sorted(cycles)

    def test_out_of_order_append_rejected(self):
        trace = MemoryTrace(2)
        trace.append(0, TraceRecord(10, True, 1))
        with pytest.raises(ValueError):
            trace.append(0, TraceRecord(5, True, 1))

    def test_bad_pm_rejected(self):
        trace = MemoryTrace(2)
        with pytest.raises(IndexError):
            trace.append(2, TraceRecord(0, True, 1))
        with pytest.raises(ValueError):
            MemoryTrace(0)

    def test_jsonl_round_trip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.jsonl"
        trace.dump_jsonl(path)
        loaded = MemoryTrace.load_jsonl(path)
        assert loaded.processors == trace.processors
        assert len(loaded) == len(trace)
        for pm in range(6):
            assert loaded.records_of(pm) == trace.records_of(pm)

    def test_recording_is_deterministic(self):
        assert make_trace().records_of(3) == make_trace().records_of(3)


class TestTracePlayer:
    def test_releases_at_generation_time(self):
        player = TracePlayer(0, [TraceRecord(5, True, 2)])
        assert player.poll(4, lambda: True) is None
        miss = player.poll(5, lambda: True)
        assert miss is not None
        assert miss.target == 2 and miss.is_read
        assert player.exhausted

    def test_blocks_without_slot(self):
        player = TracePlayer(0, [TraceRecord(0, True, 2)])
        assert player.poll(3, lambda: False) is None
        assert not player.exhausted
        assert player.poll(4, lambda: True) is not None

    def test_queueing_preserves_order(self):
        player = TracePlayer(0, [TraceRecord(0, True, 1), TraceRecord(0, False, 2)])
        first = player.poll(10, lambda: True)
        second = player.poll(10, lambda: True)
        assert first.target == 1 and second.target == 2

    def test_repeat_mode_wraps(self):
        player = TracePlayer(0, [TraceRecord(3, True, 1)], repeat=True)
        assert player.poll(3, lambda: True) is not None
        # The wrap is observed at cycle 5; the copy re-times from there.
        assert player.poll(5, lambda: True) is None
        assert player.poll(7, lambda: True) is None
        assert player.poll(5 + 3, lambda: True) is not None
        assert not player.exhausted

    def test_empty_player(self):
        player = TracePlayer(0, [])
        assert player.poll(0, lambda: True) is None
        assert player.exhausted


class TestReplayThroughSimulation:
    def test_replay_completes_all_trace_misses(self):
        trace = make_trace()
        players = trace_miss_sources(trace)
        config = RingSystemConfig(topology="6", cache_line_bytes=32)
        result = simulate(
            config,
            WORKLOAD,
            SimulationParams(batch_cycles=1500, batches=3, seed=1),
            miss_sources=players,
        )
        remote = sum(
            1 for pm in range(6)
            for record in trace.records_of(pm) if record.target != pm
        )
        assert result.remote_transactions == remote

    def test_same_trace_on_ring_and_mesh(self):
        """The point of traces: identical reference streams on both
        networks (4 PMs so both a ring and a 2x2 mesh exist)."""
        selector = RegionTargetSelector.for_ring(4, locality=1.0)
        trace = record_mmrp_trace(4, 1200, WORKLOAD, selector, seed=5)
        params = SimulationParams(batch_cycles=1000, batches=3, seed=1)
        ring = simulate(
            RingSystemConfig(topology="4", cache_line_bytes=32),
            WORKLOAD, params, miss_sources=trace_miss_sources(trace),
        )
        mesh = simulate(
            MeshSystemConfig(side=2, cache_line_bytes=32, buffer_flits=4),
            WORKLOAD, params, miss_sources=trace_miss_sources(trace),
        )
        assert ring.remote_transactions == mesh.remote_transactions

    def test_source_count_validated(self):
        trace = make_trace()
        with pytest.raises(ConfigurationError):
            simulate(
                RingSystemConfig(topology="8"),
                WORKLOAD,
                SimulationParams(batch_cycles=200, batches=2),
                miss_sources=trace_miss_sources(trace),  # 6 sources, 8 PMs
            )
