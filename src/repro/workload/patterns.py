"""Synthetic traffic patterns beyond the paper's M-MRP workload.

The paper evaluates its networks only under the M-MRP locality workload
(Section 2.4, :mod:`repro.workload.mmrp`).  Related NoC work — the
pattern suites of the 3D-topology study and the HiRD / Ring-Mesh papers
in PAPERS.md — characterizes fabrics by *per-pattern saturation
throughput* instead, under a standard battery of spatial patterns:

``uniform``
    Every PM is an equally likely target (including the issuing PM, so
    a ``1/P`` fraction of misses stay local — identical in shape to
    M-MRP at ``R = 1.0``, but a distinct workload identity).
``tornado``
    Each PM sends to the PM "half the machine away": ``(i + P//2) mod
    P`` on the ring line projection; on the mesh the half-shift is
    applied per dimension, the 2D tornado.
``transpose``
    Mesh: node ``(x, y)`` sends to ``(y, x)``.  Ring: the line
    projection has no coordinates, so the classic bit-level definition
    is used — swap the high and low halves of the PM id's address bits
    (requires ``P = 4^k``); on a square mesh both definitions coincide.
``shuffle``
    Perfect shuffle: rotate the PM id's address bits left by one
    (requires a power-of-two PM count).
``bitrev``
    Bit reversal: reverse the PM id's address bits (power of two).
``hotspot``
    Uniform background traffic with ``hotspot_count`` evenly spaced hot
    memory modules drawn ``hotspot_weight`` times more often than the
    others — the weighted-draw pattern whose remote fraction the
    weight-aware :func:`repro.workload.mmrp.expected_remote_fraction`
    computes.

Every pattern is expressed as a **per-PM draw pool**: a list of target
PM ids in which a target's multiplicity is its (integer) draw weight.
A miss target is a uniform draw from the issuing PM's pool, exactly the
draw discipline of :class:`~repro.workload.mmrp.RegionTargetSelector` —
one ``rng.randrange`` per miss — so every scheduler that shares the
selector object consumes the PM's random stream identically.
Permutation pools are singletons and consume no randomness at all.

Bursty (on/off Markov-modulated) injection is *temporal*, not spatial:
it composes with any of the above (and with M-MRP) and lives in
:class:`repro.core.processor.BurstyMissGenerator`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from ..core.config import TRAFFIC_PATTERNS
from ..core.errors import ConfigurationError
from .mmrp import RegionTargetSelector, mesh_region, ring_region

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import WorkloadConfig


@dataclass(frozen=True)
class TargetSpace:
    """The PM id space a pattern maps over.

    Rings project PMs onto a line (ids in depth-first order); meshes
    give each PM ``(x, y) = (id % side, id // side)`` coordinates.
    Patterns with a coordinate definition (transpose, tornado) use the
    mesh form when ``side`` is set and the line/bit form otherwise.
    """

    kind: str  # "ring" | "mesh"
    processors: int
    side: int = 0

    @classmethod
    def ring(cls, processors: int) -> "TargetSpace":
        return cls(kind="ring", processors=processors)

    @classmethod
    def mesh(cls, side: int) -> "TargetSpace":
        return cls(kind="mesh", processors=side * side, side=side)


def _address_bits(space: TargetSpace, pattern: str) -> int:
    """Bit width of a PM id; patterns using it need a power-of-two P."""
    processors = space.processors
    bits = max(1, (processors - 1).bit_length())
    if 1 << bits != processors:
        raise ConfigurationError(
            f"pattern {pattern!r} permutes PM address bits and needs a "
            f"power-of-two PM count, got {processors}"
        )
    return bits


def tornado_target(pm_id: int, space: TargetSpace) -> int:
    """Half-machine shift; per-dimension on the mesh, linear on the ring."""
    if space.kind == "mesh":
        side = space.side
        x, y = pm_id % side, pm_id // side
        return (y + side // 2) % side * side + (x + side // 2) % side
    return (pm_id + space.processors // 2) % space.processors


def transpose_target(pm_id: int, space: TargetSpace) -> int:
    """Mesh ``(x, y) -> (y, x)``; ring swaps the id's bit halves."""
    if space.kind == "mesh":
        side = space.side
        x, y = pm_id % side, pm_id // side
        return x * side + y
    bits = _address_bits(space, "transpose")
    if bits % 2:
        raise ConfigurationError(
            f"ring transpose swaps the two halves of the PM address and "
            f"needs P = 4^k, got {space.processors}"
        )
    half = bits // 2
    low = pm_id & ((1 << half) - 1)
    return (low << half) | (pm_id >> half)


def shuffle_target(pm_id: int, space: TargetSpace) -> int:
    """Perfect shuffle: rotate the address bits left by one."""
    bits = _address_bits(space, "shuffle")
    msb = pm_id >> (bits - 1)
    return ((pm_id << 1) | msb) & ((1 << bits) - 1)


def bitrev_target(pm_id: int, space: TargetSpace) -> int:
    """Reverse the address bits."""
    bits = _address_bits(space, "bitrev")
    out = 0
    for bit in range(bits):
        out = (out << 1) | ((pm_id >> bit) & 1)
    return out


#: The permutation patterns: PM id -> single fixed target.
PERMUTATIONS: dict[str, Callable[[int, TargetSpace], int]] = {
    "tornado": tornado_target,
    "transpose": transpose_target,
    "shuffle": shuffle_target,
    "bitrev": bitrev_target,
}

#: Pattern names accepted by ``WorkloadConfig.pattern`` beyond "mmrp"
#: (the authoritative list lives in ``repro.core.config.TRAFFIC_PATTERNS``).
PATTERN_NAMES: tuple[str, ...] = tuple(
    name for name in TRAFFIC_PATTERNS if name != "mmrp"
)


def hotspot_modules(processors: int, count: int) -> list[int]:
    """``count`` evenly spaced hot memory modules, starting at PM 0."""
    if not 1 <= count <= processors:
        raise ConfigurationError(
            f"hotspot_count must be in [1, {processors}], got {count}"
        )
    return [(i * processors) // count for i in range(count)]


def pattern_pools(workload: "WorkloadConfig", space: TargetSpace) -> list[list[int]]:
    """Per-PM weighted draw pools for ``workload.pattern`` on *space*.

    A target's multiplicity in the pool is its draw weight; a miss
    target is one uniform draw from the issuing PM's pool.
    """
    pattern = workload.pattern
    processors = space.processors
    if pattern == "mmrp":
        if space.kind == "mesh":
            return [
                mesh_region(pm, space.side, workload.locality)
                for pm in range(processors)
            ]
        return [
            ring_region(pm, processors, workload.locality)
            for pm in range(processors)
        ]
    if pattern == "uniform":
        everyone = list(range(processors))
        return [list(everyone) for _ in range(processors)]
    if pattern in PERMUTATIONS:
        target_of = PERMUTATIONS[pattern]
        return [[target_of(pm, space)] for pm in range(processors)]
    if pattern == "hotspot":
        hot = set(hotspot_modules(processors, workload.hotspot_count))
        weight = workload.hotspot_weight
        pool: list[int] = []
        for target in range(processors):
            pool.extend([target] * (weight if target in hot else 1))
        return [list(pool) for _ in range(processors)]
    raise ConfigurationError(f"unknown traffic pattern: {pattern!r}")


class PatternTargetSelector:
    """Uniform target draw from per-PM weighted pools.

    The same draw discipline as
    :class:`~repro.workload.mmrp.RegionTargetSelector` (one
    ``randrange`` per miss) so bit-identity across schedulers carries
    over; single-target pools (the permutations) short-circuit and
    consume no randomness.
    """

    def __init__(self, pools: Sequence[Sequence[int]]):
        self.pools = [list(pool) for pool in pools]
        for pm_id, pool in enumerate(self.pools):
            if not pool:
                raise ConfigurationError(f"empty target pool for PM {pm_id}")

    def __call__(self, pm_id: int, rng: random.Random) -> int:
        pool = self.pools[pm_id]
        if len(pool) == 1:
            return pool[0]
        return pool[rng.randrange(len(pool))]


def build_target_selector(
    workload: "WorkloadConfig", space: TargetSpace
) -> "RegionTargetSelector | PatternTargetSelector":
    """The target selector the object networks install in their PMs.

    M-MRP keeps the original :class:`RegionTargetSelector` (unchanged
    draw stream — cached M-MRP results stay byte-valid); every other
    pattern gets a :class:`PatternTargetSelector` over its pools.
    """
    if workload.pattern == "mmrp":
        if space.kind == "mesh":
            return RegionTargetSelector.for_mesh(space.side, workload.locality)
        return RegionTargetSelector.for_ring(space.processors, workload.locality)
    return PatternTargetSelector(pattern_pools(workload, space))
