"""Trace-driven workloads: record M-MRP streams and replay them.

The paper drives its simulator with the synthetic M-MRP generator
(Section 2.4).  Real methodology often wants the *same* reference
stream replayed against different networks — e.g. one miss trace fed to
both a ring and an equally sized mesh so the comparison has zero
workload variance.  This module provides that:

* :class:`MemoryTrace` — an in-memory trace: per-PM lists of
  :class:`TraceRecord` (generation cycle, read/write, target), with
  JSON-lines (de)serialization;
* :func:`record_mmrp_trace` — capture an M-MRP stream of a given
  length without running a network simulation;
* :class:`TracePlayer` — a :class:`~repro.core.processor.MissSource`
  replaying one PM's records with the paper's blocking semantics:
  a miss whose generation time has passed waits for a free
  outstanding-transaction slot, and later misses queue behind it;
* :func:`trace_miss_sources` — the per-PM players for a whole system,
  handed to ``simulate(..., miss_sources=...)``.

The generation *times* in a trace are open-loop: replaying against a
slower network makes processors block longer but never re-times the
reference stream, which keeps two networks' replays comparable.
"""

from __future__ import annotations

import json
import random
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable

from ..core.config import WorkloadConfig
from ..core.processor import Miss, MissGenerator, TargetSelector


@dataclass(frozen=True)
class TraceRecord:
    """One cache miss of one processor."""

    cycle: int
    is_read: bool
    target: int


class MemoryTrace:
    """A per-processor collection of miss records."""

    def __init__(self, processors: int):
        if processors < 1:
            raise ValueError("a trace needs at least one processor")
        self.processors = processors
        # RPR001 regression note: per-PM records are kept in an indexed
        # list of append-ordered lists — never a set or dict keyed by
        # record — so every consumer (replay, dump_jsonl, horizon)
        # iterates in PM-id-then-cycle order.  Trace replay determinism
        # depends on that order; keep any future container ordered.
        self._records: list[list[TraceRecord]] = [[] for _ in range(processors)]

    def append(self, pm_id: int, record: TraceRecord) -> None:
        if not 0 <= pm_id < self.processors:
            raise IndexError(f"pm_id {pm_id} out of range")
        records = self._records[pm_id]
        if records and record.cycle < records[-1].cycle:
            raise ValueError(
                f"records for PM {pm_id} must be in non-decreasing cycle order"
            )
        records.append(record)

    def records_of(self, pm_id: int) -> list[TraceRecord]:
        return list(self._records[pm_id])

    def __len__(self) -> int:
        return sum(len(records) for records in self._records)

    @property
    def horizon(self) -> int:
        """The last generation cycle in the trace (0 when empty)."""
        last = [records[-1].cycle for records in self._records if records]
        return max(last) if last else 0

    # -- serialization ---------------------------------------------------
    def dump_jsonl(self, path: "str | Path") -> None:
        """Write the trace as JSON lines (one record per line)."""
        with open(path, "w") as handle:
            handle.write(
                json.dumps({"processors": self.processors}, sort_keys=True) + "\n"
            )
            for pm_id, records in enumerate(self._records):
                for record in records:
                    payload = {"pm": pm_id, **asdict(record)}
                    handle.write(json.dumps(payload, sort_keys=True) + "\n")

    @classmethod
    def load_jsonl(cls, path: "str | Path") -> "MemoryTrace":
        with open(path) as handle:
            header = json.loads(handle.readline())
            trace = cls(processors=header["processors"])
            for line in handle:
                if not line.strip():
                    continue
                payload = json.loads(line)
                trace.append(
                    payload["pm"],
                    TraceRecord(
                        cycle=payload["cycle"],
                        is_read=payload["is_read"],
                        target=payload["target"],
                    ),
                )
        return trace


def record_mmrp_trace(
    processors: int,
    cycles: int,
    workload: WorkloadConfig,
    select_target: TargetSelector,
    seed: int = 1,
) -> MemoryTrace:
    """Capture an open-loop M-MRP stream without simulating a network.

    Every processor draws a Bernoulli(C) miss each cycle — the
    unblocked-generation behaviour of the paper's multiple-context
    processors — so the trace records the *offered* load; blocking is
    re-applied at replay time by :class:`TracePlayer`.
    """
    workload.validate()
    trace = MemoryTrace(processors)
    for pm_id in range(processors):
        generator = MissGenerator(
            pm_id,
            workload,
            select_target,
            random.Random(seed * 1_000_003 + pm_id),
        )
        for cycle in range(cycles):
            miss = generator.poll(cycle, lambda: True)
            if miss is not None:
                trace.append(
                    pm_id,
                    TraceRecord(cycle=cycle, is_read=miss.is_read, target=miss.target),
                )
    return trace


class TracePlayer:
    """Replays one PM's records as a blocking miss source.

    Records whose generation cycle has been reached are released in
    order, each waiting for a free outstanding slot, matching the
    generator's behaviour of holding a pending miss while ``T`` is
    exhausted.
    """

    def __init__(self, pm_id: int, records: Iterable[TraceRecord], repeat: bool = False):
        self.pm_id = pm_id
        self._original: tuple[TraceRecord, ...] = tuple(records)
        self._pending: deque[TraceRecord] = deque(self._original)
        self.repeat = repeat
        self._cycle_offset = 0
        self.misses_replayed = 0

    @property
    def exhausted(self) -> bool:
        return not self._pending and not self.repeat

    def next_issue_cycle(self, cycle: int) -> int | None:
        """Earliest cycle ``poll`` could release a record (see MissSource).

        An exhausted player never releases again (``None`` lets its PM
        sleep for good).  In repeat mode the refill offset is stamped by
        the next ``poll`` call, so the PM must keep polling; and a due
        record returns a past cycle, which the PM clamps to "next
        cycle" — polling every cycle while blocked, exactly like the
        full-scan scheduler.
        """
        if not self._pending:
            if not self.repeat or not self._original:
                return None
            return cycle + 1
        return self._pending[0].cycle + self._cycle_offset

    def poll(self, cycle: int, can_issue: Callable[[], bool]) -> Miss | None:
        if not self._pending:
            if not self.repeat or not self._original:
                return None
            self._cycle_offset = cycle
            self._pending.extend(self._original)
        head = self._pending[0]
        if head.cycle + self._cycle_offset > cycle:
            return None
        if not can_issue():
            return None
        self._pending.popleft()
        self.misses_replayed += 1
        return Miss(
            is_read=head.is_read,
            target=head.target,
            generated_cycle=head.cycle + self._cycle_offset,
        )


def trace_miss_sources(trace: MemoryTrace, repeat: bool = False) -> list[TracePlayer]:
    """One :class:`TracePlayer` per processor of *trace*."""
    return [
        TracePlayer(pm_id, trace.records_of(pm_id), repeat=repeat)
        for pm_id in range(trace.processors)
    ]
