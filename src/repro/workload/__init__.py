"""Synthetic M-MRP workloads (paper Section 2.4)."""
