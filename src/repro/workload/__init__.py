"""Synthetic workloads: M-MRP (paper Section 2.4) and the NoC traffic
patterns of :mod:`repro.workload.patterns` (uniform, tornado, transpose,
shuffle, bitrev, hotspot, plus bursty on/off injection)."""
