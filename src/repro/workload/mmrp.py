"""Multiprocessor Memory Reference Pattern (M-MRP) target selection.

Section 2.4 of the paper: each processor accesses a memory region whose
size is controlled by ``R``; references within the region are uniformly
distributed and independent.  "Closest" is interpreted per network:

* **rings** — processors are projected onto a line in linear
  (depth-first) order and the region is the ``ceil(R * (P - 1) / 2)``
  PMs on either side, plus the local PM: a contiguous region centered
  at the accessing PM.  The line is truncated at its ends (a PM near
  the edge has a smaller region), exactly as a line projection implies;
  wrapping instead would hand edge PMs "close" targets on the far side
  of the whole machine and destroy the locality the parameter is meant
  to model.
* **meshes** — the region is the ``ceil(R * P) - 1`` PMs closest by
  e-cube hop count, plus the local PM.  Ties at the region boundary are
  broken by PM index, deterministically.

``R = 1.0`` makes every PM a uniform random target (no locality).
"""

from __future__ import annotations

import math
import random
from typing import Sequence


def ring_region(pm_id: int, processors: int, locality: float) -> list[int]:
    """Contiguous line window of PMs around *pm_id*, including it.

    When the window spans the whole machine (``2*half + 1 >= P``, e.g.
    R=1.0) every PM is a target — the paper's "no locality" uniform
    workload — rather than a truncated half-window at the line's ends.
    """
    if not 0.0 < locality <= 1.0:
        raise ValueError(f"locality must be in (0, 1], got {locality}")
    if processors == 1:
        return [0]
    half = math.ceil(locality * (processors - 1) / 2)
    if 2 * half + 1 >= processors:
        return list(range(processors))
    lo = max(0, pm_id - half)
    hi = min(processors - 1, pm_id + half)
    return list(range(lo, hi + 1))


def mesh_region(pm_id: int, side: int, locality: float) -> list[int]:
    """The hop-count-closest PMs to *pm_id* on a *side* x *side* mesh."""
    if not 0.0 < locality <= 1.0:
        raise ValueError(f"locality must be in (0, 1], got {locality}")
    processors = side * side
    remote_count = max(0, math.ceil(locality * processors) - 1)
    x0, y0 = pm_id % side, pm_id // side
    others = sorted(
        (pm for pm in range(processors) if pm != pm_id),
        key=lambda pm: (abs(pm % side - x0) + abs(pm // side - y0), pm),
    )
    return sorted([pm_id, *others[:remote_count]])


class RegionTargetSelector:
    """Uniform target draw from per-PM precomputed locality regions."""

    def __init__(self, regions: Sequence[Sequence[int]]):
        self.regions = [list(r) for r in regions]
        for pm_id, region in enumerate(self.regions):
            if pm_id not in region:
                raise ValueError(f"region of PM {pm_id} must include the PM itself")

    def __call__(self, pm_id: int, rng: random.Random) -> int:
        region = self.regions[pm_id]
        return region[rng.randrange(len(region))]

    @classmethod
    def for_ring(cls, processors: int, locality: float) -> "RegionTargetSelector":
        return cls([ring_region(pm, processors, locality) for pm in range(processors)])

    @classmethod
    def for_mesh(cls, side: int, locality: float) -> "RegionTargetSelector":
        return cls([mesh_region(pm, side, locality) for pm in range(side * side)])


def expected_remote_fraction(
    regions: Sequence[Sequence[int]],
    weights: "Sequence[Sequence[float]] | None" = None,
) -> float:
    """Mean probability that a miss leaves its PM — a load sanity check.

    ``regions[pm]`` lists PM *pm*'s candidate targets.  Draws are
    weighted: with ``weights`` given, ``weights[pm][i]`` is the draw
    weight of ``regions[pm][i]``; without it every listed entry weighs
    1, so a *pool* that repeats a target (the weighted-hotspot encoding
    of :mod:`repro.workload.patterns`) contributes its multiplicity.
    For plain locality regions — each target listed once, no weights —
    this reduces exactly to the historical uniform formula
    ``(len(region) - 1) / len(region)``.
    """
    if not regions:
        return 0.0
    total = 0.0
    for pm_id, region in enumerate(regions):
        region_weights = weights[pm_id] if weights is not None else None
        if region_weights is not None and len(region_weights) != len(region):
            raise ValueError(
                f"weights of PM {pm_id} must parallel its region: "
                f"{len(region_weights)} weights for {len(region)} targets"
            )
        total_weight = 0.0
        self_weight = 0.0
        for index, target in enumerate(region):
            weight = 1.0 if region_weights is None else float(region_weights[index])
            if weight < 0.0:
                raise ValueError(f"negative draw weight for PM {pm_id}: {weight}")
            total_weight += weight
            if target == pm_id:
                self_weight += weight
        if total_weight <= 0.0:
            raise ValueError(f"PM {pm_id} has zero total draw weight")
        total += (total_weight - self_weight) / total_weight
    return total / len(regions)
