"""Analytic link-load model — the paper's bisection argument, executable.

The paper reasons about scalability through bandwidth: a hierarchical
ring's global links have constant capacity while demand grows with
system size, so "up to three local rings can be sustained" (Section 3).
This module computes that reasoning exactly, for any topology and
workload:

* enumerate every (source, destination) pair with its M-MRP probability
  (uniform within the source's locality region);
* walk the deterministic route both ways, counting request and response
  flits over every channel;
* scale by the per-processor miss rate ``C`` to get expected
  flits/cycle per link — directly comparable to a link's capacity
  (1 flit/cycle, or 2 on a double-speed global ring).

At low load the prediction matches the simulator's measured channel
counters (tested); at high load it predicts *demand*, so a level whose
predicted load exceeds capacity is exactly a saturated level.  The
test suite uses it to verify the paper's "three local rings" design
rule analytically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.channel import Channel
from ..core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    WorkloadConfig,
)
from ..core.errors import SimulationError
from ..core.packet import Packet, PacketType
from ..core.pm import MetricsHub
from ..mesh.network import MeshNetwork
from ..mesh.routing import ecube_path
from ..ring.network import HierarchicalRingNetwork
from ..workload.mmrp import mesh_region, ring_region


@dataclass
class LinkLoadReport:
    """Expected flits/cycle per channel, with per-level aggregates."""

    loads: dict[str, float]  # channel name -> expected flits/cycle
    capacity: dict[str, float]  # channel name -> flit opportunities/cycle
    klass_of: dict[str, str]

    def peak_load(self, level: str | None = None) -> float:
        candidates = [
            load
            for name, load in self.loads.items()
            if level is None or self.klass_of[name] == level
        ]
        return max(candidates) if candidates else 0.0

    def mean_load(self, level: str | None = None) -> float:
        candidates = [
            load
            for name, load in self.loads.items()
            if level is None or self.klass_of[name] == level
        ]
        return sum(candidates) / len(candidates) if candidates else 0.0

    def peak_utilization(self, level: str | None = None) -> float:
        """Peak predicted demand as a fraction of link capacity."""
        best = 0.0
        for name, load in self.loads.items():
            if level is not None and self.klass_of[name] != level:
                continue
            best = max(best, load / self.capacity[name])
        return best

    def saturated_levels(self, threshold: float = 1.0) -> list[str]:
        levels = sorted({self.klass_of[name] for name in self.loads})
        return [
            level for level in levels if self.peak_utilization(level) >= threshold
        ]


def _expected_flits_per_transaction(geometry, read_fraction: float) -> tuple[float, float]:
    """(request, response) expected flit counts for one transaction."""
    header = geometry.header_flits
    data_packet = geometry.cl_packet_flits
    request = read_fraction * header + (1 - read_fraction) * data_packet
    response = read_fraction * data_packet + (1 - read_fraction) * header
    return request, response


def ring_walk_channels(
    network: HierarchicalRingNetwork, source: int, destination: int
) -> list[Channel]:
    """Channels crossed by a packet from *source* to *destination*.

    Follows the actual network objects: each port's classifier decides
    where the packet goes next, exactly as the simulator would route it
    (an independent check of the zero-load path-length model).
    """
    if source == destination:
        return []
    # Map each receiving buffer to the port that forwards from it next.
    forwarder_of_buffer = {}
    for nic in network.nics:
        forwarder_of_buffer[nic.transit_buffer] = nic
    for iri in network.iris.values():
        forwarder_of_buffer[iri.lower_port.transit_buffer] = iri.lower_port
        forwarder_of_buffer[iri.upper_port.transit_buffer] = iri.upper_port
        forwarder_of_buffer[iri.up_req] = iri.upper_port
        forwarder_of_buffer[iri.up_resp] = iri.upper_port
        forwarder_of_buffer[iri.down_req] = iri.lower_port
        forwarder_of_buffer[iri.down_resp] = iri.lower_port

    probe = Packet(
        PacketType.READ_REQUEST, source, destination, 1,
        transaction_id=0, issue_cycle=0,
    )
    port = network.nics[source]
    channels: list[Channel] = []
    sink = network.pms[destination].in_queue
    for __ in range(10_000):
        channels.append(port.out_channel)
        landing = port.downstream.classify(probe)
        if landing is sink:
            return channels
        port = forwarder_of_buffer[landing]
    raise SimulationError(f"route {source}->{destination} did not terminate")


def ring_link_loads(
    config: RingSystemConfig, workload: WorkloadConfig | None = None
) -> LinkLoadReport:
    """Expected per-link flit load for a hierarchical ring system."""
    workload = (workload or WorkloadConfig()).validate()
    config.validate()
    metrics = MetricsHub()
    network = HierarchicalRingNetwork(config, workload, metrics, seed=1)
    processors = network.spec.processors
    request_flits, response_flits = _expected_flits_per_transaction(
        config.geometry, workload.read_fraction
    )

    loads = {channel.name: 0.0 for channel in network.channels}
    capacity = {channel.name: float(channel.speed) for channel in network.channels}
    klass_of = {channel.name: channel.klass for channel in network.channels}

    for source in range(processors):
        region = ring_region(source, processors, workload.locality)
        per_target_rate = workload.miss_rate / len(region)
        for destination in region:
            if destination == source:
                continue
            for channel in ring_walk_channels(network, source, destination):
                loads[channel.name] += per_target_rate * request_flits
            for channel in ring_walk_channels(network, destination, source):
                loads[channel.name] += per_target_rate * response_flits
    return LinkLoadReport(loads, capacity, klass_of)


def mesh_link_loads(
    config: MeshSystemConfig, workload: WorkloadConfig | None = None
) -> LinkLoadReport:
    """Expected per-link flit load for a 2D mesh under e-cube routing."""
    workload = (workload or WorkloadConfig()).validate()
    config.validate()
    metrics = MetricsHub()
    network = MeshNetwork(config, workload, metrics, seed=1)
    shape = network.shape
    request_flits, response_flits = _expected_flits_per_transaction(
        config.geometry, workload.read_fraction
    )

    # name channels by (node, direction) as the builder does.
    channel_by_hop: dict[tuple[int, int], Channel] = {}
    for node in range(shape.processors):
        for direction, neighbor in shape.neighbors(node).items():
            for channel in network.channels:
                if channel.name == f"mesh.link{node}{direction}":
                    channel_by_hop[(node, neighbor)] = channel

    loads = {channel.name: 0.0 for channel in network.channels}
    capacity = {channel.name: 1.0 for channel in network.channels}
    klass_of = {channel.name: "mesh" for channel in network.channels}

    for source in range(shape.processors):
        region = mesh_region(source, shape.side, workload.locality)
        per_target_rate = workload.miss_rate / len(region)
        for destination in region:
            if destination == source:
                continue
            forward = ecube_path(shape, source, destination)
            backward = ecube_path(shape, destination, source)
            for here, there in zip(forward, forward[1:]):
                loads[channel_by_hop[(here, there)].name] += (
                    per_target_rate * request_flits
                )
            for here, there in zip(backward, backward[1:]):
                loads[channel_by_hop[(here, there)].name] += (
                    per_target_rate * response_flits
                )
    return LinkLoadReport(loads, capacity, klass_of)


def max_sustainable_children(
    cache_line_bytes: int,
    workload: WorkloadConfig | None = None,
    levels: int = 2,
    global_ring_speed: int = 1,
    max_children: int = 8,
    knee_tolerance: float = 1.3,
) -> int:
    """Largest top-level fan-out at or before the global-ring knee.

    Reproduces the paper's design rule analytically: with R=1.0 and
    C=0.04, a normal-speed global ring sustains three lower-level
    rings; a double-speed one, five (Sections 3 and 6).

    ``knee_tolerance`` encodes that the paper's "sustainable" operating
    points sit *at* the knee, not below it: open-loop demand at three
    local rings is 1.3-1.6x the global ring's raw capacity (its
    measured utilization is 90-100% in Figure 8) and the blocking limit
    ``T`` throttles the excess.  The default is calibrated on the
    paper's 32-byte-line configuration; the exact knee ratio varies a
    few tenths with cache line size, so treat the returned fan-out as
    the knee location, not a hard feasibility bound.
    """
    from ..ring.topology import SINGLE_RING_MAX

    workload = workload or WorkloadConfig()
    local = SINGLE_RING_MAX[cache_line_bytes]
    inner = (3,) * (levels - 2)
    sustained = 0
    for fan in range(2, max_children + 1):
        topology = (fan, *inner, local)
        config = RingSystemConfig(
            topology=topology,
            cache_line_bytes=cache_line_bytes,
            global_ring_speed=global_ring_speed,
        )
        report = ring_link_loads(config, workload)
        if report.peak_utilization("global") <= knee_tolerance:
            sustained = fan
        else:
            break
    return sustained
