"""Dependency-free rendering of sweep results.

Two renderers for :class:`~repro.analysis.sweeps.SweepResult`:

* :func:`ascii_chart` — a terminal line chart (one marker per series)
  for quick looks at experiment output;
* :func:`render_svg` — a standalone SVG line chart with axes, ticks and
  a legend, written by the CLI's ``--plot`` option.  Pure string
  assembly: no matplotlib, nothing to install.

Both share the same linear-scale projection helpers; series colors and
markers are assigned in registration order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from xml.sax.saxutils import escape

from .sweeps import Series, SweepResult

MARKERS = "ox+*#@%&"

#: Colorblind-safe categorical palette (Okabe-Ito).
PALETTE = (
    "#0072B2", "#D55E00", "#009E73", "#CC79A7",
    "#E69F00", "#56B4E9", "#F0E442", "#000000",
)


@dataclass(frozen=True)
class _Extent:
    x_min: float
    x_max: float
    y_min: float
    y_max: float

    @classmethod
    def of(cls, series: list[Series]) -> "_Extent | None":
        xs = [x for s in series for x in s.xs]
        ys = [y for s in series for y in s.ys if not math.isnan(y)]
        if not xs or not ys:
            return None
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        if x_min == x_max:
            x_min, x_max = x_min - 1, x_max + 1
        if y_min == y_max:
            y_min, y_max = y_min - 1, y_max + 1
        return cls(x_min, x_max, 0.0 if y_min > 0 else y_min, y_max)

    def fx(self, x: float) -> float:
        return (x - self.x_min) / (self.x_max - self.x_min)

    def fy(self, y: float) -> float:
        return (y - self.y_min) / (self.y_max - self.y_min)


def _tick_values(low: float, high: float, count: int = 5) -> list[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        return [low]
    raw_step = (high - low) / max(count - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 2.5, 5, 10):
        step = multiple * magnitude
        if step >= raw_step:
            break
    first = math.ceil(low / step) * step
    ticks = []
    value = first
    while value <= high + 1e-9:
        ticks.append(round(value, 10))
        value += step
    return ticks or [low]


# ----------------------------------------------------------------------
# ASCII
# ----------------------------------------------------------------------
def ascii_chart(result: SweepResult, width: int = 72, height: int = 20) -> str:
    """Render all series as a character-grid line chart."""
    populated = [s for s in result.series.values() if s.xs]
    extent = _Extent.of(populated)
    lines = [result.title]
    if extent is None:
        lines.append("(no data)")
        return "\n".join(lines)

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(populated):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in zip(series.xs, series.ys):
            if math.isnan(y):
                continue
            column = round(extent.fx(x) * (width - 1))
            row = height - 1 - round(extent.fy(y) * (height - 1))
            grid[row][column] = marker

    y_label_width = max(len(f"{extent.y_max:.0f}"), len(f"{extent.y_min:.0f}"))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{extent.y_max:>{y_label_width}.0f}"
        elif row_index == height - 1:
            label = f"{extent.y_min:>{y_label_width}.0f}"
        else:
            label = " " * y_label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(
        " " * y_label_width
        + " +"
        + "-" * width
    )
    lines.append(
        " " * y_label_width
        + f"  {extent.x_min:<10g}{result.x_label:^{max(width - 20, 1)}}{extent.x_max:>8g}"
    )
    for index, series in enumerate(populated):
        lines.append(f"  {MARKERS[index % len(MARKERS)]} {series.name}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# SVG
# ----------------------------------------------------------------------
def render_svg(
    result: SweepResult,
    width: int = 720,
    height: int = 440,
) -> str:
    """Render all series as a standalone SVG line chart."""
    margin_left, margin_right = 64, 16
    margin_top, margin_bottom = 40, 48
    legend_height = 18 * max(1, len(result.series))
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    populated = [s for s in result.series.values() if s.xs]
    extent = _Extent.of(populated)

    def px(x: float) -> float:
        return margin_left + extent.fx(x) * plot_w

    def py(y: float) -> float:
        return margin_top + (1.0 - extent.fy(y)) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height + legend_height}" '
        f'viewBox="0 0 {width} {height + legend_height}">',
        f'<rect width="{width}" height="{height + legend_height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14">{escape(result.title)}</text>',
    ]

    if extent is None:
        parts.append(
            f'<text x="{width / 2}" y="{height / 2}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="12">(no data)</text></svg>'
        )
        return "".join(parts)

    # Axes and ticks.
    axis = (
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
        f'y2="{margin_top + plot_h}" stroke="black"/>'
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" stroke="black"/>'
    )
    parts.append(axis)
    for tick in _tick_values(extent.x_min, extent.x_max):
        x = px(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_top + plot_h}" x2="{x:.1f}" '
            f'y2="{margin_top + plot_h + 5}" stroke="black"/>'
            f'<text x="{x:.1f}" y="{margin_top + plot_h + 18}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="10">'
            f"{tick:g}</text>"
        )
    for tick in _tick_values(extent.y_min, extent.y_max):
        y = py(tick)
        parts.append(
            f'<line x1="{margin_left - 5}" y1="{y:.1f}" x2="{margin_left}" '
            f'y2="{y:.1f}" stroke="black"/>'
            f'<text x="{margin_left - 8}" y="{y + 3:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{tick:g}</text>'
        )
    parts.append(
        f'<text x="{margin_left + plot_w / 2}" y="{height - 8}" '
        f'text-anchor="middle" font-family="sans-serif" font-size="12">'
        f"{escape(result.x_label)}</text>"
        f'<text x="14" y="{margin_top + plot_h / 2}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="12" '
        f'transform="rotate(-90 14 {margin_top + plot_h / 2})">'
        f"{escape(result.y_label)}</text>"
    )

    # Series polylines + legend.
    for index, series in enumerate(populated):
        color = PALETTE[index % len(PALETTE)]
        points = " ".join(
            f"{px(x):.1f},{py(y):.1f}"
            for x, y in sorted(zip(series.xs, series.ys))
            if not math.isnan(y)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"/>'
        )
        for x, y in zip(series.xs, series.ys):
            if math.isnan(y):
                continue
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.6" '
                f'fill="{color}"/>'
            )
        legend_y = height + 14 + 18 * index
        parts.append(
            f'<line x1="{margin_left}" y1="{legend_y - 4}" '
            f'x2="{margin_left + 24}" y2="{legend_y - 4}" stroke="{color}" '
            f'stroke-width="2"/>'
            f'<text x="{margin_left + 30}" y="{legend_y}" '
            f'font-family="sans-serif" font-size="11">{escape(series.name)}</text>'
        )

    parts.append("</svg>")
    return "".join(parts)


def write_svg(result: SweepResult, path) -> None:
    """Render and write an SVG chart to *path*."""
    from pathlib import Path

    Path(path).write_text(render_svg(result))
