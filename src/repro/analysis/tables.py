"""Reproductions of the paper's two tables.

* **Table 1** compares NIC buffer memory requirements: a ring NIC has a
  single cache-line-sized ring buffer of 16-byte flits, while a mesh
  NIC has four input buffers (one per neighbor link) of 4-byte flits in
  depths of ``cl``, 4 or 1 flits.  This is pure arithmetic.
* **Table 2** gives the best hierarchical-ring topology for each
  (processor count, cache line size) under the no-locality workload.
  :func:`table2_topology_search` reproduces it by simulating every
  design-rule candidate hierarchy and ranking by measured latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import (
    CACHE_LINE_SIZES,
    MESH_FLIT_BYTES,
    RING_FLIT_BYTES,
    SimulationParams,
    WorkloadConfig,
    mesh_packet_geometry,
    ring_packet_geometry,
)
from ..ring.topology import PAPER_TABLE2, candidate_topologies
from ..runtime import run_points
from .sweeps import ring_point_spec


@dataclass(frozen=True)
class MemoryRequirementRow:
    """One Table 1 row: NIC transit-buffer bytes for a cache line size."""

    network: str
    cache_line_bytes: int
    ring_nic_bytes: int | None
    mesh_cl_bytes: int | None
    mesh_4flit_bytes: int | None
    mesh_1flit_bytes: int | None


def ring_nic_buffer_bytes(cache_line_bytes: int) -> int:
    """Ring NIC transit memory: one cl-sized ring buffer of 16B flits."""
    return ring_packet_geometry(cache_line_bytes).cl_packet_flits * RING_FLIT_BYTES


def mesh_nic_buffer_bytes(cache_line_bytes: int, buffer_flits: int | str) -> int:
    """Mesh NIC transit memory: four input buffers of 4B flits."""
    geometry = mesh_packet_geometry(cache_line_bytes)
    depth = geometry.cl_packet_flits if buffer_flits == "cl" else int(buffer_flits)
    return 4 * depth * MESH_FLIT_BYTES


def table1_memory_requirements() -> list[MemoryRequirementRow]:
    """All Table 1 rows for the four cache line sizes."""
    rows = []
    for cl in CACHE_LINE_SIZES:
        rows.append(
            MemoryRequirementRow(
                network="comparison",
                cache_line_bytes=cl,
                ring_nic_bytes=ring_nic_buffer_bytes(cl),
                mesh_cl_bytes=mesh_nic_buffer_bytes(cl, "cl"),
                mesh_4flit_bytes=mesh_nic_buffer_bytes(cl, 4),
                mesh_1flit_bytes=mesh_nic_buffer_bytes(cl, 1),
            )
        )
    return rows


def format_table1(rows: list[MemoryRequirementRow] | None = None) -> str:
    rows = rows if rows is not None else table1_memory_requirements()
    lines = [
        "Table 1: NIC buffer memory requirements (bytes)",
        f"{'cache line':>10} {'ring (cl)':>10} {'mesh cl':>8} {'mesh 4-flit':>12} {'mesh 1-flit':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row.cache_line_bytes:>9}B {row.ring_nic_bytes:>10} "
            f"{row.mesh_cl_bytes:>8} {row.mesh_4flit_bytes:>12} {row.mesh_1flit_bytes:>12}"
        )
    return "\n".join(lines)


@dataclass
class TopologyRanking:
    """Simulated latency ranking of candidate hierarchies for one size."""

    processors: int
    cache_line_bytes: int
    ranked: list[tuple[tuple[int, ...], float]]  # (branching, latency) best first

    @property
    def best(self) -> tuple[int, ...]:
        return self.ranked[0][0]

    @property
    def paper_choice(self) -> tuple[int, ...] | None:
        return PAPER_TABLE2.get(self.cache_line_bytes, {}).get(self.processors)

    def paper_choice_rank(self) -> int | None:
        """0-based rank of the paper's Table 2 entry in our measurement."""
        choice = self.paper_choice
        if choice is None:
            return None
        for rank, (branching, __) in enumerate(self.ranked):
            if branching == choice:
                return rank
        return None


def table2_topology_search(
    processors: int,
    cache_line_bytes: int,
    workload: WorkloadConfig | None = None,
    params: SimulationParams | None = None,
    max_levels: int = 4,
) -> TopologyRanking:
    """Simulate every design-rule hierarchy for one (P, cl) cell.

    The paper's Table 2 workload is R=1.0, C=0.04, T=4.
    """
    workload = workload or WorkloadConfig(locality=1.0, miss_rate=0.04, outstanding=4)
    params = params or SimulationParams(batch_cycles=1500, batches=4)
    candidates = candidate_topologies(processors, cache_line_bytes, max_levels=max_levels)
    specs = [
        ring_point_spec(branching, cache_line_bytes, workload, params)
        for branching in candidates
    ]
    measured = [
        (branching, result.avg_latency)
        for branching, result in zip(candidates, run_points(specs))
    ]
    measured.sort(key=lambda item: item[1])
    return TopologyRanking(processors, cache_line_bytes, measured)
