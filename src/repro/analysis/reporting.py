"""Markdown reporting over saved experiment results.

``python -m repro.experiments all --json results/`` leaves one JSON
file per experiment; :func:`summarize_results_dir` turns a directory of
them into the Markdown summary used in EXPERIMENTS.md — experiment id,
series count, sampled size range, latency/utilization extremes, and
any notes (cross-over points) the experiment recorded.  Exposed on the
CLI as ``--summarize DIR``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class ExperimentDigest:
    """Condensed view of one saved experiment result."""

    experiment_id: str
    scale: str
    title: str
    series_count: int
    x_range: tuple[float, float] | None
    y_range: tuple[float, float] | None
    notes: list[str] = field(default_factory=list)

    @classmethod
    def from_payload(
        cls, experiment_id: str, scale: str, payload: dict
    ) -> "ExperimentDigest":
        xs = [x for series in payload["series"].values() for x in series["x"]]
        ys = [
            y
            for series in payload["series"].values()
            for y in series["y"]
            if isinstance(y, (int, float)) and not math.isnan(y)
        ]
        return cls(
            experiment_id=experiment_id,
            scale=scale,
            title=payload.get("title", experiment_id),
            series_count=len(payload["series"]),
            x_range=(min(xs), max(xs)) if xs else None,
            y_range=(min(ys), max(ys)) if ys else None,
            notes=list(payload.get("notes", [])),
        )


def load_digests(results_dir: "str | Path") -> list[ExperimentDigest]:
    """Parse every ``<experiment>_<scale>.json`` in *results_dir*."""
    directory = Path(results_dir)
    digests = []
    for path in sorted(directory.glob("*.json")):
        stem = path.stem
        experiment_id, __, scale = stem.rpartition("_")
        if not experiment_id:
            experiment_id, scale = stem, "unknown"
        payload = json.loads(path.read_text())
        digests.append(ExperimentDigest.from_payload(experiment_id, scale, payload))
    digests.sort(key=lambda digest: _sort_key(digest.experiment_id))
    return digests


def _sort_key(experiment_id: str) -> tuple:
    digits = "".join(ch for ch in experiment_id if ch.isdigit())
    if experiment_id.startswith("table"):
        return (0, int(digits or 0), experiment_id)
    if experiment_id.startswith("fig"):
        return (1, int(digits or 0), experiment_id)
    return (2, 0, experiment_id)


def summarize_results_dir(results_dir: "str | Path") -> str:
    """A Markdown table plus per-experiment notes for a results dir."""
    digests = load_digests(results_dir)
    if not digests:
        return f"no experiment results found in {results_dir}"
    lines = [
        "| experiment | scale | series | sizes | y range | notes |",
        "|---|---|---|---|---|---|",
    ]
    for digest in digests:
        x_text = (
            f"{digest.x_range[0]:g}-{digest.x_range[1]:g}" if digest.x_range else "-"
        )
        y_text = (
            f"{digest.y_range[0]:.1f}-{digest.y_range[1]:.1f}"
            if digest.y_range
            else "-"
        )
        lines.append(
            f"| {digest.experiment_id} | {digest.scale} | {digest.series_count} "
            f"| {x_text} | {y_text} | {len(digest.notes)} |"
        )
    for digest in digests:
        if digest.notes:
            lines.append("")
            lines.append(f"**{digest.experiment_id}**")
            for note in digest.notes:
                lines.append(f"- {note}")
    return "\n".join(lines)
