"""Closed-form zero-load latency models.

These are *independent* re-derivations of what the simulator should
measure on an idle network; the test suite uses them the way the paper
used its Hector-prototype calibration (DESIGN.md §4).

Timing model being checked (one transfer = one cycle):

* a packet generated in cycle *t* enters the output queue in the same
  cycle and its head flit makes its first transfer in *t + 1*;
* the head flit needs one transfer per buffer stage on its path; the
  tail flit follows ``size - 1`` cycles behind at zero load;
* memory turns a fully received request into an injectable response
  ``memory_latency`` cycles later;
* latency is recorded in the cycle the response's tail flit reaches
  the requesting PM's input queue.

Hence a round trip costs::

    X_req + (s_req - 1) + memory_latency + X_resp + (s_resp - 1)

where ``X`` is the head's transfer count each way.  On a ring a packet
is classified directly into the destination PM's input queue on its
final hop, so ``X`` equals the number of ring links traversed (IRIs
count as one stage like any node).  On a mesh, ejection is a separate
crossbar pass: ``X = hops + 1``.
"""

from __future__ import annotations

from ..core.config import MeshSystemConfig, PacketGeometry, RingSystemConfig
from ..mesh.topology import MeshShape
from ..ring.topology import HierarchySpec


def ring_path_length(spec: HierarchySpec, source: int, destination: int) -> int:
    """Buffer-stage transfers from *source*'s NIC to *destination*'s sink.

    Walks the unique hierarchical route: around the source's local ring
    to its IRI, up to the common-ancestor ring, around it to the
    destination subtree's IRI, and down.  Ring member order matches the
    network builder: the parent IRI at position 0, then children in
    index order.
    """
    if source == destination:
        return 0
    src = spec.address_of(source)
    dst = spec.address_of(destination)
    levels = spec.levels

    common = 0
    while src[common] == dst[common]:
        common += 1
    # The route ascends to the ring at depth `common` (their lowest
    # common ancestor ring).
    hops = 0

    def ring_size(depth: int) -> int:
        fan = spec.branching[depth]
        return fan + (1 if depth > 0 else 0)

    def position(depth: int, child_index: int) -> int:
        """Ring position of child *child_index* on a ring at *depth*."""
        return child_index + (1 if depth > 0 else 0)

    # Ascend: from the source NIC up to the common-ancestor ring.  At
    # each ring below the ancestor, travel from the entry position to
    # the parent IRI (position 0).
    entry = position(levels - 1, src[levels - 1])  # source NIC position
    for depth in range(levels - 1, common, -1):
        # Travel to the parent IRI at position 0; entry is always >= 1
        # below the ancestor, so the modulo never degenerates to zero.
        hops += (0 - entry) % ring_size(depth)
        entry = position(depth - 1, src[depth - 1])

    # Across the ancestor ring: from the entry position (the source-side
    # child's IRI upper port, or the source NIC on a single ring) to the
    # destination-side child (IRI upper port or destination NIC).
    hops += (position(common, dst[common]) - entry) % ring_size(common)

    # Descend: the hop into each IRI upper port placed the packet in its
    # down queue (position 0 of the lower ring); travel onward to the
    # next exit.
    for depth in range(common + 1, levels):
        hops += position(depth, dst[depth]) % ring_size(depth)

    return hops


def ring_zero_load_round_trip(
    config: RingSystemConfig, source: int, destination: int, is_read: bool = True
) -> int:
    """Zero-load round-trip latency for one remote access on a ring system."""
    spec = HierarchySpec.parse(config.topology)
    geometry = config.geometry
    s_req = geometry.header_flits if is_read else geometry.cl_packet_flits
    s_resp = geometry.cl_packet_flits if is_read else geometry.header_flits
    forward = ring_path_length(spec, source, destination)
    backward = ring_path_length(spec, destination, source)
    return forward + backward + s_req + s_resp - 2 + config.memory_latency


def single_ring_round_trip(config: RingSystemConfig) -> int:
    """Zero-load round trip on a single ring — independent of the pair.

    Request and response hops sum to one full loop (N links), and read
    and write transactions serialize the same total flit count, so::

        N + cl_packet + header - 2 + memory_latency
    """
    spec = HierarchySpec.parse(config.topology)
    if spec.levels != 1:
        raise ValueError("single_ring_round_trip requires a 1-level topology")
    geometry = config.geometry
    return (
        spec.processors
        + geometry.cl_packet_flits
        + geometry.header_flits
        - 2
        + config.memory_latency
    )


def mesh_zero_load_round_trip(
    config: MeshSystemConfig, source: int, destination: int, is_read: bool = True
) -> int:
    """Zero-load round-trip latency for one remote access on a mesh."""
    shape = MeshShape(config.side)
    geometry = config.geometry
    s_req = geometry.header_flits if is_read else geometry.cl_packet_flits
    s_resp = geometry.cl_packet_flits if is_read else geometry.header_flits
    distance = shape.hop_distance(source, destination)
    return 2 * (distance + 1) + s_req + s_resp - 2 + config.memory_latency


def mesh_average_zero_load(config: MeshSystemConfig, geometry: PacketGeometry | None = None) -> float:
    """Mean zero-load read round trip over all distinct pairs."""
    shape = MeshShape(config.side)
    geometry = geometry or config.geometry
    avg_d = shape.average_distance()
    return (
        2 * (avg_d + 1)
        + geometry.header_flits
        + geometry.cl_packet_flits
        - 2
        + config.memory_latency
    )
