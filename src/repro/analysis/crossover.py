"""Cross-over point detection between two latency curves.

The paper defines "the cross-over point as the number of nodes where
the switch over occurs" between the ring and mesh latency curves
(Section 5.1).  Our curves are sampled at each network's natural system
sizes (ring hierarchies and perfect squares), so the crossing is found
on linear interpolations of the two sampled curves.
"""

from __future__ import annotations

import math

from .sweeps import Series


def interpolate(series: Series, x: float) -> float:
    """Piecewise-linear interpolation of a sampled series at *x*."""
    points = sorted(zip(series.xs, series.ys))
    if not points:
        raise ValueError(f"series {series.name!r} is empty")
    if x <= points[0][0]:
        return points[0][1]
    if x >= points[-1][0]:
        return points[-1][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= x <= x1:
            if x1 == x0:
                return y0
            fraction = (x - x0) / (x1 - x0)
            return y0 + fraction * (y1 - y0)
    raise AssertionError("unreachable")  # pragma: no cover


def crossover_point(lower_first: Series, higher_first: Series) -> float | None:
    """Smallest x where *lower_first* stops beating *higher_first*.

    Returns ``None`` when *lower_first* stays below across the whole
    common range (the paper's "cross-over above 121 nodes" case), and
    the left edge of the range if it never wins at all.
    """
    xs = sorted(
        set(lower_first.xs) | set(higher_first.xs)
    )
    lo = max(min(lower_first.xs), min(higher_first.xs))
    hi = min(max(lower_first.xs), max(higher_first.xs))
    xs = [x for x in xs if lo <= x <= hi]
    if len(xs) < 2:
        return None

    def difference(x: float) -> float:
        return interpolate(lower_first, x) - interpolate(higher_first, x)

    previous_x = xs[0]
    previous_d = difference(previous_x)
    if previous_d > 0:
        return previous_x  # never ahead
    for x in xs[1:]:
        d = difference(x)
        if d > 0:
            # Bisect the sign change on the linear segment.
            if math.isclose(d, previous_d):
                return x
            fraction = -previous_d / (d - previous_d)
            return previous_x + fraction * (x - previous_x)
        previous_x, previous_d = x, d
    return None
