"""Parameter-sweep helpers shared by the experiment modules.

The paper's figures are latency-vs-system-size and utilization-vs-size
curves for families of configurations.  This module provides:

* :class:`Series` / :class:`SweepResult` — the tabular results the
  experiment harness renders and the tests assert on;
* topology growth schedules — which hierarchy the paper would build at
  each system size when sweeping "Number of Nodes" (single rings grow
  node by node; multi-level hierarchies add children to the top ring,
  keeping lower levels at their design-rule maxima);
* one-call runners that map a list of system sizes to simulated
  latency/utilization points.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from ..core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from ..core.simulation import SimulationResult
from ..ring.topology import SINGLE_RING_MAX
from ..runtime import PointSpec, run_point

#: Tolerance for matching sampled x values: sweep xs are node counts or
#: small parameter values, so float noise is at machine-epsilon scale.
_X_REL_TOL = 1e-9
_X_ABS_TOL = 1e-9


def _x_close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_X_REL_TOL, abs_tol=_X_ABS_TOL)


@dataclass
class Series:
    """One labelled curve: y(x) plus the raw results behind each point."""

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)
    meta: list[dict] = field(default_factory=list)

    def add(self, x: float, y: float, **meta) -> None:
        self.xs.append(x)
        self.ys.append(y)
        self.meta.append(meta)

    def index_of(self, x: float) -> int | None:
        """Index of the sampled x closest-matching *x* within tolerance."""
        for index, sampled in enumerate(self.xs):
            if _x_close(sampled, x):
                return index
        return None

    def has_x(self, x: float) -> bool:
        return self.index_of(x) is not None

    def y_at(self, x: float) -> float:
        """y for a sampled x, matched within float tolerance.

        Raises :class:`ValueError` if no sampled x is within tolerance
        (exact ``list.index`` matching broke on xs that went through
        float arithmetic, e.g. locality fractions).
        """
        index = self.index_of(x)
        if index is None:
            raise ValueError(f"x={x!r} was not sampled in series {self.name!r}")
        return self.ys[index]

    def as_points(self) -> list[tuple[float, float]]:
        return list(zip(self.xs, self.ys))

    def is_nondecreasing(self, slack: float = 0.0) -> bool:
        """Whether the curve never drops by more than *slack* (relative)."""
        for previous, current in zip(self.ys, self.ys[1:]):
            if current < previous * (1.0 - slack):
                return False
        return True

    def first_saturated_x(self) -> float | None:
        """Smallest sampled x flagged ``saturated`` in the point meta.

        The CI-width convergence verdict: the lowest offered rate at
        which the simulation's latency interval stopped converging.
        ``None`` when no sampled point saturated.  Noisy on short
        (quick-scale) runs — prefer :meth:`knee_onset` for qualitative
        ordering claims.
        """
        candidates = [
            x for x, meta in zip(self.xs, self.meta) if meta.get("saturated")
        ]
        return min(candidates, default=None)

    def knee_onset(self, factor: float = 1.5) -> float | None:
        """First sampled x whose y exceeds *factor* times the low-x y.

        The classic NoC latency-knee saturation estimate: the curve's
        lowest-x point approximates zero-load latency, and the knee is
        wherever latency first blows past ``factor`` times it.  Stable
        where the CI-width flag (:meth:`first_saturated_x`) is noise on
        short runs.  ``None`` for empty/single-point series or curves
        that never cross the threshold.
        """
        if len(self.xs) < 2:
            return None
        order = sorted(range(len(self.xs)), key=lambda i: self.xs[i])
        base = self.ys[order[0]]
        for index in order[1:]:
            if self.ys[index] > factor * base:
                return self.xs[index]
        return None


@dataclass
class SweepResult:
    """A bundle of series, e.g. everything drawn in one paper figure."""

    title: str
    x_label: str
    y_label: str
    series: dict[str, Series] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def new_series(self, name: str) -> Series:
        if name in self.series:
            raise ValueError(f"duplicate series {name!r}")
        created = Series(name)
        self.series[name] = created
        return created

    def unconverged_points(self) -> list[str]:
        """Points whose simulation saturated without converging.

        Experiments stamp ``saturated=...`` into each point's series
        meta (from :attr:`SimulationResult.saturated`); this collects
        the flagged ones as human-readable descriptions so the CLI can
        fail a run whose numbers are not statistically trustworthy.
        """
        problems: list[str] = []
        for name, series in self.series.items():
            for x, meta in zip(series.xs, series.meta):
                if meta.get("saturated"):
                    problems.append(f"series {name!r} at {self.x_label}={x:g}")
        return problems

    def saturation_onsets(self, knee_factor: float = 1.5) -> dict[str, float | None]:
        """Per-series latency-knee saturation onset (:meth:`Series.knee_onset`)."""
        return {
            name: series.knee_onset(knee_factor)
            for name, series in self.series.items()
        }

    def format_table(self) -> str:
        """Render all series as one aligned text table (union of xs)."""
        all_xs: list[float] = []
        for x in sorted({x for s in self.series.values() for x in s.xs}):
            # Merge xs that differ only by float noise into one row.
            if not all_xs or not _x_close(all_xs[-1], x):
                all_xs.append(x)
        names = list(self.series)
        header = [self.x_label.ljust(12)] + [n.rjust(max(12, len(n))) for n in names]
        lines = [self.title, "  ".join(header)]
        for x in all_xs:
            row = [f"{x:<12g}"]
            for name in names:
                s = self.series[name]
                if s.has_x(x):
                    row.append(f"{s.y_at(x):>{max(12, len(name))}.1f}")
                else:
                    row.append(" " * max(12, len(name)))
            lines.append("  ".join(row))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "title": self.title,
                "x_label": self.x_label,
                "y_label": self.y_label,
                "series": {
                    name: {"x": s.xs, "y": s.ys} for name, s in self.series.items()
                },
                "notes": self.notes,
            },
            indent=2,
            sort_keys=True,
        )


# ----------------------------------------------------------------------
# topology growth schedules
# ----------------------------------------------------------------------
def single_ring_sizes(cache_line_bytes: int, max_nodes: int) -> list[int]:
    """Node counts for the single-ring sweep (paper Figure 6)."""
    base = [2, 4, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64]
    maximum = SINGLE_RING_MAX[cache_line_bytes]
    # Always include the design-rule maximum and its neighborhood.
    sizes = sorted(set(base + [maximum, maximum + 2, 2 * maximum]))
    return [n for n in sizes if 2 <= n <= max_nodes]


def growth_topologies(
    levels: int, cache_line_bytes: int, max_nodes: int, max_top_fan: int = 6
) -> list[tuple[int, tuple[int, ...]]]:
    """(nodes, branching) schedule for an *levels*-deep hierarchy sweep.

    Multi-level systems grow by adding children to the top ring while
    inner levels stay at the paper's design-rule maxima: local rings at
    :data:`SINGLE_RING_MAX` PMs and intermediate rings at 3 children.
    This is exactly how the paper walks Figures 7 and 9 across system
    sizes and is what exposes the bisection-bandwidth knee at 3 children
    on the top ring.
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    local = SINGLE_RING_MAX[cache_line_bytes]
    if levels == 1:
        return [(n, (n,)) for n in single_ring_sizes(cache_line_bytes, max_nodes)]
    inner = (3,) * (levels - 2)
    schedule = []
    for fan in range(2, max_top_fan + 1):
        branching = (fan, *inner, local)
        nodes = fan * (3 ** (levels - 2)) * local
        if nodes <= max_nodes:
            schedule.append((nodes, branching))
    return schedule


def hierarchy_sweep(
    levels: int, cache_line_bytes: int, max_nodes: int
) -> list[tuple[int, tuple[int, ...]]]:
    """Growth schedule including the smaller lower-level prefix systems.

    A 2-level sweep starts with the single-ring sizes, a 3-level sweep
    with the 2-level schedule, and so on — matching the paper's curves,
    which plot each hierarchy depth from small node counts upward.
    Prefix systems of lower depth are only used up to their design-rule
    capacity (a local ring's maximum, three local rings per level), so
    e.g. a 16-node 32B-line system is built as 2:8, not as a saturated
    16-node single ring.
    """
    local = SINGLE_RING_MAX[cache_line_bytes]
    schedule: list[tuple[int, tuple[int, ...]]] = []
    for depth in range(1, levels + 1):
        if depth < levels:
            cap = min(max_nodes, local * 3 ** (depth - 1))
        else:
            cap = max_nodes
        for nodes, branching in growth_topologies(depth, cache_line_bytes, cap):
            if all(nodes != existing for existing, __ in schedule):
                schedule.append((nodes, branching))
    schedule.sort(key=lambda item: item[0])
    return schedule


def mesh_sides(max_nodes: int, minimum_side: int = 2) -> list[int]:
    """Mesh edge lengths with ``side*side <= max_nodes`` (paper: 4..121)."""
    sides = []
    side = minimum_side
    while side * side <= max_nodes:
        sides.append(side)
        side += 1
    return sides


# ----------------------------------------------------------------------
# point runners
# ----------------------------------------------------------------------
# Sweep points are built as PointSpecs (with a deterministically derived
# per-point seed) and executed through repro.runtime, which adds
# parallel fan-out and the on-disk result cache.  The run_*_point
# helpers keep the old one-call signature for single points.
def ring_point_spec(
    topology: tuple[int, ...] | str,
    cache_line_bytes: int,
    workload: WorkloadConfig,
    params: SimulationParams,
    global_ring_speed: int = 1,
    memory_latency: int = 10,
) -> PointSpec:
    config = RingSystemConfig(
        topology=topology,
        cache_line_bytes=cache_line_bytes,
        global_ring_speed=global_ring_speed,
        memory_latency=memory_latency,
    )
    return PointSpec.of(config, workload, params)


def mesh_point_spec(
    side: int,
    cache_line_bytes: int,
    buffer_flits,
    workload: WorkloadConfig,
    params: SimulationParams,
    memory_latency: int = 10,
) -> PointSpec:
    config = MeshSystemConfig(
        side=side,
        cache_line_bytes=cache_line_bytes,
        buffer_flits=buffer_flits,
        memory_latency=memory_latency,
    )
    return PointSpec.of(config, workload, params)


def run_ring_point(
    topology: tuple[int, ...] | str,
    cache_line_bytes: int,
    workload: WorkloadConfig,
    params: SimulationParams,
    global_ring_speed: int = 1,
    memory_latency: int = 10,
) -> SimulationResult:
    return run_point(
        ring_point_spec(
            topology, cache_line_bytes, workload, params,
            global_ring_speed=global_ring_speed, memory_latency=memory_latency,
        )
    )


def run_mesh_point(
    side: int,
    cache_line_bytes: int,
    buffer_flits,
    workload: WorkloadConfig,
    params: SimulationParams,
    memory_latency: int = 10,
) -> SimulationResult:
    return run_point(
        mesh_point_spec(
            side, cache_line_bytes, buffer_flits, workload, params,
            memory_latency=memory_latency,
        )
    )
