"""Sweep harness, paper tables, and analytic models."""
