"""Graphviz DOT export of built networks.

``dot -Tsvg`` (or any Graphviz viewer) renders the exact simulated
structure: every NIC, IRI port and router, and every unidirectional
channel, labelled with its utilization class.  Handy when debugging a
topology or explaining the hierarchy/mesh wiring in a talk.
"""

from __future__ import annotations

from ..mesh.network import MeshNetwork
from ..ring.network import HierarchicalRingNetwork


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def ring_network_dot(network: HierarchicalRingNetwork) -> str:
    """DOT digraph of a hierarchical ring system."""
    lines = [
        "digraph hierarchical_ring {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="sans-serif", fontsize=10];',
    ]
    for nic in network.nics:
        lines.append(
            f"  {_quote(nic.name)} [label=\"{nic.name}\\nPM {nic.pm.pm_id}\", "
            f'style=filled, fillcolor="#cfe8ff"];'
        )
    for iri in network.iris.values():
        for port in (iri.lower_port, iri.upper_port):
            lines.append(
                f"  {_quote(port.name)} [style=filled, fillcolor=\"#ffe2c4\"];"
            )
        # Dashed tie showing the two ports belong to one IRI crossbar.
        lines.append(
            f"  {_quote(iri.lower_port.name)} -> {_quote(iri.upper_port.name)} "
            f'[dir=both, style=dashed, color="#999999", constraint=false];'
        )
    color = {"local": "#1f77b4", "intermediate": "#2ca02c", "global": "#d62728"}
    ports = list(network.nics)
    for iri in network.iris.values():
        ports.extend([iri.lower_port, iri.upper_port])
    for port in ports:
        channel = port.out_channel
        lines.append(
            f"  {_quote(port.name)} -> {_quote(port.downstream.name)} "
            f'[color="{color.get(channel.klass, "black")}", '
            f'label="{channel.klass}{"/2x" if channel.speed == 2 else ""}", '
            f"fontsize=8];"
        )
    lines.append("}")
    return "\n".join(lines)


def mesh_network_dot(network: MeshNetwork) -> str:
    """DOT digraph of a 2D mesh system (grid layout hints included)."""
    side = network.shape.side
    lines = [
        "digraph mesh {",
        '  node [shape=box, fontname="sans-serif", fontsize=10];',
        "  edge [arrowsize=0.6];",
    ]
    for router in network.routers:
        x, y = network.shape.coordinates(router.node)
        lines.append(
            f"  {_quote(router.name)} [label=\"R{router.node}\\n({x},{y})\", "
            f'pos="{x},{side - 1 - y}!", style=filled, fillcolor="#e4f0e4"];'
        )
    for router in network.routers:
        for direction, neighbor_id in network.shape.neighbors(router.node).items():
            lines.append(
                f"  {_quote(router.name)} -> "
                f"{_quote(network.routers[neighbor_id].name)} "
                f'[label="{direction}", fontsize=8];'
            )
    lines.append("}")
    return "\n".join(lines)


def network_dot(network) -> str:
    """Dispatch on network type."""
    if isinstance(network, HierarchicalRingNetwork):
        return ring_network_dot(network)
    if isinstance(network, MeshNetwork):
        return mesh_network_dot(network)
    raise TypeError(f"cannot render {type(network).__name__}")
