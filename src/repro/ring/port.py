"""The generic ring node port.

Every position on a ring — a processing module's NIC or one side of an
inter-ring interface — behaves identically at the flit level
(Section 2.1):

* it owns a *transit* (ring) buffer holding packets passing through;
* it owns lower-priority *injection* sources (the PM's response and
  request output queues at a NIC; the down or up queues at an IRI);
* each cycle it sends at most one flit onto its output link, giving
  strict priority to transit packets, then responses, then requests,
  at packet granularity (wormhole: once a packet's head is sent the
  output is held until its tail passes);
* arriving packets are *classified* by the receiving port: continue on
  the ring (transit buffer), eject (PM input queue), or change rings
  (up/down queue) — decided on the head flit and pinned on the channel
  for the body flits.

:class:`RingPort` implements all of that; NICs and IRIs differ only in
their classifier and in which buffers they wire up.
"""

from __future__ import annotations

from typing import Callable

from ..core.buffers import FlitBuffer
from ..core.channel import Channel
from ..core.engine import CommitHandler, Component, Engine, Transfer
from ..core.errors import SimulationError
from ..core.packet import Flit, Packet

#: A classifier maps an arriving packet to the receiving buffer.
Classifier = Callable[[Packet], FlitBuffer]


class RingPort(Component):
    """One node position on a unidirectional ring."""

    #: Both switching modes only touch state at packet boundaries
    #: (counters and wormhole acquire on the head, release on the
    #: tail); body flits are pure data movement.
    commit_on_head_tail_only = True

    def __init__(
        self,
        name: str,
        transit_buffer: FlitBuffer,
        injection_sources: list[FlitBuffer],
        classify: Classifier,
        speed: int = 1,
        transit_first: bool = True,
        slotted: bool = False,
    ):
        self.name = name
        self.transit_buffer = transit_buffer
        self.injection_sources = injection_sources
        self.classify = classify
        self.speed = speed
        #: The paper gives transit packets strict priority; False is the
        #: injection-first ablation (see benchmarks/bench_ablations.py).
        self.transit_first = transit_first
        #: Slotted (non-blocking) switching: flits move as independently
        #: routed slots; the station interleaves passing slots with
        #: local insertions (register-insertion style) so neither can
        #: starve the other.
        self.slotted = slotted
        #: Send arbitration order, precomputed: priority never changes
        #: after construction and propose() walks it every active cycle.
        self.sources_by_priority: tuple[FlitBuffer, ...] = (
            (transit_buffer, *injection_sources)
            if transit_first
            else (*injection_sources, transit_buffer)
        )
        self._insertion_turn = False
        # Wired by the network builder:
        self.out_channel: Channel | None = None
        self.in_channel: Channel | None = None
        self.downstream: "RingPort | None" = None
        # Wormhole send state: the packet currently holding the output
        # link and the buffer its flits stream from.
        self._sending: Packet | None = None
        self._sending_source: FlitBuffer | None = None
        # Compiled-datapath twin of the open route: the dense engine ids
        # of the (source, dest) pair, stashed by the head commit so the
        # continuation proposals of the packet's body flits skip the id
        # resolution entirely.  Only meaningful while `_sending` is set.
        self._cont_src = -1
        self._cont_dst = -1
        # Diagnostics
        self.packets_sent = 0
        self.transit_packets_sent = 0

    # ------------------------------------------------------------------
    def connect(self, downstream: "RingPort", channel: Channel) -> None:
        self.downstream = downstream
        self.out_channel = channel
        downstream.in_channel = channel

    # ------------------------------------------------------------------
    # active-set scheduling contract (see core.engine.Component)
    # ------------------------------------------------------------------
    def propose_wake_buffers(self) -> tuple[FlitBuffer, ...]:
        return self.sources_by_priority

    def may_sleep_propose(self) -> bool:
        """Idle iff no open wormhole send and every send buffer is empty."""
        if self._sending is not None:
            return False
        for source in self.sources_by_priority:
            if source._flits:
                return False
        return True

    def next_update_cycle(self, engine: Engine) -> int | None:
        return None  # ports have no update(); all work happens in propose()

    @property
    def is_mid_packet(self) -> bool:
        """True while a wormhole send holds this port's output link.

        Between a head flit's commit and the matching tail's commit the
        port streams body flits and ignores send priority; the runtime
        auditor (:mod:`repro.audit`) uses this to scope its
        transit-over-injection check to fresh arbitration decisions, and
        to require all sends closed at quiescence.
        """
        return self._sending is not None

    # ------------------------------------------------------------------
    def propose(self, engine: Engine) -> None:
        if self.downstream is None or self.out_channel is None:
            raise SimulationError(f"ring port {self.name!r} is not wired")
        if self.slotted:
            self._propose_slotted(engine)
            return
        flit, source = self._pick_flit()
        if flit is None or source is None:
            return
        if flit.is_head:
            dest = self.downstream.classify(flit.packet)
        else:
            dest = self.out_channel.incoming_route
            if dest is None:
                raise SimulationError(
                    f"{self.name}: body flit of {flit.packet!r} has no open route"
                )
        engine.propose(flit, source, dest, self.out_channel, self)

    def _propose_slotted(self, engine: Engine) -> None:
        """Slotted switching: every flit is an independently routed slot.

        This is how the slotted hierarchical-ring machines (Hector,
        NUMAchine) actually move data — a packet's slots need not be
        contiguous, the destination reassembles — which is what makes
        the switching non-blocking: any single slot can always either
        advance, drop into a change queue with a free entry, or
        recirculate.  It also means a packet longer than a ring's
        station count simply wraps, where wormhole contiguity would
        corrupt itself.

        Arbitration is register-insertion style: transit slots and
        local insertions alternate whenever both are waiting (a passing
        slot parks in the packet-sized insertion buffer for the one
        cycle an insertion takes).  Strict transit priority would let
        an IRI's own recirculating slots starve its change queues into
        a stable livelock; strict insertion priority would stall the
        ring.  The alternation bound keeps both draining.
        """
        transit_flit = self.transit_buffer.peek()
        insertion_flit = None
        insertion_source = None
        for candidate in self.injection_sources:
            insertion_flit = candidate.peek()
            if insertion_flit is not None:
                insertion_source = candidate
                break

        if transit_flit is not None and (
            insertion_flit is None
            or not self._insertion_turn
            or self.transit_buffer.is_full
        ):
            flit, source = transit_flit, self.transit_buffer
            self._insertion_turn = True
        elif insertion_flit is not None:
            flit, source = insertion_flit, insertion_source
            self._insertion_turn = False
        else:
            return
        dest = self.downstream.classify(flit.packet)
        engine.propose(flit, source, dest, self.out_channel, self)

    def compiled_propose_handler(
        self, engine: Engine
    ) -> "Callable[[Engine], None] | None":
        """Flat wormhole propose for the compiled datapath.

        A finalize-built closure equivalent to :meth:`propose` +
        ``engine.propose``, with the call tower and the engine's
        per-proposal structural checks flattened away.  The elisions are
        justified by this port's invariants (and guarded by the
        scheduler-equivalence matrix, since the object datapath keeps
        validating):

        * *head-of-buffer*: the offered flit **is** ``source._flits[0]``
          — the arbitration below peeks it from there;
        * *one drain per source*: each buffer is read by exactly one
          port, and a port writes at most one row per subcycle;
        * *one fill per bounded destination*: each receive buffer is
          fed by exactly one upstream link.

        Slotted ports keep the generic path — their per-slot
        classification and insertion-turn arbitration is not on the
        saturated hot path the compiled loop targets — as do unwired
        ports, so mis-wiring still raises through :meth:`propose`.  A
        port already mid-packet at finalize (only possible when reused
        across engines) also falls back: its stashed continuation ids
        would index the previous engine's columns.
        """
        if (
            self.slotted
            or self.downstream is None
            or self.out_channel is None
            or self._sending is not None
        ):
            return None
        port = self
        name = self.name
        classify = self.downstream.classify
        chan = engine.compiled_channel_id(self.out_channel)
        owner_id = self._engine_index
        # Send buffers are fixed at construction: bake their ids into
        # the arbitration walk so the hot path never re-resolves them.
        sources = tuple(
            (buffer, engine.compiled_buffer_id(buffer))
            for buffer in self.sources_by_priority
        )
        buf_objs = engine._buf_objs
        buf_cap = engine._buf_cap
        prop_of_src = engine._prop_of_src
        prop_of_dst = engine._prop_of_dst
        p_flit = engine._p_flit
        p_src = engine._p_src
        p_dst = engine._p_dst
        p_chan = engine._p_chan
        p_owner = engine._p_owner
        p_live = engine._p_live
        p_srcbuf = engine._p_srcbuf
        p_n = engine._p_n
        work = engine._work
        register_buffer = engine._register_buffer

        def propose_compiled(_engine: Engine) -> None:
            # --- arbitration: mirror of propose()/_pick_flit() ---
            sending = port._sending
            if sending is not None:
                source = port._sending_source
                if source is None:
                    return
                flits = source._flits
                if not flits:
                    return  # bubble: next flit not yet arrived
                flit = flits[0]
                if flit.packet is not sending:
                    raise SimulationError(
                        f"{name}: buffer {source.name!r} interleaved packets "
                        f"({flit.packet!r} inside {sending!r})"
                    )
                # Continuation flits are never heads (the head commit is
                # what set `_sending`), so the classify branch is dead
                # here and the endpoint ids are the ones the head commit
                # stashed — the compiled twin of the object path's
                # `out_channel.incoming_route` pin.
                src = port._cont_src
                dst = port._cont_dst
                dest = buf_objs[dst]
            else:
                flit = None
                for source, src in sources:
                    queued = source._flits
                    if queued:
                        flit = queued[0]
                        break
                if flit is None:
                    return
                if not flit.is_head:
                    raise SimulationError(
                        f"{name}: idle output but buffer {source.name!r} "
                        f"heads with mid-packet flit {flit!r}"
                    )
                dest = classify(flit.packet)
                dst = dest._buf_id
                if dst < 0 or len(buf_objs) <= dst or buf_objs[dst] is not dest:
                    dst = register_buffer(dest)
            # --- row write: mirror of Engine.propose_fast ---
            n, base = p_n
            if n == len(p_flit):
                p_flit.append(flit)
                p_src.append(src)
                p_dst.append(dst)
                p_chan.append(chan)
                p_owner.append(owner_id)
                p_live.append(1)
                p_srcbuf.append(None)
            else:
                p_flit[n] = flit
                p_src[n] = src
                p_dst[n] = dst
                p_chan[n] = chan
                p_owner[n] = owner_id
                p_live[n] = 1
            prop_of_src[src] = base + n
            cap = buf_cap[dst]
            if cap >= 0:
                prop_of_dst[dst] = base + n
                if len(dest._flits) >= cap:
                    work.append(n)  # full dest: revocation candidate
            p_n[0] = n + 1

        return propose_compiled

    def _pick_flit(self):
        """Choose the flit to offer to the output link this cycle."""
        if self._sending is not None:
            source = self._sending_source
            flit = source.peek() if source is not None else None
            if flit is None:
                return None, None  # bubble: next flit not yet arrived
            if flit.packet is not self._sending:
                raise SimulationError(
                    f"{self.name}: buffer {source.name!r} interleaved packets "
                    f"({flit.packet!r} inside {self._sending!r})"
                )
            return flit, source
        for source in self.sources_by_priority:
            flit = source.peek()
            if flit is None:
                continue
            if not flit.is_head:
                raise SimulationError(
                    f"{self.name}: idle output but buffer {source.name!r} "
                    f"heads with mid-packet flit {flit!r}"
                )
            return flit, source
        return None, None

    # ------------------------------------------------------------------
    # Commit bookkeeping.  The flat `_commit_*` forms are the single
    # implementation: `on_transfer_commit` (object datapath) unpacks the
    # Transfer into them, and `compiled_commit_handler` hands the
    # matching bound method to the engine's compiled datapath so the
    # commit loop calls it directly — one monomorphic call, no Transfer.
    def compiled_commit_handler(self) -> "CommitHandler":
        return self._commit_slotted if self.slotted else self._commit_wormhole

    def on_transfer_commit(self, transfer: Transfer, engine: Engine) -> None:
        if self.slotted:
            self._commit_slotted(
                transfer.flit, transfer.source, transfer.dest, transfer.channel
            )
        else:
            self._commit_wormhole(
                transfer.flit, transfer.source, transfer.dest, transfer.channel
            )

    def _commit_slotted(
        self,
        flit: Flit,
        source: FlitBuffer,
        dest: FlitBuffer,
        channel: Channel | None,
    ) -> None:
        # Independent slots: no wormhole state to maintain.
        if flit.is_head:
            self.packets_sent += 1
            if source is self.transit_buffer:
                self.transit_packets_sent += 1

    def _commit_wormhole(
        self,
        flit: Flit,
        source: FlitBuffer,
        dest: FlitBuffer,
        channel: Channel | None,
    ) -> None:
        if flit.is_head:
            self.packets_sent += 1
            if source is self.transit_buffer:
                self.transit_packets_sent += 1
            if not flit.is_tail:
                self._sending = flit.packet
                self._sending_source = source
                self._cont_src = source._buf_id
                self._cont_dst = dest._buf_id
                channel.open_route(flit.packet, dest)
        if flit.is_tail:
            self._sending = None
            self._sending_source = None
            channel.close_route()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RingPort({self.name})"
