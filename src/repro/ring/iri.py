"""Inter-Ring Interface (paper Figure 4).

An IRI is a 2x2 crossbar joining a *lower* (child) ring to its *upper*
(parent) ring.  Switching is independent on the two sides, so the IRI
is modelled as two :class:`~repro.ring.port.RingPort` components that
share the up/down queues:

* the **lower port** sits on the child ring.  Arriving child-ring
  packets whose destination lies outside the child's subtree are routed
  into the *up* queues (split request/response); everything else stays
  in the lower ring buffer.  Its output link feeds the child ring from
  the lower ring buffer (priority) and the *down* queues.
* the **upper port** sits on the parent ring.  Arriving parent-ring
  packets destined inside the child subtree drop into the *down*
  queues; the rest transit via the upper ring buffer.  Its output feeds
  the parent ring from the upper ring buffer (priority) and the *up*
  queues.

"Priority is given to packets that do not change rings" (Section 2.1):
the shared :class:`RingPort` logic implements that as transit-first,
then response, then request.  All six buffers hold exactly one
cache-line packet.  When the global ring runs at double speed
(Section 6) the upper port of a global-ring IRI lives in the fast clock
domain while the lower port stays at PM speed; the up/down queues are
the domain-crossing FIFOs.
"""

from __future__ import annotations

from ..core.buffers import FlitBuffer
from ..core.packet import Packet
from .port import RingPort
from .topology import HierarchySpec


class InterRingInterface:
    """The two coupled ports joining a child ring to its parent ring."""

    def __init__(
        self,
        name: str,
        spec: HierarchySpec,
        child_prefix: tuple[int, ...],
        buffer_flits: int,
        lower_speed: int = 1,
        upper_speed: int = 1,
        transit_first: bool = True,
        response_first: bool = True,
        slotted: bool = False,
    ):
        self.name = name
        self.spec = spec
        self.child_prefix = child_prefix
        #: Slotted switching: a packet finding its up/down queue too
        #: full to hold it entirely recirculates instead of blocking.
        self.slotted = slotted

        # PM ids are assigned depth-first, so the child subtree is the
        # contiguous id range [lo, hi) — an O(1) classification test,
        # where spec.in_subtree would re-derive the mixed-radix address
        # of every head flit's destination.
        subtree_size = 1
        for radix in spec.branching[len(child_prefix):]:
            subtree_size *= radix
        pad = (0,) * (spec.levels - len(child_prefix))
        self._subtree_lo = spec.pm_id_of(child_prefix + pad)
        self._subtree_hi = self._subtree_lo + subtree_size

        self.up_req = FlitBuffer(f"{name}.up_req", capacity=buffer_flits)
        self.up_resp = FlitBuffer(f"{name}.up_resp", capacity=buffer_flits)
        self.down_req = FlitBuffer(f"{name}.down_req", capacity=buffer_flits)
        self.down_resp = FlitBuffer(f"{name}.down_resp", capacity=buffer_flits)

        lower_ring_buffer = FlitBuffer(f"{name}.lower_ring_buffer", capacity=buffer_flits)
        upper_ring_buffer = FlitBuffer(f"{name}.upper_ring_buffer", capacity=buffer_flits)

        down_sources = (
            [self.down_resp, self.down_req]
            if response_first
            else [self.down_req, self.down_resp]
        )
        up_sources = (
            [self.up_resp, self.up_req]
            if response_first
            else [self.up_req, self.up_resp]
        )
        self.lower_port = RingPort(
            f"{name}.lower",
            transit_buffer=lower_ring_buffer,
            injection_sources=down_sources,
            classify=self._classify_lower,
            speed=lower_speed,
            transit_first=transit_first,
        )
        self.upper_port = RingPort(
            f"{name}.upper",
            transit_buffer=upper_ring_buffer,
            injection_sources=up_sources,
            classify=self._classify_upper,
            speed=upper_speed,
            transit_first=transit_first,
        )
        self.lower_port.slotted = slotted
        self.upper_port.slotted = slotted
        #: Diagnostic: classification attempts that chose to recirculate
        #: (counted per arbitration retry, not per unique packet).
        self.recirculations = 0

    # ------------------------------------------------------------------
    def _take_or_recirculate(self, queue: FlitBuffer, packet: Packet,
                             transit: FlitBuffer) -> FlitBuffer:
        """Slotted switching's non-blocking rule for ring changes.

        Slots are routed independently, so the test is per slot: if the
        change queue has no free entry, this slot stays on its current
        ring and retries next revolution.  (Different slots of one
        packet may take different decisions; the destination reassembles
        out-of-order arrivals.)
        """
        if not self.slotted:
            return queue
        if queue.is_full:
            self.recirculations += 1
            return transit
        return queue

    def _classify_lower(self, packet: Packet) -> FlitBuffer:
        """Arriving on the child ring: ascend unless destined in-subtree."""
        if self._subtree_lo <= packet.destination < self._subtree_hi:
            return self.lower_port.transit_buffer
        queue = self.up_resp if packet.ptype.is_response else self.up_req
        return self._take_or_recirculate(queue, packet, self.lower_port.transit_buffer)

    def _classify_upper(self, packet: Packet) -> FlitBuffer:
        """Arriving on the parent ring: descend if destined in-subtree."""
        if self._subtree_lo <= packet.destination < self._subtree_hi:
            queue = self.down_resp if packet.ptype.is_response else self.down_req
            return self._take_or_recirculate(
                queue, packet, self.upper_port.transit_buffer
            )
        return self.upper_port.transit_buffer

    @property
    def subtree_range(self) -> tuple[int, int]:
        """Half-open PM-id range ``[lo, hi)`` of the child subtree.

        The routing contract this interface enforces — and that the
        runtime auditor (:mod:`repro.audit`) re-checks from outside —
        is expressible entirely in terms of this range: every packet
        parked in a *down* queue is destined inside it, every packet in
        an *up* queue outside it.
        """
        return (self._subtree_lo, self._subtree_hi)

    @property
    def buffers(self) -> list[FlitBuffer]:
        return [
            self.lower_port.transit_buffer,
            self.upper_port.transit_buffer,
            self.up_req,
            self.up_resp,
            self.down_req,
            self.down_resp,
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InterRingInterface({self.name})"
