"""Hierarchical ring topology, addressing and topology selection.

A hierarchy is described top-down by a branching tuple (the paper's
``"2:3:4"`` notation, Table 2): the global ring connects ``b[0]``
level-2 rings, each of which connects ``b[1]`` children, ..., and each
*local* (leaf) ring carries ``b[-1]`` processing modules.  Rings are
identified by their *prefix* — the path of child indices from the
global ring — and a PM by the full mixed-radix digit tuple.  PM ids are
assigned in depth-first (lexicographic) order, which is exactly the
paper's "linear projection" used by the locality model: consecutive ids
are topologically adjacent.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Iterator

from ..core.config import format_hierarchy, hierarchy_processors, parse_hierarchy
from ..core.errors import TopologyError

#: Maximum PMs a single ring sustains with almost no degradation for the
#: paper's baseline workload (R=1.0, C=0.04), by cache line size (Fig 6).
SINGLE_RING_MAX = {16: 12, 32: 8, 64: 6, 128: 4}

#: Maximum lower-level rings a higher-level ring sustains before the
#: global ring saturates (Sections 3 and 6): 3 at normal speed,
#: 5 with a double-speed global ring.
MAX_RINGS_PER_RING = 3
MAX_RINGS_PER_DOUBLE_SPEED_RING = 5

#: Paper Table 2: optimal topology for each (cache line size, processor
#: count) under the no-locality workload R=1.0, C=0.04.
PAPER_TABLE2: dict[int, dict[int, tuple[int, ...]]] = {
    16: {
        4: (4,), 6: (6,), 8: (8,), 12: (12,), 18: (2, 9), 24: (2, 12),
        36: (3, 12), 54: (2, 3, 9), 72: (2, 3, 12), 108: (3, 3, 12),
    },
    32: {
        4: (4,), 6: (6,), 8: (8,), 12: (2, 6), 18: (3, 6), 24: (3, 8),
        36: (2, 3, 6), 54: (3, 3, 6), 72: (3, 3, 8), 108: (2, 3, 3, 6),
    },
    64: {
        4: (4,), 6: (6,), 8: (2, 4), 12: (2, 6), 18: (3, 6), 24: (2, 2, 6),
        36: (2, 3, 6), 54: (3, 3, 6), 72: (2, 2, 3, 6), 108: (2, 3, 3, 6),
    },
    128: {
        4: (4,), 6: (2, 3), 8: (2, 4), 12: (3, 4), 18: (3, 2, 3),
        24: (2, 3, 4), 36: (3, 3, 4), 54: (3, 3, 2, 3), 72: (2, 3, 3, 4),
        108: (3, 3, 3, 4),
    },
}


@dataclass(frozen=True)
class HierarchySpec:
    """An immutable, validated hierarchical-ring shape."""

    branching: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "branching", parse_hierarchy(self.branching))

    @classmethod
    def parse(cls, spec: "str | tuple[int, ...] | list[int] | HierarchySpec") -> "HierarchySpec":
        if isinstance(spec, HierarchySpec):
            return spec
        return cls(parse_hierarchy(spec))

    # -- shape ---------------------------------------------------------
    @property
    def levels(self) -> int:
        return len(self.branching)

    @property
    def processors(self) -> int:
        return hierarchy_processors(self.branching)

    @property
    def pms_per_local_ring(self) -> int:
        return self.branching[-1]

    def children_of_depth(self, depth: int) -> int:
        """Fan-out of a ring at *depth* (0 = global ring)."""
        return self.branching[depth]

    # -- rings ---------------------------------------------------------
    def rings_at_depth(self, depth: int) -> list[tuple[int, ...]]:
        """All ring prefixes at *depth* (0 = global, levels-1 = local)."""
        if not 0 <= depth <= self.levels - 1:
            raise TopologyError(f"depth {depth} out of range for {self}")

        def expand(prefix: tuple[int, ...], d: int) -> Iterator[tuple[int, ...]]:
            if d == depth:
                yield prefix
                return
            for i in range(self.branching[d]):
                yield from expand(prefix + (i,), d + 1)

        return list(expand((), 0))

    def all_rings(self) -> Iterator[tuple[int, ...]]:
        for depth in range(self.levels):
            yield from self.rings_at_depth(depth)

    def ring_count(self) -> int:
        return sum(1 for __ in self.all_rings())

    def iri_count(self) -> int:
        """Inter-ring interfaces: one per non-root ring."""
        return self.ring_count() - 1

    # -- PM addressing -------------------------------------------------
    def address_of(self, pm_id: int) -> tuple[int, ...]:
        """Mixed-radix digits of *pm_id*, top-down (DFS order)."""
        if not 0 <= pm_id < self.processors:
            raise TopologyError(f"pm_id {pm_id} out of range for {self}")
        digits = []
        remainder = pm_id
        for radix in reversed(self.branching):
            digits.append(remainder % radix)
            remainder //= radix
        return tuple(reversed(digits))

    def pm_id_of(self, address: tuple[int, ...]) -> int:
        if len(address) != self.levels:
            raise TopologyError(f"address {address} has wrong length for {self}")
        pm_id = 0
        for digit, radix in zip(address, self.branching):
            if not 0 <= digit < radix:
                raise TopologyError(f"address digit {digit} out of range (radix {radix})")
            pm_id = pm_id * radix + digit
        return pm_id

    def local_ring_of(self, pm_id: int) -> tuple[int, ...]:
        return self.address_of(pm_id)[:-1]

    def in_subtree(self, pm_id: int, ring_prefix: tuple[int, ...]) -> bool:
        """Whether *pm_id* lives below the ring identified by *ring_prefix*."""
        return self.address_of(pm_id)[: len(ring_prefix)] == ring_prefix

    def hop_levels(self, src: int, dst: int) -> int:
        """Number of ring levels a packet from *src* to *dst* ascends."""
        a, b = self.address_of(src), self.address_of(dst)
        for depth in range(self.levels):
            if a[depth] != b[depth]:
                return self.levels - depth
        return 0

    def __str__(self) -> str:
        return format_hierarchy(self.branching)


# ----------------------------------------------------------------------
# topology selection
# ----------------------------------------------------------------------
def max_children(depth: int, levels: int, cache_line_bytes: int, global_ring_speed: int) -> int:
    """Design-rule fan-out limit for a ring at *depth* in an *levels*-deep tree."""
    if depth == levels - 1:
        return SINGLE_RING_MAX[cache_line_bytes]
    if depth == 0 and global_ring_speed == 2:
        return MAX_RINGS_PER_DOUBLE_SPEED_RING
    return MAX_RINGS_PER_RING


def candidate_topologies(
    processors: int,
    cache_line_bytes: int,
    max_levels: int = 4,
    global_ring_speed: int = 1,
    enforce_design_rules: bool = True,
) -> list[tuple[int, ...]]:
    """All branching tuples with exactly *processors* PMs.

    With ``enforce_design_rules`` the paper's fan-out limits apply:
    local rings hold at most :data:`SINGLE_RING_MAX` PMs and upper
    rings at most 3 children (5 for a double-speed global ring).  This
    is the candidate set the Table 2 search simulates.
    """
    results: list[tuple[int, ...]] = []

    def extend(prefix: tuple[int, ...], remaining: int) -> None:
        depth = len(prefix)
        if depth >= max_levels:
            return
        # Close the tuple here: remaining PMs on one local ring.
        levels = depth + 1
        if remaining >= 1 and (depth == 0 or remaining >= 1):
            local_ok = (
                not enforce_design_rules
                or remaining <= SINGLE_RING_MAX[cache_line_bytes]
            )
            ok_prefix = all(
                not enforce_design_rules
                or prefix[d] <= max_children(d, levels, cache_line_bytes, global_ring_speed)
                for d in range(depth)
            )
            if local_ok and ok_prefix and (levels == 1 or remaining >= 1):
                results.append(prefix + (remaining,))
        # Or branch further.
        for fan in range(2, remaining + 1):
            if remaining % fan == 0 and remaining // fan >= 1:
                extend(prefix + (fan,), remaining // fan)

    extend((), processors)
    # Drop degenerate shapes: inner fan-out below 2, and local rings of
    # a single PM behind an IRI (pure overhead nobody would build).
    results = [
        r
        for r in results
        if all(b >= 2 for b in r[:-1]) and (r[-1] >= 2 or len(r) == 1)
    ]
    return sorted(set(results), key=lambda r: (len(r), r))


def recommended_topology(
    processors: int,
    cache_line_bytes: int,
    global_ring_speed: int = 1,
) -> tuple[int, ...]:
    """The hierarchy the paper would use for a given system size.

    Returns the paper's Table 2 entry when one exists; otherwise picks,
    among design-rule-conforming candidates, the one with the fewest
    levels and then the largest local rings (the construction the paper
    describes: fill local rings to their single-ring maximum first).
    """
    if global_ring_speed == 1:
        table = PAPER_TABLE2.get(cache_line_bytes, {})
        if processors in table:
            return table[processors]
    candidates = candidate_topologies(
        processors, cache_line_bytes, global_ring_speed=global_ring_speed
    )
    if not candidates:
        raise TopologyError(
            f"no design-rule hierarchy exists for P={processors}, "
            f"cl={cache_line_bytes}B (try a nearby processor count)"
        )
    return min(candidates, key=lambda r: (len(r), -r[-1], r))


def double_speed_max_processors(cache_line_bytes: int, levels: int = 3) -> int:
    """Largest 3-level system with a double-speed global ring (Section 6).

    Five second-level rings of three maximal local rings each: 180, 120,
    90 and 60 processors for 16/32/64/128-byte lines.
    """
    local = SINGLE_RING_MAX[cache_line_bytes]
    return reduce(lambda acc, fan: acc * fan, [MAX_RINGS_PER_DOUBLE_SPEED_RING, MAX_RINGS_PER_RING][: levels - 1], local)
