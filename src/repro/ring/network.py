"""Hierarchical ring network assembly.

Builds the complete simulated system for a
:class:`~repro.core.config.RingSystemConfig`: one
:class:`~repro.core.pm.ProcessingModule` plus
:class:`~repro.ring.nic.RingNIC` per processor, one
:class:`~repro.ring.iri.InterRingInterface` per non-root ring, and the
unidirectional channels stitching each ring together.

Ring membership order (flow direction) at each ring is: the IRI to the
parent ring first (absent at the root), then the children in index
order — child rings' IRI upper ports on inner rings, PM NICs on local
rings.

Channels are grouped for utilization reporting into ``"global"``,
``"intermediate"`` and ``"local"`` levels (a single-ring system's only
ring counts as local).  With ``global_ring_speed == 2`` (Section 6),
the global ring's ports and channels run in the fast clock domain.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.channel import Channel
from ..core.config import RingSystemConfig, WorkloadConfig
from ..core.engine import Engine
from ..core.errors import ConfigurationError
from ..core.pm import MetricsHub, ProcessingModule
from ..core.processor import MissSource
from ..workload.patterns import TargetSpace, build_target_selector
from .iri import InterRingInterface
from .nic import RingNIC
from .port import RingPort
from .topology import HierarchySpec


def level_name(depth: int, levels: int) -> str:
    """Utilization grouping for a ring at *depth* in an *levels*-deep tree."""
    if levels == 1 or depth == levels - 1:
        return "local"
    if depth == 0:
        return "global"
    return "intermediate"


class HierarchicalRingNetwork:
    """A fully wired hierarchical-ring multiprocessor system."""

    def __init__(
        self,
        config: RingSystemConfig,
        workload: WorkloadConfig,
        metrics: MetricsHub,
        seed: int = 1,
        miss_sources: "Sequence[MissSource] | None" = None,
    ):
        config.validate()
        workload.validate()
        self.config = config
        self.workload = workload
        self.metrics = metrics
        self.spec = HierarchySpec.parse(config.topology)

        if config.global_ring_speed == 2 and self.spec.levels == 1:
            raise ConfigurationError(
                "a double-speed global ring requires a multi-level hierarchy"
            )

        buffer_flits = config.ring_buffer_flits
        geometry = config.geometry
        processors = self.spec.processors
        selector = build_target_selector(workload, TargetSpace.ring(processors))

        self.pms: list[ProcessingModule] = [
            ProcessingModule(
                pm_id=pm_id,
                geometry=geometry,
                workload=workload,
                memory_latency=config.memory_latency,
                select_target=selector,
                rng=random.Random(seed * 1_000_003 + pm_id),
                metrics=metrics,
                miss_source=miss_sources[pm_id] if miss_sources else None,
            )
            for pm_id in range(processors)
        ]

        self.nics: list[RingNIC] = []
        self.iris: dict[tuple[int, ...], InterRingInterface] = {}
        self.channels: list[Channel] = []
        self._links_per_level: dict[str, int] = {}
        self._opportunities_per_cycle: dict[str, float] = {}

        self._build()

    # ------------------------------------------------------------------
    def _ring_speed(self, depth: int) -> int:
        if depth == 0 and self.spec.levels > 1:
            return self.config.global_ring_speed
        return 1

    def _build(self) -> None:
        spec = self.spec
        buffer_flits = self.config.ring_buffer_flits

        # One IRI per non-root ring; lower side at that ring's speed,
        # upper side at the parent ring's speed.
        for depth in range(1, spec.levels):
            for prefix in spec.rings_at_depth(depth):
                self.iris[prefix] = InterRingInterface(
                    name=f"iri{list(prefix)}",
                    spec=spec,
                    child_prefix=prefix,
                    buffer_flits=buffer_flits,
                    lower_speed=self._ring_speed(depth),
                    upper_speed=self._ring_speed(depth - 1),
                    transit_first=self.config.transit_priority,
                    response_first=self.config.response_priority,
                    slotted=self.config.switching == "slotted",
                )

        # NICs on local rings, in PM-id order.
        local_depth = spec.levels - 1
        nic_speed = self._ring_speed(local_depth)
        for pm in self.pms:
            self.nics.append(
                RingNIC(
                    f"nic{pm.pm_id}",
                    pm,
                    buffer_flits,
                    speed=nic_speed,
                    transit_first=self.config.transit_priority,
                    response_first=self.config.response_priority,
                    slotted=self.config.switching == "slotted",
                )
            )

        # Wire every ring.
        for depth in range(spec.levels):
            speed = self._ring_speed(depth)
            level = level_name(depth, spec.levels)
            for prefix in spec.rings_at_depth(depth):
                members = self._ring_members(prefix)
                for position, port in enumerate(members):
                    downstream = members[(position + 1) % len(members)]
                    channel = Channel(
                        name=f"ring{list(prefix)}.link{position}",
                        klass=level,
                        speed=speed,
                    )
                    port.connect(downstream, channel)
                    self.channels.append(channel)
                    self._links_per_level[level] = self._links_per_level.get(level, 0) + 1
                    self._opportunities_per_cycle[level] = (
                        self._opportunities_per_cycle.get(level, 0.0) + speed
                    )

    def _ring_members(self, prefix: tuple[int, ...]) -> list[RingPort]:
        spec = self.spec
        depth = len(prefix)
        members: list[RingPort] = []
        if depth > 0:
            members.append(self.iris[prefix].lower_port)
        if depth == spec.levels - 1:
            for slot in range(spec.branching[depth]):
                pm_id = spec.pm_id_of(prefix + (slot,))
                members.append(self.nics[pm_id])
        else:
            for child in range(spec.branching[depth]):
                members.append(self.iris[prefix + (child,)].upper_port)
        return members

    # ------------------------------------------------------------------
    def register(self, engine: Engine) -> None:
        # RPR001 regression note: registration order is behaviour — it
        # fixes update order, metric recording order and therefore the
        # float-summation order behind byte-identical results.  PMs and
        # NICs register in PM-id order; IRIs in the depth-then-prefix
        # insertion order of ``self.iris`` (a dict, never a set), which
        # _build() constructs deterministically.  Do not reorder.
        for pm in self.pms:
            engine.add_component(pm)
        for nic in self.nics:
            engine.add_component(nic)
        for iri in self.iris.values():
            engine.add_component(iri.lower_port)
            engine.add_component(iri.upper_port)
        for channel in self.channels:
            engine.register_channel(channel)

    # ------------------------------------------------------------------
    # utilization accounting
    # ------------------------------------------------------------------
    @property
    def levels_present(self) -> list[str]:
        return sorted(self._links_per_level)

    def flits_carried(self, level: str | None = None) -> int:
        return sum(
            c.flits_carried
            for c in self.channels
            if level is None or c.klass == level
        )

    def opportunities(self, cycles: int, level: str | None = None) -> float:
        """Flit-transfer opportunities over *cycles* base cycles."""
        if level is not None:
            return self._opportunities_per_cycle.get(level, 0.0) * cycles
        return sum(self._opportunities_per_cycle.values()) * cycles

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HierarchicalRingNetwork({self.spec}, cl={self.config.cache_line_bytes}B, "
            f"{self.spec.processors} PMs)"
        )
