"""Hierarchical unidirectional ring network (NUMAchine/Hector style)."""
