"""Ring Network Interface Controller (paper Figure 3).

The NIC connects a processing module to its local ring.  It switches

1. incoming packets destined for the local PM into the PM's input
   queue (an unbounded ejection sink — see DESIGN.md §4),
2. outgoing packets from the PM's split request/response output queues
   onto the ring, and
3. continuing (transit) packets from the input link to the output link
   through a cache-line-sized ring buffer.

Transmission priority is transit packets first, then responses, then
requests (Section 2.1).  The paper's bypass path (ring buffer empty and
output idle → forward directly) has the same one-cycle transit timing
as passing through the ring buffer, so the ring buffer subsumes it.
"""

from __future__ import annotations

from ..core.buffers import FlitBuffer
from ..core.packet import Packet
from ..core.pm import ProcessingModule
from .port import RingPort


class RingNIC(RingPort):
    """A processing module's interface onto its local ring."""

    def __init__(
        self,
        name: str,
        pm: ProcessingModule,
        ring_buffer_flits: int,
        speed: int = 1,
        transit_first: bool = True,
        response_first: bool = True,
        slotted: bool = False,
    ):
        self.pm = pm
        # classify() runs on every head flit passing the NIC; avoid the
        # two attribute hops through the PM each time.
        self._pm_id = pm.pm_id
        self._pm_in_queue = pm.in_queue
        ring_buffer = FlitBuffer(f"{name}.ring_buffer", capacity=ring_buffer_flits)
        injection = (
            [pm.out_resp, pm.out_req] if response_first else [pm.out_req, pm.out_resp]
        )
        super().__init__(
            name,
            transit_buffer=ring_buffer,
            injection_sources=injection,
            classify=self._classify,
            speed=speed,
            transit_first=transit_first,
            slotted=slotted,
        )

    def _classify(self, packet: Packet) -> FlitBuffer:
        if packet.destination == self._pm_id:
            return self._pm_in_queue
        return self.transit_buffer
