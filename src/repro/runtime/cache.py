"""Content-addressed on-disk cache of simulation results.

Layout::

    <root>/<code-salt>/<key[:2]>/<key>.json

where *key* is :meth:`PointSpec.key` (a SHA-256 of the canonical point
payload) and *code-salt* hashes every ``.py`` file of the installed
``repro`` package.  Editing any simulator source therefore invalidates
the whole cache implicitly — stale entries from older code versions are
simply never looked up again (``clear()`` removes them for good).

Entries are written atomically (temp file + ``os.replace``) so a
killed run never leaves a truncated entry; unreadable or corrupt
entries are treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import shutil
from dataclasses import dataclass, field
from functools import lru_cache

from ..core.simulation import SimulationResult
from .serialization import canonical_json, result_from_payload, result_payload
from .spec import PointSpec

#: Default cache root, relative to the working directory; override with
#: the ``REPRO_CACHE_DIR`` environment variable or ``--cache-dir``.
DEFAULT_CACHE_DIR = pathlib.Path("results") / ".cache"

#: Salt injected by :func:`prime_code_version_salt`; worker processes
#: receive the parent's salt through the pool initializer instead of
#: re-hashing the whole package on first cache touch.
_primed_salt: str | None = None


def prime_code_version_salt(salt: str) -> None:
    """Install a precomputed salt for this process.

    Used as a ``ProcessPoolExecutor`` initializer (with the parent's
    salt as initarg) so pool workers never pay the package re-hash of
    :func:`code_version_salt`.
    """
    global _primed_salt
    _primed_salt = salt


def code_version_salt() -> str:
    """Hash of the installed ``repro`` package's Python sources.

    A salt installed by :func:`prime_code_version_salt` (worker
    processes) takes precedence; otherwise the package sources are
    hashed once per process and memoized.
    """
    if _primed_salt is not None:
        return _primed_salt
    return _computed_code_version_salt()


@lru_cache(maxsize=1)
def _computed_code_version_salt() -> str:
    root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass
class CacheStats:
    """Disk-cache population snapshot across every salt generation."""

    entries: int = 0
    total_bytes: int = 0
    salts: list[str] = field(default_factory=list)

    def describe(self) -> str:
        salts = ", ".join(self.salts) if self.salts else "none"
        return (
            f"{self.entries} entries, {self.total_bytes} bytes, "
            f"salt generations: {salts}"
        )


@dataclass
class PruneReport:
    """What :meth:`ResultCache.prune` removed and what survived."""

    removed_entries: int = 0
    removed_bytes: int = 0
    kept_entries: int = 0
    kept_bytes: int = 0


class ResultCache:
    """Maps :class:`PointSpec` keys to stored :class:`SimulationResult`."""

    def __init__(
        self, root: "pathlib.Path | str | None" = None, salt: str | None = None
    ) -> None:
        self.root = pathlib.Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.salt = salt if salt is not None else code_version_salt()

    def path_for(self, spec: PointSpec) -> pathlib.Path:
        key = spec.key()
        return self.root / self.salt / key[:2] / f"{key}.json"

    def get(self, spec: PointSpec) -> SimulationResult | None:
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            return result_from_payload(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def get_entry(self, spec: PointSpec) -> "tuple[str, SimulationResult] | None":
        """Hit as ``(canonical_text, result)``; corrupt entries miss.

        The text is the *re-canonicalized* result payload
        (:func:`~repro.runtime.serialization.canonical_json`), not the
        raw file bytes, so callers that serve cached results over the
        wire hand out exactly the bytes a fresh ``run_point`` of the
        same spec would serialize to.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            result = result_from_payload(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return canonical_json(result_payload(result)), result

    def put(self, spec: PointSpec, result: SimulationResult) -> None:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(result_payload(result), sort_keys=True))
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete the whole cache root; returns entries removed."""
        removed = len(list(self.root.rglob("*.json"))) if self.root.exists() else 0
        shutil.rmtree(self.root, ignore_errors=True)
        return removed

    def entry_count(self) -> int:
        """Entries stored under the *current* code-version salt."""
        salted = self.root / self.salt
        if not salted.exists():
            return 0
        return sum(1 for __ in salted.rglob("*.json"))

    def _entries(self) -> "list[tuple[float, int, pathlib.Path]]":
        """Every entry across all salts as ``(mtime, bytes, path)``."""
        entries: list[tuple[float, int, pathlib.Path]] = []
        if not self.root.exists():
            return entries
        for path in self.root.rglob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def stats(self) -> CacheStats:
        """Entry count, total bytes, and salt generations present."""
        stats = CacheStats()
        salts: set[str] = set()
        for __, size, path in self._entries():
            stats.entries += 1
            stats.total_bytes += size
            salts.add(path.relative_to(self.root).parts[0])
        stats.salts = sorted(salts)
        return stats

    def prune(self, max_bytes: int) -> PruneReport:
        """Evict least-recently-used entries until <= *max_bytes* total.

        Recency is file mtime — reads never bump it, so this is
        least-recently-*written* eviction across every salt generation
        (stale-salt entries age out first since nothing rewrites them).
        Emptied ``<salt>/<prefix>`` directories are removed with the
        entries.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = sorted(self._entries())
        report = PruneReport(
            kept_entries=len(entries),
            kept_bytes=sum(size for __, size, __path in entries),
        )
        for __, size, path in entries:
            if report.kept_bytes <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            report.removed_entries += 1
            report.removed_bytes += size
            report.kept_entries -= 1
            report.kept_bytes -= size
            parent = path.parent
            while parent != self.root:
                try:
                    parent.rmdir()
                except OSError:
                    break
                parent = parent.parent
        return report
