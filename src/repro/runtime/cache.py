"""Content-addressed on-disk cache of simulation results.

Layout::

    <root>/<code-salt>/<key[:2]>/<key>.json

where *key* is :meth:`PointSpec.key` (a SHA-256 of the canonical point
payload) and *code-salt* hashes every ``.py`` file of the installed
``repro`` package.  Editing any simulator source therefore invalidates
the whole cache implicitly — stale entries from older code versions are
simply never looked up again (``clear()`` removes them for good).

Entries are written atomically (temp file + ``os.replace``) so a
killed run never leaves a truncated entry; unreadable or corrupt
entries are treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import shutil
from functools import lru_cache

from ..core.simulation import SimulationResult
from .serialization import result_from_payload, result_payload
from .spec import PointSpec

#: Default cache root, relative to the working directory; override with
#: the ``REPRO_CACHE_DIR`` environment variable or ``--cache-dir``.
DEFAULT_CACHE_DIR = pathlib.Path("results") / ".cache"


@lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Hash of the installed ``repro`` package's Python sources."""
    root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


class ResultCache:
    """Maps :class:`PointSpec` keys to stored :class:`SimulationResult`."""

    def __init__(
        self, root: "pathlib.Path | str | None" = None, salt: str | None = None
    ) -> None:
        self.root = pathlib.Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.salt = salt if salt is not None else code_version_salt()

    def path_for(self, spec: PointSpec) -> pathlib.Path:
        key = spec.key()
        return self.root / self.salt / key[:2] / f"{key}.json"

    def get(self, spec: PointSpec) -> SimulationResult | None:
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            return result_from_payload(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, spec: PointSpec, result: SimulationResult) -> None:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(result_payload(result), sort_keys=True))
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete the whole cache root; returns entries removed."""
        removed = len(list(self.root.rglob("*.json"))) if self.root.exists() else 0
        shutil.rmtree(self.root, ignore_errors=True)
        return removed

    def entry_count(self) -> int:
        """Entries stored under the *current* code-version salt."""
        salted = self.root / self.salt
        if not salted.exists():
            return 0
        return sum(1 for __ in salted.rglob("*.json"))
