"""Point specifications: one fully-determined simulation run.

A :class:`PointSpec` bundles everything ``simulate()`` needs for one
sweep point — system config, workload, simulation params — and gives it
a stable content hash (:meth:`PointSpec.key`) used both as the on-disk
cache key and to derive the point's random seed.

Seeds are *derived per point*: two different points never share a
random stream (sweep points are statistically independent, as the
paper's batch-means analysis assumes), yet the same point always gets
the same stream no matter how many worker processes the sweep is
fanned across or in which order points complete.  The derivation mixes
the caller's base seed with the system and workload payloads only, so
running the same system longer (more batches/cycles) extends the same
stream rather than resampling it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any

from ..core.config import SimulationParams, WorkloadConfig
from .serialization import (
    SystemConfig,
    canonical_json,
    params_from_payload,
    params_payload,
    system_from_payload,
    system_payload,
    workload_from_payload,
    workload_payload,
)


def derive_point_seed(
    system: SystemConfig, workload: WorkloadConfig, base_seed: int
) -> int:
    """Deterministic per-point seed from the base seed and the point."""
    payload = {
        "base_seed": base_seed,
        "system": system_payload(system),
        "workload": workload_payload(workload),
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).digest()
    return 1 + int.from_bytes(digest[:4], "big") % (2**31 - 1)


@dataclass(frozen=True)
class PointSpec:
    """One simulation point: (system, workload, params), fully resolved."""

    system: SystemConfig
    workload: WorkloadConfig
    params: SimulationParams

    @classmethod
    def of(
        cls,
        system: SystemConfig,
        workload: WorkloadConfig,
        params: SimulationParams,
    ) -> "PointSpec":
        """Build a spec with the per-point seed already derived.

        ``params.seed`` is treated as the sweep's *base* seed and
        replaced by :func:`derive_point_seed`.  Use the plain
        constructor to pin an exact seed instead.
        """
        seed = derive_point_seed(system, workload, params.seed)
        return cls(system=system, workload=workload, params=replace(params, seed=seed))

    @classmethod
    def from_payload(
        cls, payload: dict[str, Any], *, derive_seed: bool = False
    ) -> "PointSpec":
        """Rebuild a spec from its :meth:`payload` dictionary.

        The inverse used by the sweep service to parse submitted JSON
        jobs.  With ``derive_seed=True`` the payload's ``params.seed``
        is treated as the sweep's *base* seed and replaced by
        :func:`derive_point_seed` (i.e. :meth:`PointSpec.of` semantics);
        the default pins the seed exactly as submitted.
        """
        system = system_from_payload(payload["system"])
        workload = workload_from_payload(payload["workload"])
        params = params_from_payload(payload["params"])
        if derive_seed:
            return cls.of(system, workload, params)
        return cls(system=system, workload=workload, params=params)

    def payload(self) -> dict[str, Any]:
        return {
            "system": system_payload(self.system),
            "workload": workload_payload(self.workload),
            "params": params_payload(self.params),
        }

    def key(self) -> str:
        """Stable content hash of the full point specification."""
        return hashlib.sha256(
            canonical_json(self.payload()).encode("utf-8")
        ).hexdigest()
