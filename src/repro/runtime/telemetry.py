"""Progress and telemetry for sweep execution.

:class:`Progress` is the live counters of one :func:`~repro.runtime.runner.run_points`
call; a progress hook (any ``Callable[[Progress], None]``) is invoked
after every completed point.  :class:`ProgressPrinter` is the CLI's
hook: it paints a single updating status line to a stream and
accumulates totals across the many ``run_points`` calls one experiment
makes, so the CLI can report aggregate cache-hit ratios per figure.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, TextIO


@dataclass
class Progress:
    """Counters for one batch of sweep points."""

    total: int
    done: int = 0
    cache_hits: int = 0
    #: Of :attr:`cache_hits`, how many were served by the in-memory
    #: tier (the rest came off disk).
    memcache_hits: int = 0
    #: Duplicate points coalesced onto another point's computation
    #: (single-flight dedup); these count toward ``done`` but neither
    #: toward ``cache_hits`` nor ``computed``.
    dedup_hits: int = 0
    started: float = field(default_factory=time.monotonic)

    @property
    def computed(self) -> int:
        """Points actually simulated (not cached, not deduplicated)."""
        return self.done - self.cache_hits - self.dedup_hits

    @property
    def misses(self) -> int:
        """Points that had to leave the cache tiers (computed + dedup)."""
        return self.done - self.cache_hits

    @property
    def elapsed(self) -> float:
        # Wall clock is fine here: progress reporting measures the host,
        # never influences simulated behaviour or cached results.
        return time.monotonic() - self.started  # repro: noqa[RPR002]

    @property
    def points_per_sec(self) -> float:
        elapsed = self.elapsed
        return self.done / elapsed if elapsed > 0 else math.inf

    @property
    def eta_seconds(self) -> float:
        """Projected seconds to finish the remaining points."""
        if self.done == 0:
            return math.inf
        return (self.total - self.done) * (self.elapsed / self.done)


#: Invoked after every completed point with the batch's live counters.
ProgressHook = Callable[[Progress], None]


class ProgressPrinter:
    """Progress hook that renders a one-line live status to *stream*."""

    def __init__(self, stream: TextIO, label: str = "", live: bool = True) -> None:
        self.stream = stream
        self.label = label
        self.live = live
        self.points = 0
        self.cache_hits = 0
        self.memcache_hits = 0
        self.dedup_hits = 0
        self._line_open = False

    def update(self, progress: Progress) -> None:
        if self.live:
            eta = progress.eta_seconds
            eta_text = f"{eta:.0f}s" if math.isfinite(eta) else "?"
            prefix = f"[{self.label}] " if self.label else ""
            self.stream.write(
                f"\r{prefix}{progress.done}/{progress.total} points · "
                f"{progress.cache_hits} cache hits · "
                f"{progress.points_per_sec:.1f} pts/s · eta {eta_text}"
            )
            self.stream.flush()
            self._line_open = True
        if progress.done == progress.total:
            self.points += progress.total
            self.cache_hits += progress.cache_hits
            self.memcache_hits += progress.memcache_hits
            self.dedup_hits += progress.dedup_hits
            self.finish_line()

    def finish_line(self) -> None:
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    def summary(self) -> str:
        """Aggregate over every batch seen since the last ``reset()``."""
        if self.points == 0:
            return "0 points"
        percent = 100.0 * self.cache_hits / self.points
        line = f"{self.points} points, {self.cache_hits} cache hits ({percent:.0f}%)"
        if self.memcache_hits:
            disk_hits = self.cache_hits - self.memcache_hits
            line += f", {self.memcache_hits} mem / {disk_hits} disk"
        if self.dedup_hits:
            line += f", {self.dedup_hits} deduplicated"
        return line

    def reset(self) -> None:
        self.finish_line()
        self.points = 0
        self.cache_hits = 0
        self.memcache_hits = 0
        self.dedup_hits = 0
