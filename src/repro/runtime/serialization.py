"""JSON payloads for configs, summaries and simulation results.

The on-disk result cache and the parallel runner both need a stable,
content-addressable representation of a simulation point and its
result.  This module is the single place that knows how to turn the
frozen config dataclasses and :class:`~repro.core.simulation.SimulationResult`
into plain dictionaries and back.

Payloads are canonicalized (topology specs normalised to the paper's
``"a:b:c"`` notation, keys sorted on encode) so that two equal specs
always hash identically regardless of how the caller spelled them.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
    format_hierarchy,
    parse_hierarchy,
)
from ..core.errors import ConfigurationError
from ..core.simulation import SimulationResult
from ..core.statistics import Summary

#: Bumped whenever the payload schema changes; old cache entries with a
#: different version are treated as misses.
PAYLOAD_VERSION = 1

SystemConfig = RingSystemConfig | MeshSystemConfig


def canonical_json(payload: dict[str, Any]) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# configs
# ----------------------------------------------------------------------
def system_payload(system: SystemConfig) -> dict[str, Any]:
    if isinstance(system, RingSystemConfig):
        return {
            "kind": "ring",
            "topology": format_hierarchy(parse_hierarchy(system.topology)),
            "cache_line_bytes": system.cache_line_bytes,
            "global_ring_speed": system.global_ring_speed,
            "memory_latency": system.memory_latency,
            "transit_priority": system.transit_priority,
            "response_priority": system.response_priority,
            "switching": system.switching,
        }
    if isinstance(system, MeshSystemConfig):
        return {
            "kind": "mesh",
            "side": system.side,
            "cache_line_bytes": system.cache_line_bytes,
            "buffer_flits": system.buffer_flits,
            "memory_latency": system.memory_latency,
        }
    raise ConfigurationError(f"unknown system config type: {type(system).__name__}")


def system_from_payload(payload: dict[str, Any]) -> SystemConfig:
    kind = payload.get("kind")
    if kind == "ring":
        return RingSystemConfig(
            topology=payload["topology"],
            cache_line_bytes=payload["cache_line_bytes"],
            global_ring_speed=payload["global_ring_speed"],
            memory_latency=payload["memory_latency"],
            transit_priority=payload["transit_priority"],
            response_priority=payload["response_priority"],
            switching=payload["switching"],
        )
    if kind == "mesh":
        return MeshSystemConfig(
            side=payload["side"],
            cache_line_bytes=payload["cache_line_bytes"],
            buffer_flits=payload["buffer_flits"],
            memory_latency=payload["memory_latency"],
        )
    raise ConfigurationError(f"unknown system payload kind: {kind!r}")


def workload_payload(workload: WorkloadConfig) -> dict[str, Any]:
    # Pattern and burst keys appear only when they shape behavior:
    # plain M-MRP payloads are byte-identical to the pre-pattern schema,
    # so existing cached results stay valid, while any non-default
    # pattern (or burstiness) changes the canonical payload — and with
    # it the cache/spec hash and the derived per-point seed — so cached
    # M-MRP results can never cross-serve a pattern run (and vice
    # versa).  Hotspot shape knobs join only for "hotspot", where they
    # actually change the draw distribution.
    payload: dict[str, Any] = {
        "locality": workload.locality,
        "miss_rate": workload.miss_rate,
        "outstanding": workload.outstanding,
        "read_fraction": workload.read_fraction,
    }
    if workload.pattern != "mmrp":
        payload["pattern"] = workload.pattern
        if workload.pattern == "hotspot":
            payload["hotspot_count"] = workload.hotspot_count
            payload["hotspot_weight"] = workload.hotspot_weight
    if workload.bursty:
        payload["burst_on"] = workload.burst_on
        payload["burst_off"] = workload.burst_off
    return payload


def workload_from_payload(payload: dict[str, Any]) -> WorkloadConfig:
    return WorkloadConfig(**payload)


def params_payload(params: SimulationParams) -> dict[str, Any]:
    # ``params.scheduler`` and ``params.replicas`` are deliberately
    # omitted: the bit-exact schedulers are behavior-identical (enforced
    # by the kernel equivalence tests) and a lockstep batch is just N
    # independent seeds, so cache keys and result payloads must not
    # depend on which scheduler — or how wide a batch — computed a
    # point.  The one exception is ``"columnar"``: its results are only
    # *statistically* equivalent, so they carry an explicit
    # ``"fidelity": "statistical"`` tag.  The tag is part of the
    # canonical payload, which makes columnar cache entries
    # non-canonical by construction — they can never be returned for a
    # request keyed on a bit-exact scheduler (whose payload has no such
    # key), and vice versa.
    payload = {
        "batch_cycles": params.batch_cycles,
        "batches": params.batches,
        "seed": params.seed,
        "deadlock_threshold": params.deadlock_threshold,
        "flow_control": params.flow_control,
    }
    if params.scheduler == "columnar":
        payload["fidelity"] = "statistical"
    return payload


def params_from_payload(payload: dict[str, Any]) -> SimulationParams:
    payload = dict(payload)
    fidelity = payload.pop("fidelity", None)
    if fidelity == "statistical":
        return SimulationParams(**payload, scheduler="columnar")
    return SimulationParams(**payload)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
def summary_payload(summary: Summary) -> dict[str, Any]:
    return {
        "mean": summary.mean,
        "half_width": summary.half_width,
        "batch_means": list(summary.batch_means),
    }


def summary_from_payload(payload: dict[str, Any]) -> Summary:
    return Summary(
        mean=payload["mean"],
        half_width=payload["half_width"],
        batch_means=tuple(payload["batch_means"]),
    )


def result_payload(result: SimulationResult) -> dict[str, Any]:
    return {
        "version": PAYLOAD_VERSION,
        "system": system_payload(result.system),
        "workload": workload_payload(result.workload),
        "params": params_payload(result.params),
        "cycles": result.cycles,
        "latency": summary_payload(result.latency),
        "local_latency": summary_payload(result.local_latency),
        "utilization": {
            level: summary_payload(s) for level, s in result.utilization.items()
        },
        "throughput": (
            summary_payload(result.throughput) if result.throughput is not None else None
        ),
        "remote_transactions": result.remote_transactions,
        "local_transactions": result.local_transactions,
        "flits_moved": result.flits_moved,
    }


def result_from_payload(payload: dict[str, Any]) -> SimulationResult:
    if payload.get("version") != PAYLOAD_VERSION:
        raise ValueError(f"unsupported result payload version: {payload.get('version')!r}")
    return SimulationResult(
        system=system_from_payload(payload["system"]),
        workload=workload_from_payload(payload["workload"]),
        params=params_from_payload(payload["params"]),
        cycles=payload["cycles"],
        latency=summary_from_payload(payload["latency"]),
        local_latency=summary_from_payload(payload["local_latency"]),
        utilization={
            level: summary_from_payload(s)
            for level, s in payload["utilization"].items()
        },
        throughput=(
            summary_from_payload(payload["throughput"])
            if payload["throughput"] is not None
            else None
        ),
        remote_transactions=payload["remote_transactions"],
        local_transactions=payload["local_transactions"],
        flits_moved=payload["flits_moved"],
    )
