"""Process-wide in-memory LRU result cache (the fast tier).

Sits in front of the code-version-salted disk
:class:`~repro.runtime.cache.ResultCache`: the plain CLI runner and the
sweep service both consult it before touching disk, and populate it on
every disk hit or computed point.  Entries are keyed by
``(disk-cache root, code salt, spec key)`` so two different disk caches
never serve each other's results from memory, and a source edit (new
salt) implicitly invalidates the memory tier exactly like the disk one.

Each entry stores the *canonical result text* — the byte-exact
:func:`~repro.runtime.serialization.canonical_json` of the result
payload — plus the deserialized :class:`SimulationResult`.  Serving the
stored text keeps service responses byte-identical to a direct
``run_point``; serving the stored object keeps runner memory hits free
of JSON parse cost.

The cache is bounded twice: by entry count and by total stored text
bytes (UTF-8 length).  Either bound evicts least-recently-used entries;
an entry bigger than the whole byte budget is simply not stored.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..core.simulation import SimulationResult

#: Defaults, overridable via ``REPRO_MEMCACHE_ENTRIES`` /
#: ``REPRO_MEMCACHE_BYTES`` (0 disables the memory tier).
DEFAULT_MAX_ENTRIES = 4096
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class _Entry:
    text: str
    result: SimulationResult
    size: int


@dataclass
class MemCacheStats:
    """Live counters of one :class:`MemCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    bytes: int = 0

    def describe(self) -> str:
        return (
            f"{self.entries} entries, {self.bytes} bytes, "
            f"{self.hits} hits / {self.misses} misses, "
            f"{self.evictions} evictions"
        )


class MemCache:
    """Thread-safe LRU of canonical result texts, bounded twice.

    Thread safety matters because the asyncio service touches the cache
    from the event loop while executor callbacks may complete on other
    threads, and the CLI runner shares one process-wide instance across
    nested sweeps.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_entries < 0 or max_bytes < 0:
            raise ValueError("memcache bounds must be >= 0")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0 and self.max_bytes > 0

    def get(self, key: str) -> "tuple[str, SimulationResult] | None":
        """Hit as ``(canonical_text, result)``, bumping recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry.text, entry.result

    def put(self, key: str, text: str, result: SimulationResult) -> None:
        if not self.enabled:
            return
        size = len(text.encode("utf-8"))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.size
            if size > self.max_bytes:
                return  # would evict everything and still not fit
            self._entries[key] = _Entry(text=text, result=result, size=size)
            self._bytes += size
            while len(self._entries) > self.max_entries or self._bytes > self.max_bytes:
                __, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.size
                self._evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            return dropped

    def stats(self) -> MemCacheStats:
        with self._lock:
            return MemCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                bytes=self._bytes,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def entry_key(cache_root: str, salt: str, spec_key: str) -> str:
    """Memory-tier key: disk root + code salt + point content hash."""
    return f"{cache_root}\0{salt}\0{spec_key}"


def _env_bound(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(value, 0)


#: The process-wide instance shared by the CLI runner and the service.
GLOBAL_MEMCACHE = MemCache(
    max_entries=_env_bound("REPRO_MEMCACHE_ENTRIES", DEFAULT_MAX_ENTRIES),
    max_bytes=_env_bound("REPRO_MEMCACHE_BYTES", DEFAULT_MAX_BYTES),
)
