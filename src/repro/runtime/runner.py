"""Parallel sweep-point execution with caching and telemetry.

:func:`run_points` is the one chokepoint every sweep goes through.  It

* serves points from the on-disk :class:`~repro.runtime.cache.ResultCache`
  when one is active,
* fans the remaining points across a :class:`~concurrent.futures.ProcessPoolExecutor`
  when more than one job is requested (results are collected by index,
  so output order always matches input order regardless of completion
  order), and
* invokes a progress hook after every completed point.

Defaults come from an ambient :func:`runtime_context`, so the CLI can
set ``--jobs``/cache policy once and every nested sweep — including the
memoized runners in :mod:`repro.experiments._shared` — picks them up
without parameter plumbing.  Outside any context, ``REPRO_JOBS``
selects the job count (default 1: serial, exactly the old behavior)
and ``REPRO_CACHE_DIR`` activates the on-disk cache.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Final, Iterable, Iterator, Sequence, cast

from ..core.errors import ConfigurationError
from ..core.simulation import SimulationResult, simulate, simulate_batch
from .cache import ResultCache, prime_code_version_salt
from .memcache import GLOBAL_MEMCACHE, MemCache, entry_key
from .serialization import canonical_json, result_payload
from .spec import PointSpec
from .telemetry import Progress, ProgressHook


class _UnsetType:
    """Sentinel type distinguishing "not passed" from an explicit ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<UNSET>"


_UNSET: Final = _UnsetType()


@dataclass
class _Context:
    """Ambient defaults installed by :func:`runtime_context`."""

    jobs: int | None = None
    cache: ResultCache | None | _UnsetType = _UNSET
    progress: ProgressHook | None = None


_context = _Context()


@contextmanager
def runtime_context(
    jobs: int | None = None,
    cache: ResultCache | None | _UnsetType = _UNSET,
    progress: ProgressHook | None = None,
) -> Iterator[None]:
    """Set default jobs / cache / progress hook for nested ``run_points``.

    ``jobs=None``, ``cache=_UNSET`` or ``progress=None`` leave the
    corresponding outer setting untouched; ``cache=None`` explicitly
    disables caching inside the block.
    """
    saved = _Context(jobs=_context.jobs, cache=_context.cache, progress=_context.progress)
    if jobs is not None:
        _context.jobs = jobs
    if not isinstance(cache, _UnsetType):
        _context.cache = cache
    if progress is not None:
        _context.progress = progress
    try:
        yield
    finally:
        _context.jobs = saved.jobs
        _context.cache = saved.cache
        _context.progress = saved.progress


def resolve_jobs(jobs: int | None = None) -> int:
    """Explicit argument, else ambient context, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        jobs = _context.jobs
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    jobs = int(jobs)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _resolve_cache(cache: ResultCache | None | _UnsetType) -> ResultCache | None:
    if not isinstance(cache, _UnsetType):
        return cache
    if not isinstance(_context.cache, _UnsetType):
        return _context.cache
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return ResultCache(env) if env else None


def _tier_key(cache: ResultCache, spec_key: str) -> str:
    return entry_key(str(cache.root), cache.salt, spec_key)


def cache_lookup(
    cache: ResultCache,
    spec: PointSpec,
    spec_key: str | None = None,
    *,
    mem: MemCache | None = None,
) -> "tuple[str, SimulationResult, str] | None":
    """Two-tier lookup: memory first, then disk (promoting to memory).

    Returns ``(canonical_text, result, tier)`` with ``tier`` either
    ``"mem"`` or ``"disk"``, or ``None`` on a full miss.  The text is
    byte-identical to what a fresh ``run_point`` of the same spec would
    canonically serialize to, so services can return it verbatim.
    ``mem`` selects the memory tier (default: the process-wide LRU).
    """
    tier = mem if mem is not None else GLOBAL_MEMCACHE
    key = _tier_key(cache, spec_key if spec_key is not None else spec.key())
    if tier.enabled:
        hit = tier.get(key)
        if hit is not None:
            return hit[0], hit[1], "mem"
    entry = cache.get_entry(spec)
    if entry is None:
        return None
    text, result = entry
    tier.put(key, text, result)
    return text, result, "disk"


def cache_store(
    cache: ResultCache,
    spec: PointSpec,
    result: SimulationResult,
    spec_key: str | None = None,
    *,
    mem: MemCache | None = None,
) -> str:
    """Write *result* through both tiers; returns its canonical text."""
    tier = mem if mem is not None else GLOBAL_MEMCACHE
    text = canonical_json(result_payload(result))
    cache.put(spec, result)
    key = _tier_key(cache, spec_key if spec_key is not None else spec.key())
    tier.put(key, text, result)
    return text


def _pool(workers: int, cache: ResultCache | None) -> ProcessPoolExecutor:
    """A worker pool whose workers inherit the parent's code salt.

    ``code_version_salt()`` is memoized *per process*, so without
    priming every worker would re-read the whole package's ``.py``
    files on its first cache touch; the initializer threads the salt
    the parent already computed (or the active cache's pinned salt)
    into each worker before it runs anything.
    """
    salt = cache.salt if cache is not None else None
    if salt is None:
        return ProcessPoolExecutor(max_workers=workers)
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=prime_code_version_salt,
        initargs=(salt,),
    )


def _execute(spec: PointSpec) -> SimulationResult:
    """Worker entry point: run one fully-resolved simulation point."""
    return simulate(spec.system, spec.workload, spec.params)


def _execute_batch(spec: PointSpec, seeds: tuple[int, ...]) -> list[SimulationResult]:
    """Worker entry point: run one point's seeds as a lockstep batch."""
    return simulate_batch(spec.system, spec.workload, spec.params, seeds=seeds)


def _replica_spec(spec: PointSpec, seed: int) -> PointSpec:
    """The per-seed cache identity of one replica of *spec*.

    ``replicas`` is forced back to 1 (like ``scheduler`` it is excluded
    from the cache key anyway) so the spec equals the one a plain
    ``run_point`` of that seed would use — batch entries and solo
    entries are interchangeable cache currency.
    """
    return replace(spec, params=replace(spec.params, seed=seed, replicas=1))


def run_replica_batch(
    spec: PointSpec,
    seeds: Sequence[int] | None = None,
    *,
    jobs: int | None = None,
    cache: ResultCache | None | _UnsetType = _UNSET,
    progress: ProgressHook | None = None,
) -> list[SimulationResult]:
    """Run one point under N seeds via the lockstep-batched engine.

    Returns one :class:`SimulationResult` per seed, in seed order.
    ``seeds`` defaults to ``spec.params.seed .. seed + replicas - 1``.
    Each replica is a first-class cache citizen: cached seeds are
    served without simulating them, the missing seeds run as lockstep
    batches (split across the process pool when ``jobs > 1``), and
    every fresh result is stored under its own per-seed spec — exactly
    the entry a solo ``run_point`` of that seed would read or write.

    With ``spec.params.scheduler == "columnar"`` the batch runs on the
    struct-of-arrays columnar engine instead (statistically equivalent
    results, not byte-identical); its per-seed cache entries carry the
    ``"fidelity": "statistical"`` payload tag, so they are a *separate*
    cache population from bit-exact entries of the same point — a
    columnar batch never serves, and is never served by, a ``compiled``
    request for the same seed.
    """
    if seeds is None:
        base = spec.params.seed
        seeds = tuple(range(base, base + spec.params.replicas))
    else:
        seeds = tuple(seeds)
    if not seeds:
        raise ConfigurationError("run_replica_batch needs at least one seed")
    jobs = resolve_jobs(jobs)
    active_cache = _resolve_cache(cache)
    hook = progress if progress is not None else _context.progress

    unique_seeds = tuple(dict.fromkeys(seeds))
    tracker = Progress(total=len(unique_seeds))
    by_seed: dict[int, SimulationResult] = {}
    missing: list[int] = []
    for seed in unique_seeds:
        replica_spec = _replica_spec(spec, seed)
        hit = cache_lookup(active_cache, replica_spec) if active_cache is not None else None
        if hit is not None:
            by_seed[seed] = hit[1]
            tracker.done += 1
            tracker.cache_hits += 1
            if hit[2] == "mem":
                tracker.memcache_hits += 1
            if hook:
                hook(tracker)
        else:
            missing.append(seed)

    def _record(batch_results: list[SimulationResult]) -> None:
        for result in batch_results:
            seed = result.params.seed
            by_seed[seed] = result
            if active_cache is not None:
                cache_store(active_cache, _replica_spec(spec, seed), result)
            tracker.done += 1
            if hook:
                hook(tracker)

    workers = min(jobs, len(missing))
    if missing and workers <= 1:
        _record(_execute_batch(spec, tuple(missing)))
    elif missing:
        # Contiguous seed chunks, one lockstep batch per worker.
        bound = -(-len(missing) // workers)  # ceil division
        chunks = [
            tuple(missing[start : start + bound])
            for start in range(0, len(missing), bound)
        ]
        with _pool(len(chunks), active_cache) as pool:
            futures = [pool.submit(_execute_batch, spec, chunk) for chunk in chunks]
            for future in as_completed(futures):
                _record(future.result())

    return [by_seed[seed] for seed in seeds]


def run_point(
    spec: PointSpec, *, cache: ResultCache | None | _UnsetType = _UNSET
) -> SimulationResult:
    """Run (or fetch from cache) a single point, always in-process."""
    return run_points([spec], jobs=1, cache=cache)[0]


def run_points(
    specs: "Sequence[PointSpec] | Iterable[PointSpec]",
    *,
    jobs: int | None = None,
    cache: ResultCache | None | _UnsetType = _UNSET,
    progress: ProgressHook | None = None,
) -> list[SimulationResult]:
    """Run every point, in input order, honoring cache and job count."""
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    active_cache = _resolve_cache(cache)
    hook = progress if progress is not None else _context.progress

    tracker = Progress(total=len(specs))
    results: list[SimulationResult | None] = [None] * len(specs)
    # Single-flight within the batch: repeated identical specs coalesce
    # onto one representative computation (points are deterministic, so
    # duplicates would reproduce the same result bit for bit anyway).
    pending: list[int] = []
    followers: dict[int, list[int]] = {}
    rep_by_key: dict[str, int] = {}
    for index, spec in enumerate(specs):
        spec_key = spec.key()
        hit = (
            cache_lookup(active_cache, spec, spec_key)
            if active_cache is not None
            else None
        )
        if hit is not None:
            results[index] = hit[1]
            tracker.done += 1
            tracker.cache_hits += 1
            if hit[2] == "mem":
                tracker.memcache_hits += 1
            if hook:
                hook(tracker)
            continue
        rep = rep_by_key.get(spec_key)
        if rep is None:
            rep_by_key[spec_key] = index
            followers[index] = []
            pending.append(index)
        else:
            followers[rep].append(index)

    def _record(index: int, result: SimulationResult) -> None:
        results[index] = result
        if active_cache is not None:
            cache_store(active_cache, specs[index], result)
        tracker.done += 1
        if hook:
            hook(tracker)
        for dup_index in followers[index]:
            results[dup_index] = result
            tracker.done += 1
            tracker.dedup_hits += 1
            if hook:
                hook(tracker)

    if pending and jobs == 1:
        for index in pending:
            _record(index, _execute(specs[index]))
    elif pending:
        with _pool(min(jobs, len(pending)), active_cache) as pool:
            futures = {pool.submit(_execute, specs[i]): i for i in pending}
            for future in as_completed(futures):
                _record(futures[future], future.result())

    return cast("list[SimulationResult]", results)  # every slot is filled above
