"""Parallel sweep-point execution with caching and telemetry.

:func:`run_points` is the one chokepoint every sweep goes through.  It

* serves points from the on-disk :class:`~repro.runtime.cache.ResultCache`
  when one is active,
* fans the remaining points across a :class:`~concurrent.futures.ProcessPoolExecutor`
  when more than one job is requested (results are collected by index,
  so output order always matches input order regardless of completion
  order), and
* invokes a progress hook after every completed point.

Defaults come from an ambient :func:`runtime_context`, so the CLI can
set ``--jobs``/cache policy once and every nested sweep — including the
memoized runners in :mod:`repro.experiments._shared` — picks them up
without parameter plumbing.  Outside any context, ``REPRO_JOBS``
selects the job count (default 1: serial, exactly the old behavior)
and ``REPRO_CACHE_DIR`` activates the on-disk cache.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from typing import Iterable, Sequence

from ..core.errors import ConfigurationError
from ..core.simulation import SimulationResult, simulate
from .cache import ResultCache
from .spec import PointSpec
from .telemetry import Progress, ProgressHook

_UNSET = object()

#: Ambient defaults installed by :func:`runtime_context`.
_context: dict = {"jobs": None, "cache": _UNSET, "progress": None}


@contextmanager
def runtime_context(jobs=None, cache=_UNSET, progress=None):
    """Set default jobs / cache / progress hook for nested ``run_points``.

    ``jobs=None``, ``cache=_UNSET`` or ``progress=None`` leave the
    corresponding outer setting untouched; ``cache=None`` explicitly
    disables caching inside the block.
    """
    saved = dict(_context)
    if jobs is not None:
        _context["jobs"] = jobs
    if cache is not _UNSET:
        _context["cache"] = cache
    if progress is not None:
        _context["progress"] = progress
    try:
        yield
    finally:
        _context.update(saved)


def resolve_jobs(jobs: int | None = None) -> int:
    """Explicit argument, else ambient context, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        jobs = _context["jobs"]
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    jobs = int(jobs)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _resolve_cache(cache) -> ResultCache | None:
    if cache is not _UNSET:
        return cache
    if _context["cache"] is not _UNSET:
        return _context["cache"]
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return ResultCache(env) if env else None


def _execute(spec: PointSpec) -> SimulationResult:
    """Worker entry point: run one fully-resolved simulation point."""
    return simulate(spec.system, spec.workload, spec.params)


def run_point(spec: PointSpec, *, cache=_UNSET) -> SimulationResult:
    """Run (or fetch from cache) a single point, always in-process."""
    return run_points([spec], jobs=1, cache=cache)[0]


def run_points(
    specs: "Sequence[PointSpec] | Iterable[PointSpec]",
    *,
    jobs: int | None = None,
    cache=_UNSET,
    progress: ProgressHook | None = None,
) -> list[SimulationResult]:
    """Run every point, in input order, honoring cache and job count."""
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    active_cache = _resolve_cache(cache)
    hook = progress if progress is not None else _context["progress"]

    tracker = Progress(total=len(specs))
    results: list[SimulationResult | None] = [None] * len(specs)
    pending: list[int] = []
    for index, spec in enumerate(specs):
        hit = active_cache.get(spec) if active_cache is not None else None
        if hit is not None:
            results[index] = hit
            tracker.done += 1
            tracker.cache_hits += 1
            if hook:
                hook(tracker)
        else:
            pending.append(index)

    def _record(index: int, result: SimulationResult) -> None:
        results[index] = result
        if active_cache is not None:
            active_cache.put(specs[index], result)
        tracker.done += 1
        if hook:
            hook(tracker)

    if pending and jobs == 1:
        for index in pending:
            _record(index, _execute(specs[index]))
    elif pending:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(_execute, specs[i]): i for i in pending}
            for future in as_completed(futures):
                _record(futures[future], future.result())

    return results  # type: ignore[return-value]  # every slot is filled above
