"""repro.runtime — parallel sweep execution, result caching, telemetry.

The substrate under every figure sweep:

* :class:`PointSpec` — a content-hashable description of one
  ``simulate()`` call with a deterministically derived per-point seed;
* :class:`ResultCache` — content-addressed on-disk results under
  ``results/.cache/<code-salt>/``, invalidated implicitly whenever the
  simulator source changes, with :meth:`~ResultCache.prune` (LRU
  eviction to a byte budget) and :meth:`~ResultCache.stats`;
* :class:`MemCache` — a process-wide in-memory LRU tier in front of the
  disk cache (bounded by entries and bytes), shared by the CLI runner
  and the :mod:`repro.service` sweep server;
* :func:`run_points` — ordered fan-out of independent points across
  worker processes (``--jobs`` / ``REPRO_JOBS``), cache-aware (both
  tiers), single-flight deduplicated within a batch, with a per-point
  progress hook;
* :func:`runtime_context` — ambient defaults so the experiments CLI can
  configure jobs/cache once for all nested sweeps.

``run_points`` with one job and no cache is byte-for-byte the old
serial behavior; with N jobs it produces identical results in
identical order, just faster.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    PruneReport,
    ResultCache,
    code_version_salt,
    prime_code_version_salt,
)
from .memcache import GLOBAL_MEMCACHE, MemCache, MemCacheStats
from .runner import (
    cache_lookup,
    cache_store,
    resolve_jobs,
    run_point,
    run_points,
    runtime_context,
)
from .spec import PointSpec, derive_point_seed
from .telemetry import Progress, ProgressHook, ProgressPrinter

__all__ = [
    "DEFAULT_CACHE_DIR",
    "GLOBAL_MEMCACHE",
    "CacheStats",
    "MemCache",
    "MemCacheStats",
    "PointSpec",
    "Progress",
    "ProgressHook",
    "ProgressPrinter",
    "PruneReport",
    "ResultCache",
    "cache_lookup",
    "cache_store",
    "code_version_salt",
    "derive_point_seed",
    "prime_code_version_salt",
    "resolve_jobs",
    "run_point",
    "run_points",
    "runtime_context",
]
