"""repro.runtime — parallel sweep execution, result caching, telemetry.

The substrate under every figure sweep:

* :class:`PointSpec` — a content-hashable description of one
  ``simulate()`` call with a deterministically derived per-point seed;
* :class:`ResultCache` — content-addressed on-disk results under
  ``results/.cache/<code-salt>/``, invalidated implicitly whenever the
  simulator source changes;
* :func:`run_points` — ordered fan-out of independent points across
  worker processes (``--jobs`` / ``REPRO_JOBS``), cache-aware, with a
  per-point progress hook;
* :func:`runtime_context` — ambient defaults so the experiments CLI can
  configure jobs/cache once for all nested sweeps.

``run_points`` with one job and no cache is byte-for-byte the old
serial behavior; with N jobs it produces identical results in
identical order, just faster.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, code_version_salt
from .runner import resolve_jobs, run_point, run_points, runtime_context
from .spec import PointSpec, derive_point_seed
from .telemetry import Progress, ProgressHook, ProgressPrinter

__all__ = [
    "DEFAULT_CACHE_DIR",
    "PointSpec",
    "Progress",
    "ProgressHook",
    "ProgressPrinter",
    "ResultCache",
    "code_version_salt",
    "derive_point_seed",
    "resolve_jobs",
    "run_point",
    "run_points",
    "runtime_context",
]
