"""Declarative routing specifications — the spec algebra.

A :class:`RoutingSpec` describes a routing algorithm as *pure data*:
for every ``(occupied channel, destination)`` pair, the set of output
channels the algorithm may legally pick next.  Turn-model restrictions,
virtual-channel/dateline classes, escape channels, and deflection
productivity rules are all just shapes of that relation — there is no
algorithm-specific verifier code.  The CDG prover
(:mod:`repro.checkers.cdg`) consumes a spec and decides deadlock
freedom from the relation alone; the runtime auditor
(:mod:`repro.audit.invariants`) consumes the same tables for
route-conformance, so the static and dynamic layers can never disagree
about what a router is allowed to do.

Conventions:

* Channel names are opaque strings.  The builders here use
  ``"<node>.<direction>"`` for mesh/torus links (with a ``.vc<k>``
  suffix when virtual channels are in play) and ``"ring.<i>"`` for the
  links of a plain unidirectional ring.
* Destination tokens are opaque hashables — PM ids for meshes,
  ``(pm, framing)`` pairs for the hierarchical ring walks built in
  :mod:`repro.checkers.model`.
* The pseudo-channel :data:`DELIVER` in a legal-output set means the
  packet may eject into the destination's (unbounded) sink, which never
  blocks and therefore never appears in the dependency graph.

Builders provided here are the pure-geometry ones: e-cube mesh (the
paper's fabric), 2D torus with and without dateline virtual channels,
minimal-adaptive mesh with an e-cube escape subnetwork, and bufferless
ring deflection (HiRD-style).  The hierarchical-ring spec is derived
from real network walks and therefore lives with the network builders
in :mod:`repro.checkers.model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Hashable, Mapping

from ..mesh.routing import LOCAL
from ..mesh.topology import MeshShape, TorusShape

#: Pseudo-channel: the packet may eject at its destination.  Ejection
#: sinks are unbounded by protocol-deadlock rule (DESIGN.md §4), so
#: delivery never blocks and never contributes a CDG edge.
DELIVER = "<deliver>"


@dataclass(frozen=True)
class SpecChannel:
    """One named channel (link/buffer class) of a routing spec.

    ``rotation_group`` marks channels whose wait-for cycles are
    discharged by simultaneous-rotation flow control (the hierarchical
    ring's bypass argument): a CDG cycle lying entirely inside one
    group is admissible.  ``escape`` marks membership in a Duato escape
    subnetwork.
    """

    name: str
    rotation_group: str | None = None
    escape: bool = False


@dataclass(frozen=True, eq=False)
class RoutingSpec:
    """A routing algorithm as data (see the module docstring).

    ``kind`` is ``"deterministic"``, ``"adaptive"``, or
    ``"deflection"``; the prover only treats ``"deflection"``
    specially (cycles are discharged by the livelock bound instead of
    escape analysis).  ``productive`` and ``priority`` are only
    meaningful for deflection specs: productive outputs are the subset
    of legal outputs that make guaranteed progress, and ``priority``
    must be the monotone ``"age"`` arbitration for the livelock bound
    to hold.
    """

    name: str
    kind: str
    channels: tuple[SpecChannel, ...]
    starts: Mapping[Hashable, frozenset[str]]
    moves: Mapping[tuple[str, Hashable], frozenset[str]]
    productive: Mapping[tuple[str, Hashable], frozenset[str]] | None = None
    priority: str | None = None


def _freeze(
    moves: Mapping[tuple[str, Hashable], set[str]]
) -> dict[tuple[str, Hashable], frozenset[str]]:
    return {state: frozenset(outputs) for state, outputs in moves.items()}


# ----------------------------------------------------------------------
# e-cube mesh (the paper's fabric)
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def mesh_legal_outputs(shape: MeshShape) -> Mapping[tuple[int, int], frozenset[str]]:
    """Legal output directions per ``(node, destination)`` — the shared
    e-cube legality table.

    This is the single source of truth for dimension-order legality:
    the static prover derives the mesh spec from it and the runtime
    auditor checks every head-flit proposal against it, so the two
    layers cannot drift apart.  For the deterministic e-cube algorithm
    every entry is a singleton: correct X (E/W) before Y (S/N), then
    eject ``LOCAL``.
    """
    table: dict[tuple[int, int], frozenset[str]] = {}
    for node in range(shape.processors):
        node_x, node_y = shape.coordinates(node)
        for dest in range(shape.processors):
            dest_x, dest_y = shape.coordinates(dest)
            if node_x < dest_x:
                legal = frozenset({"E"})
            elif node_x > dest_x:
                legal = frozenset({"W"})
            elif node_y < dest_y:
                legal = frozenset({"S"})
            elif node_y > dest_y:
                legal = frozenset({"N"})
            else:
                legal = frozenset({LOCAL})
            table[(node, dest)] = legal
    return table


def ecube_mesh_spec(shape: MeshShape) -> RoutingSpec:
    """The paper's deterministic e-cube XY mesh as a spec."""
    legal = mesh_legal_outputs(shape)
    channels = tuple(
        SpecChannel(f"{node}.{direction}")
        for node in range(shape.processors)
        for direction in sorted(shape.neighbors(node))
    )
    starts: dict[Hashable, frozenset[str]] = {}
    moves: dict[tuple[str, Hashable], set[str]] = {}
    for dest in range(shape.processors):
        first: set[str] = set()
        for source in range(shape.processors):
            if source == dest:
                continue
            for direction in legal[(source, dest)]:
                first.add(f"{source}.{direction}")
        starts[dest] = frozenset(first)
    for node in range(shape.processors):
        for direction, neighbor in shape.neighbors(node).items():
            channel = f"{node}.{direction}"
            for dest in range(shape.processors):
                moves[(channel, dest)] = {
                    DELIVER if d == LOCAL else f"{neighbor}.{d}"
                    for d in legal[(neighbor, dest)]
                }
    return RoutingSpec(
        name=f"ecube-mesh-{shape.side}x{shape.side}",
        kind="deterministic",
        channels=channels,
        starts=starts,
        moves=_freeze(moves),
    )


# ----------------------------------------------------------------------
# 2D torus with dateline virtual channels
# ----------------------------------------------------------------------
def _torus_offset(side: int, here: int, there: int) -> int:
    """Signed shortest-way-around offset; ties break positive."""
    delta = (there - here) % side
    if delta == 0:
        return 0
    if delta <= side - delta:
        return delta
    return delta - side


def _torus_route(
    shape: TorusShape, source: int, destination: int
) -> list[tuple[int, str, bool]]:
    """The dimension-order torus route as ``(node, direction, wraps)``
    hops; ``wraps`` is true for the end-around hop of its dimension."""
    hops: list[tuple[int, str, bool]] = []
    x, y = shape.coordinates(source)
    dest_x, dest_y = shape.coordinates(destination)
    off_x = _torus_offset(shape.side, x, dest_x)
    step, direction = (1, "E") if off_x > 0 else (-1, "W")
    for _ in range(abs(off_x)):
        node = shape.pm_id(x, y)
        wraps = (direction == "E" and x == shape.side - 1) or (
            direction == "W" and x == 0
        )
        hops.append((node, direction, wraps))
        x = (x + step) % shape.side
    off_y = _torus_offset(shape.side, y, dest_y)
    step, direction = (1, "S") if off_y > 0 else (-1, "N")
    for _ in range(abs(off_y)):
        node = shape.pm_id(x, y)
        wraps = (direction == "S" and y == shape.side - 1) or (
            direction == "N" and y == 0
        )
        hops.append((node, direction, wraps))
        y = (y + step) % shape.side
    return hops


def torus_spec(shape: TorusShape, dateline: bool = True) -> RoutingSpec:
    """Dimension-order routing on a 2D torus, as a spec.

    With ``dateline=True`` each unidirectional ring of each dimension
    gets two virtual-channel classes: packets travel on ``vc0`` until
    the hop that crosses the end-around (dateline) link, which — along
    with every later hop in that dimension — uses ``vc1``.  Minimal
    routes wrap at most once per dimension, so the ``vc0`` chains never
    include a wrap link, ``vc1`` chains never re-wrap, and the CDG is
    acyclic.  With ``dateline=False`` the wrap links close each ring's
    dependency cycle and the prover must reject the spec — the negative
    fixture for the witness machinery.
    """
    seen: set[str] = set()
    channels: list[SpecChannel] = []
    starts: dict[Hashable, frozenset[str]] = {}
    moves: dict[tuple[str, Hashable], set[str]] = {}

    def channel_name(node: int, direction: str, wrapped: bool) -> str:
        base = f"{node}.{direction}"
        if dateline:
            base = f"{base}.vc{1 if wrapped else 0}"
        if base not in seen:
            seen.add(base)
            channels.append(SpecChannel(base))
        return base

    for source in range(shape.processors):
        for destination in range(shape.processors):
            if source == destination:
                continue
            route = _torus_route(shape, source, destination)
            names: list[str] = []
            wrapped = False
            current_dim = ""
            for node, direction, wraps in route:
                dim = "x" if direction in ("E", "W") else "y"
                if dim != current_dim:
                    current_dim = dim
                    wrapped = False
                wrapped = wrapped or wraps
                names.append(channel_name(node, direction, wrapped))
            starts.setdefault(destination, frozenset())
            starts[destination] = starts[destination] | {names[0]}
            for here, nxt in zip(names, names[1:]):
                moves.setdefault((here, destination), set()).add(nxt)
            moves.setdefault((names[-1], destination), set()).add(DELIVER)
    suffix = "dateline" if dateline else "no-dateline"
    return RoutingSpec(
        name=f"torus-{shape.side}x{shape.side}-{suffix}",
        kind="deterministic",
        channels=tuple(channels),
        starts=starts,
        moves=_freeze(moves),
    )


# ----------------------------------------------------------------------
# minimal-adaptive mesh with an e-cube escape subnetwork
# ----------------------------------------------------------------------
def _minimal_directions(shape: MeshShape, node: int, dest: int) -> frozenset[str]:
    node_x, node_y = shape.coordinates(node)
    dest_x, dest_y = shape.coordinates(dest)
    directions: set[str] = set()
    if node_x < dest_x:
        directions.add("E")
    if node_x > dest_x:
        directions.add("W")
    if node_y < dest_y:
        directions.add("S")
    if node_y > dest_y:
        directions.add("N")
    return frozenset(directions)


def adaptive_mesh_spec(shape: MeshShape) -> RoutingSpec:
    """Minimal-adaptive mesh routing, Duato-style.

    Every physical link carries an adaptive class (``.adp``, any
    minimal direction allowed — the full turn set, whose CDG is cyclic
    for any side >= 2) and an escape class (``.esc``, dimension-order
    only).  From every state the packet may fall back to the escape
    class, whose own dependency graph is the acyclic e-cube CDG, so the
    prover discharges the adaptive cycles by escape-subnetwork
    analysis.
    """
    legal = mesh_legal_outputs(shape)
    channels: list[SpecChannel] = []
    for node in range(shape.processors):
        for direction in sorted(shape.neighbors(node)):
            channels.append(SpecChannel(f"{node}.{direction}.adp"))
            channels.append(SpecChannel(f"{node}.{direction}.esc", escape=True))

    def nexts(at: int, dest: int) -> set[str]:
        if at == dest:
            return {DELIVER}
        out = {f"{at}.{d}.adp" for d in _minimal_directions(shape, at, dest)}
        out |= {f"{at}.{d}.esc" for d in legal[(at, dest)]}
        return out

    starts: dict[Hashable, frozenset[str]] = {}
    moves: dict[tuple[str, Hashable], set[str]] = {}
    for dest in range(shape.processors):
        first: set[str] = set()
        for source in range(shape.processors):
            if source != dest:
                first |= nexts(source, dest)
        starts[dest] = frozenset(first)
        for node in range(shape.processors):
            for direction, neighbor in shape.neighbors(node).items():
                for cls in ("adp", "esc"):
                    moves[(f"{node}.{direction}.{cls}", dest)] = nexts(
                        neighbor, dest
                    )
    return RoutingSpec(
        name=f"adaptive-mesh-{shape.side}x{shape.side}",
        kind="adaptive",
        channels=tuple(channels),
        starts=starts,
        moves=_freeze(moves),
    )


# ----------------------------------------------------------------------
# bufferless ring deflection (HiRD-style)
# ----------------------------------------------------------------------
def ring_deflection_spec(nodes: int, name: str | None = None) -> RoutingSpec:
    """Bufferless deflection on a unidirectional ring of *nodes* PMs.

    Channel ``ring.i`` is the link from node *i* to ``(i+1) % nodes``.
    A flit that reaches its destination may eject or — if the ejection
    port lost arbitration — be deflected onward around the ring; no
    flit ever waits in a buffer, so deadlock is impossible and the
    proof obligation is the livelock bound: arbitration is by packet
    age (monotone priority) and the single continue output is always
    productive on a unidirectional ring, so the oldest packet delivers
    within one lap and every packet eventually becomes oldest.
    """
    channels = tuple(SpecChannel(f"ring.{i}") for i in range(nodes))
    starts: dict[Hashable, frozenset[str]] = {}
    moves: dict[tuple[str, Hashable], set[str]] = {}
    productive: dict[tuple[str, Hashable], frozenset[str]] = {}
    for dest in range(nodes):
        starts[dest] = frozenset(
            f"ring.{source}" for source in range(nodes) if source != dest
        )
        for i in range(nodes):
            at = (i + 1) % nodes
            onward = f"ring.{at}"
            if at == dest:
                moves[(f"ring.{i}", dest)] = {DELIVER, onward}
            else:
                moves[(f"ring.{i}", dest)] = {onward}
                productive[(f"ring.{i}", dest)] = frozenset({onward})
    return RoutingSpec(
        name=name or f"ring-deflection-{nodes}",
        kind="deflection",
        channels=channels,
        starts=starts,
        moves=_freeze(moves),
        productive=productive,
        priority="age",
    )
