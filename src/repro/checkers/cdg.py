"""The channel-dependency-graph (CDG) deadlock prover.

Consumes a declarative :class:`~repro.checkers.specs.RoutingSpec` — a
pure-data description of which output channels a routing algorithm may
legally pick per (occupied channel, destination) — and decides, by
graph analysis alone, whether the algorithm is deadlock-free on the
described topology:

1. **Reachability.**  The *extended* CDG is built over the reachable
   state space only: starting from the spec's injection channels, every
   ``(channel, destination)`` pair a packet can actually occupy is
   enumerated, and an edge ``c1 -> c2`` is recorded when some reachable
   packet holding ``c1`` may next request ``c2``.  Restricting to
   reachable states is what lets adaptive algorithms whose *full*
   output relation is cyclic still be certified (Duato's observation
   that only dependencies routing can produce matter).
2. **Cycle detection.**  Strongly connected components of the CDG; an
   acyclic CDG certifies outright (Dally & Seitz).
3. **Discharge rules** for the cyclic cases, applied per component:

   * *Rotation progress* — every channel of the component carries the
     same non-``None`` ``rotation_group``.  This is the hierarchical
     ring's bypass argument: a full ring of packet-sized transit
     buffers advances simultaneously, so the rotation cycle always
     makes progress (see DESIGN.md §6.2).
   * *Escape subnetwork* — Duato-style: the CDG restricted to the
     spec's escape channels is acyclic, and every reachable state can
     either deliver or move into an escape channel.  Then any cycle
     containing a non-escape channel is harmless (blocked packets fall
     back to the escape subnetwork, which drains).
   * *Deflection livelock bound* — for bufferless deflection specs
     channels never block, so deadlock is impossible by construction;
     the obligation shifts to livelock: the spec must declare a
     monotone (``"age"``) priority and every reachable state must
     retain at least one *productive* output, which bounds the number
     of deflections the oldest packet can suffer.

4. **Witness.**  Any undischarged cycle is rejected together with a
   *minimal cycle witness*: the shortest cycle inside the offending
   component, each edge annotated with a destination that induces it.
   :func:`replay_witness` re-validates a witness against the spec — the
   property tests use it to prove emitted witnesses are real reachable
   dependency chains, not artifacts of the search.

Everything is deterministic: iteration orders are sorted, so the same
spec always yields the same verdict, method, and witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping, Sequence, TypeVar

from .specs import DELIVER, RoutingSpec

#: Graph node type for the SCC helper (channel names here; the model
#: layer's legacy callers use ints and tuples).
_N = TypeVar("_N", bound=Hashable)


# ----------------------------------------------------------------------
# generic graph helpers (shared with repro.checkers.model)
# ----------------------------------------------------------------------
def strongly_connected_components(
    nodes: Sequence[_N], edges: Mapping[_N, set[_N]]
) -> list[list[_N]]:
    """Tarjan's SCC algorithm, iterative (rings can be deep)."""
    index_of: dict[_N, int] = {}
    lowlink: dict[_N, int] = {}
    on_stack: set[_N] = set()
    stack: list[_N] = []
    components: list[list[_N]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[_N, Iterator[_N]]] = [
            (root, iter(sorted(edges.get(root, ()))))
        ]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(edges.get(successor, ()))))
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[_N] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def nontrivial_sccs(
    nodes: Sequence[_N], edges: Mapping[_N, set[_N]]
) -> list[list[_N]]:
    """SCCs that actually contain a cycle (size > 1 or a self-loop)."""
    return [
        component
        for component in strongly_connected_components(nodes, edges)
        if len(component) > 1
        or component[0] in edges.get(component[0], set())
    ]


# ----------------------------------------------------------------------
# proof results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CycleWitness:
    """A minimal undischarged CDG cycle, with inducing destinations.

    ``channels[i] -> channels[(i + 1) % len]`` is a CDG edge induced by
    a packet heading to ``destinations[i]`` (the destination tokens are
    whatever the spec used — PM ids for meshes, ``(pm, framing)`` pairs
    for rings).
    """

    channels: tuple[str, ...]
    destinations: tuple[Hashable, ...]

    def __len__(self) -> int:
        return len(self.channels)

    def format(self) -> str:
        hops = " -> ".join(self.channels)
        return f"[{hops} -> {self.channels[0]}]"

    def payload(self) -> dict[str, object]:
        """Stable JSON form (documented in :mod:`repro.checkers.cli`)."""
        return {
            "channels": list(self.channels),
            "destinations": [str(d) for d in self.destinations],
        }

    @classmethod
    def from_payload(cls, data: Mapping[str, object]) -> "CycleWitness":
        """Rebuild from :meth:`payload` output (destinations come back
        as their string forms — payload/from_payload round-trips)."""
        channels_raw = data.get("channels")
        destinations_raw = data.get("destinations")
        channels = (
            tuple(str(c) for c in channels_raw)
            if isinstance(channels_raw, list)
            else ()
        )
        destinations: tuple[Hashable, ...] = (
            tuple(str(d) for d in destinations_raw)
            if isinstance(destinations_raw, list)
            else ()
        )
        return cls(channels=channels, destinations=destinations)


@dataclass(frozen=True)
class ProofResult:
    """Verdict of :func:`prove` for one spec."""

    spec: str
    kind: str
    certified: bool
    #: how every cycle was discharged: "acyclic-cdg",
    #: "rotation-progress", "escape-subnetwork",
    #: "deflection-livelock-bound", a "+"-joined mix, or "" on rejection
    method: str
    detail: str
    witness: CycleWitness | None
    channels: int = 0
    states: int = 0
    edges: int = 0

    def format(self) -> str:
        verdict = "certified" if self.certified else "REJECTED"
        extra = f" via {self.method}" if self.certified and self.method else ""
        tail = f": {self.detail}" if self.detail else ""
        return (
            f"{self.spec}: {verdict}{extra} "
            f"({self.channels} channels, {self.states} states, "
            f"{self.edges} CDG edges){tail}"
        )

    def payload(self) -> dict[str, object]:
        """Stable JSON form (documented in :mod:`repro.checkers.cli`)."""
        out: dict[str, object] = {
            "spec": self.spec,
            "kind": self.kind,
            "certified": self.certified,
            "method": self.method,
            "detail": self.detail,
            "channels": self.channels,
            "states": self.states,
            "edges": self.edges,
        }
        out["witness"] = self.witness.payload() if self.witness else None
        return out

    @classmethod
    def from_payload(cls, data: Mapping[str, object]) -> "ProofResult":
        """Rebuild from :meth:`payload` output."""
        witness_data = data.get("witness")
        witness = (
            CycleWitness.from_payload(witness_data)
            if isinstance(witness_data, Mapping)
            else None
        )

        def as_int(key: str) -> int:
            value = data.get(key, 0)
            return value if isinstance(value, int) else 0

        return cls(
            spec=str(data["spec"]),
            kind=str(data["kind"]),
            certified=bool(data["certified"]),
            method=str(data["method"]),
            detail=str(data["detail"]),
            witness=witness,
            channels=as_int("channels"),
            states=as_int("states"),
            edges=as_int("edges"),
        )


@dataclass
class _Cdg:
    """The reachable extended CDG of one spec."""

    #: reachable (channel, destination) occupancies
    states: set[tuple[str, Hashable]] = field(default_factory=set)
    #: channel -> set of successor channels
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: (c1, c2) -> a destination inducing that edge (first found wins,
    #: deterministic because exploration order is sorted)
    edge_dest: dict[tuple[str, str], Hashable] = field(default_factory=dict)
    #: reachable states with no legal output at all (routing dead ends)
    dead_ends: list[tuple[str, Hashable]] = field(default_factory=list)


def _build_cdg(spec: RoutingSpec) -> _Cdg:
    graph = _Cdg()
    pending: list[tuple[str, Hashable]] = []
    for dest in sorted(spec.starts, key=str):
        for channel in sorted(spec.starts[dest]):
            state = (channel, dest)
            if state not in graph.states:
                graph.states.add(state)
                pending.append(state)
    while pending:
        channel, dest = pending.pop()
        outputs = spec.moves.get((channel, dest))
        if not outputs:
            graph.dead_ends.append((channel, dest))
            continue
        for successor in sorted(outputs):
            if successor == DELIVER:
                continue
            graph.edges.setdefault(channel, set()).add(successor)
            graph.edge_dest.setdefault((channel, successor), dest)
            state = (successor, dest)
            if state not in graph.states:
                graph.states.add(state)
                pending.append(state)
    return graph


def _shortest_cycle(
    component: list[str], edges: Mapping[str, set[str]]
) -> list[str]:
    """Shortest cycle through the component's edges (deterministic)."""
    members = set(component)
    best: list[str] = []
    for origin in sorted(component):
        # BFS from origin back to origin, restricted to the component.
        parent: dict[str, str] = {}
        frontier = [origin]
        found: list[str] | None = None
        while frontier and found is None:
            next_frontier: list[str] = []
            for node in frontier:
                for successor in sorted(edges.get(node, ())):
                    if successor not in members:
                        continue
                    if successor == origin:
                        # reconstruct origin -> ... -> node
                        cycle = [node]
                        while cycle[-1] != origin:
                            cycle.append(parent[cycle[-1]])
                        cycle.reverse()
                        found = cycle
                        break
                    if successor not in parent:
                        parent[successor] = node
                        next_frontier.append(successor)
                if found is not None:
                    break
            frontier = next_frontier
        if found is not None and (not best or len(found) < len(best)):
            best = found
        if len(best) == 1:
            break  # a self-loop cannot be beaten
    return best


def _witness_for(component: list[str], graph: _Cdg) -> CycleWitness:
    cycle = _shortest_cycle(component, graph.edges)
    destinations = tuple(
        graph.edge_dest[(cycle[i], cycle[(i + 1) % len(cycle)])]
        for i in range(len(cycle))
    )
    return CycleWitness(channels=tuple(cycle), destinations=destinations)


def _escape_analysis(spec: RoutingSpec, graph: _Cdg) -> str | None:
    """Duato conditions; ``None`` when the escape subnetwork discharges.

    (a) the CDG restricted to escape channels is acyclic, and (b) every
    reachable state can deliver or step into an escape channel.
    """
    escape = {c.name for c in spec.channels if c.escape}
    if not escape:
        return "spec declares no escape channels"
    escape_edges = {
        c1: {c2 for c2 in successors if c2 in escape}
        for c1, successors in graph.edges.items()
        if c1 in escape
    }
    cyclic = nontrivial_sccs(sorted(escape), escape_edges)
    if cyclic:
        return (
            "escape subnetwork is itself cyclic: "
            f"[{', '.join(sorted(cyclic[0]))}]"
        )
    for channel, dest in sorted(graph.states, key=lambda s: (s[0], str(s[1]))):
        outputs = spec.moves.get((channel, dest), frozenset())
        if DELIVER in outputs:
            continue
        if not any(c in escape for c in outputs):
            return (
                f"state ({channel}, dest {dest}) has no escape output: "
                f"legal set {sorted(outputs)}"
            )
    return None


def _deflection_analysis(spec: RoutingSpec, graph: _Cdg) -> str | None:
    """Livelock bound for bufferless deflection; ``None`` when it holds.

    Deflection channels never block (no flit ever waits on a buffer),
    so deadlock is structurally impossible; the proof obligation is a
    livelock bound instead: with a monotone age priority the oldest
    packet always wins arbitration, and as long as every reachable
    state keeps a productive output, it takes one within bounded time —
    so every packet eventually becomes oldest and delivers.
    """
    if spec.priority != "age":
        return (
            f"deflection spec declares priority {spec.priority!r}; the "
            "livelock bound needs a monotone ('age') priority"
        )
    productive = spec.productive or {}
    for channel, dest in sorted(graph.states, key=lambda s: (s[0], str(s[1]))):
        outputs = spec.moves.get((channel, dest), frozenset())
        if DELIVER in outputs:
            continue
        good = productive.get((channel, dest), frozenset())
        if not good:
            return (
                f"state ({channel}, dest {dest}) has no productive "
                "output; deflections could circulate it forever"
            )
        if not good <= outputs:
            return (
                f"state ({channel}, dest {dest}) declares productive "
                f"outputs {sorted(good - outputs)} that are not legal"
            )
    return None


def prove(spec: RoutingSpec) -> ProofResult:
    """Decide deadlock freedom of *spec* (see the module docstring)."""
    known = {c.name for c in spec.channels}
    for dest in sorted(spec.starts, key=str):
        unknown = spec.starts[dest] - known
        if unknown:
            return ProofResult(
                spec=spec.name,
                kind=spec.kind,
                certified=False,
                method="",
                detail=f"start channels {sorted(unknown)} are not declared",
                witness=None,
            )
    graph = _build_cdg(spec)

    def result(
        certified: bool,
        method: str,
        detail: str,
        witness: CycleWitness | None = None,
    ) -> ProofResult:
        return ProofResult(
            spec=spec.name,
            kind=spec.kind,
            certified=certified,
            method=method,
            detail=detail,
            witness=witness,
            channels=len(known),
            states=len(graph.states),
            edges=sum(len(s) for s in graph.edges.values()),
        )

    for channel, _dest in sorted(graph.states, key=lambda s: (s[0], str(s[1]))):
        if channel not in known:
            return result(
                False, "", f"move targets undeclared channel {channel!r}"
            )
    if graph.dead_ends:
        channel, dest = min(graph.dead_ends, key=lambda s: (s[0], str(s[1])))
        return result(
            False,
            "",
            f"routing is not total: reachable state ({channel}, "
            f"dest {dest}) has no legal output and cannot deliver",
        )

    components = nontrivial_sccs(sorted(graph.edges), graph.edges)
    if not components:
        return result(True, "acyclic-cdg", "")

    if spec.kind == "deflection":
        problem = _deflection_analysis(spec, graph)
        if problem is None:
            return result(True, "deflection-livelock-bound", "")
        return result(False, "", problem, _witness_for(components[0], graph))

    rotation_of = {c.name: c.rotation_group for c in spec.channels}
    in_escape = {c.name for c in spec.channels if c.escape}
    escape_problem: str | None = None
    escape_checked = False
    methods: list[str] = []
    for component in components:
        groups = {rotation_of[name] for name in component}
        if len(groups) == 1 and None not in groups:
            if "rotation-progress" not in methods:
                methods.append("rotation-progress")
            continue
        if not escape_checked:
            escape_problem = _escape_analysis(spec, graph)
            escape_checked = True
        if escape_problem is None and not set(component) <= in_escape:
            if "escape-subnetwork" not in methods:
                methods.append("escape-subnetwork")
            continue
        detail = (
            "undischarged channel-dependency cycle"
            if escape_problem is None
            else f"undischarged channel-dependency cycle ({escape_problem})"
        )
        witness = _witness_for(component, graph)
        return result(False, "", f"{detail}: {witness.format()}", witness)
    return result(True, "+".join(methods), "")


def replay_witness(spec: RoutingSpec, witness: CycleWitness) -> str | None:
    """Re-validate *witness* against *spec*; ``None`` when it is real.

    A valid witness is a simple cycle whose every edge is (1) permitted
    by the spec's move relation for the annotated destination and (2)
    *reachable* — some packet can actually occupy the edge's source
    channel while heading to that destination.
    """
    if not witness.channels:
        return "witness has no channels"
    if len(set(witness.channels)) != len(witness.channels):
        return "witness cycle repeats a channel (not a simple cycle)"
    if len(witness.destinations) != len(witness.channels):
        return (
            f"{len(witness.channels)} channels but "
            f"{len(witness.destinations)} destination annotations"
        )
    graph = _build_cdg(spec)
    size = len(witness.channels)
    for i in range(size):
        here = witness.channels[i]
        nxt = witness.channels[(i + 1) % size]
        dest = witness.destinations[i]
        if (here, dest) not in graph.states:
            return (
                f"edge {here} -> {nxt}: state ({here}, dest {dest}) "
                "is not reachable from any injection"
            )
        if nxt not in spec.moves.get((here, dest), frozenset()):
            return (
                f"edge {here} -> {nxt} is not a legal move for "
                f"dest {dest}"
            )
    return None
