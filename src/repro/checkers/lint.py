"""The AST lint engine: rules, findings, suppressions, tree walking.

A :class:`LintRule` couples a code (``RPR001``), a scope (which
top-level ``repro`` sub-packages it applies to) and a check function
mapping a parsed module to :class:`Finding` objects.  Rules register
themselves through the :func:`rule` decorator at import time; the
engine walks a source tree, matches each file against every rule's
scope, and filters the findings through ``# repro: noqa[CODE]``
suppression comments.

Suppressions are deliberate and visible: a bare ``# repro: noqa``
(without a code) suppresses everything on its line but is itself
reported as a finding under ``--strict``, so blanket opt-outs cannot
accumulate silently.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Matches the suppression marker in comments — bare, or carrying the
#: suppressed codes in brackets (``[RPR001,RPR003]``).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9, ]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    code: str
    message: str
    path: str
    line: int
    column: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column + 1}: {self.code} {self.message}"

    def payload(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
        }


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule sees about one source file."""

    path: Path
    relative: str
    source: str
    tree: ast.Module

    def finding(self, code: str, message: str, node: ast.AST) -> Finding:
        return Finding(
            code=code,
            message=message,
            path=self.relative,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
        )


CheckFunction = Callable[[ModuleContext], Iterable[Finding]]


@dataclass(frozen=True)
class LintRule:
    """A registered lint rule."""

    code: str
    name: str
    description: str
    scope: tuple[str, ...]
    check: CheckFunction

    def applies_to(self, relative: str) -> bool:
        """Whether *relative* (posix path under the tree root) is in scope."""
        if not self.scope:
            return True
        first = relative.split("/", 1)[0]
        return first in self.scope


_REGISTRY: dict[str, LintRule] = {}


def rule(
    code: str, name: str, description: str, scope: tuple[str, ...]
) -> Callable[[CheckFunction], CheckFunction]:
    """Class/function decorator registering a check under *code*."""

    def decorate(check: CheckFunction) -> CheckFunction:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code!r}")
        _REGISTRY[code] = LintRule(
            code=code, name=name, description=description, scope=scope, check=check
        )
        return check

    return decorate


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, sorted by code."""
    from . import rules as _rules  # noqa: F401  (registration side effects)

    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


@dataclass
class Suppressions:
    """Per-line ``# repro: noqa`` markers of one file."""

    #: line -> frozenset of codes; an empty set means "suppress all".
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        found: dict[int, frozenset[str]] = {}
        # Tokenize so only real comments count — the marker text may
        # legitimately appear inside docstrings (this package documents
        # itself) without suppressing anything.
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenizeError, SyntaxError):
            return cls(found)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            lineno = token.start[0]
            codes = match.group("codes")
            if codes is None:
                found[lineno] = frozenset()
            else:
                found[lineno] = frozenset(
                    code.strip().upper() for code in codes.split(",") if code.strip()
                )
        return cls(found)

    def suppresses(self, finding: Finding) -> bool:
        codes = self.by_line.get(finding.line)
        if codes is None:
            return False
        return not codes or finding.code in codes

    def blanket_findings(self, relative: str) -> list[Finding]:
        """Report code-less ``# repro: noqa`` markers (strict mode)."""
        return [
            Finding(
                code="RPR000",
                message=(
                    "blanket '# repro: noqa' without a rule code; "
                    "name the codes being suppressed, e.g. noqa[RPR002]"
                ),
                path=relative,
                line=line,
            )
            for line, codes in sorted(self.by_line.items())
            if not codes
        ]


def lint_file(
    path: Path,
    root: Path,
    rules: Iterable[LintRule] | None = None,
    strict: bool = False,
) -> list[Finding]:
    """Lint one file against every in-scope rule."""
    active = tuple(rules) if rules is not None else all_rules()
    relative = path.resolve().relative_to(root.resolve()).as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                code="RPR999",
                message=f"syntax error: {exc.msg}",
                path=relative,
                line=exc.lineno or 1,
            )
        ]
    context = ModuleContext(path=path, relative=relative, source=source, tree=tree)
    suppressions = Suppressions.scan(source)
    findings: list[Finding] = []
    for lint_rule in active:
        if not lint_rule.applies_to(relative):
            continue
        for finding in lint_rule.check(context):
            if not suppressions.suppresses(finding):
                findings.append(finding)
    if strict:
        findings.extend(suppressions.blanket_findings(relative))
    findings.sort(key=lambda f: (f.line, f.column, f.code))
    return findings


def _iter_python_files(root: Path) -> Iterator[Path]:
    for path in sorted(root.rglob("*.py")):
        yield path


def lint_tree(
    root: Path,
    rules: Iterable[LintRule] | None = None,
    strict: bool = False,
) -> list[Finding]:
    """Lint every ``.py`` file under *root* (scopes are relative to it)."""
    active = tuple(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for path in _iter_python_files(root):
        findings.extend(lint_file(path, root, rules=active, strict=strict))
    return findings
