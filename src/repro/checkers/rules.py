"""Simulator-specific lint rules RPR001-RPR005.

Every rule here guards an invariant the simulator's correctness
arguments lean on:

* **RPR001** — reproducibility requires deterministic iteration
  everywhere results are produced; iterating an unordered ``set`` (or a
  set-algebra expression over ``dict.keys()`` views) is the classic
  silent divergence between two runs of "the same" simulation.
* **RPR002** — all randomness must flow through the seeded per-PM
  ``random.Random`` instances; module-level RNG or wall-clock reads
  make results depend on process state.
* **RPR003** — the kernel's propose/resolve/commit/update contract
  only holds when engine-owned state (buffers, engine counters,
  metrics) is mutated from a component's declared phase hooks.
* **RPR004** — cycle/flit counters are integers; accumulating floats
  into them rounds differently across platforms and run lengths.
* **RPR005** — emitted JSON is compared byte-for-byte (the scheduler
  equivalence gate, the result cache, golden files); serializing a
  dict-derived payload without ``sort_keys=True`` leaks dict insertion
  order into those bytes.

Rules are conservative by construction: they use lightweight, local
type inference (set literals, ``set()`` calls, annotated attributes,
aliases of those) rather than whole-program analysis, and anything they
cannot prove unordered is left alone.  Deliberate exceptions carry a
``# repro: noqa[CODE]`` with the code named.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .lint import Finding, ModuleContext, rule

# ----------------------------------------------------------------------
# RPR001 — no iteration over unordered sets
# ----------------------------------------------------------------------

#: Wrappers that impose an order (or consume the iterable orderlessly
#: enough): iterating through these is fine.
_ORDERING_WRAPPERS = {"sorted", "len", "min", "max", "any", "all", "frozenset", "set"}

#: Iteration-forcing calls that preserve the (undefined) set order.
_ORDER_PRESERVING_CALLS = {"list", "tuple", "enumerate", "iter"}


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
    )


class _SetTypes:
    """Names and attributes known (locally) to hold sets."""

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.attributes: set[str] = set()

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # Set algebra: a union/intersection/difference is a set if
            # either side is a set or a dict-keys view.
            return (
                self.is_set_expr(node.left)
                or self.is_set_expr(node.right)
                or _is_keys_call(node.left)
                or _is_keys_call(node.right)
            )
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                return node.attr in self.attributes
        return False

    @staticmethod
    def _annotation_is_set(annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Name):
            return annotation.id in ("set", "frozenset")
        if isinstance(annotation, ast.Subscript):
            return _SetTypes._annotation_is_set(annotation.value)
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            text = annotation.value.strip()
            return text.startswith(("set[", "frozenset[", "set ", "frozenset "))
        return False

    def learn(self, node: ast.AST) -> None:
        """Record set-typed names/attributes from one statement."""
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if self.is_set_expr(node.value):
                self._record(target)
        elif isinstance(node, ast.AnnAssign):
            if self._annotation_is_set(node.annotation) or (
                node.value is not None and self.is_set_expr(node.value)
            ):
                self._record(node.target)

    def _record(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id == "self":
                self.attributes.add(target.attr)


@rule(
    "RPR001",
    "unordered-set-iteration",
    "no iteration over unordered set/dict.keys()-algebra contents in "
    "determinism-relevant packages; wrap in sorted() or use an "
    "insertion-ordered structure",
    scope=("core", "ring", "mesh", "workload"),
)
def check_set_iteration(context: ModuleContext) -> Iterator[Finding]:
    types = _SetTypes()
    # Pass 1: learn set-typed names/attributes (module, class and
    # function bodies alike — name-based, deliberately scope-blind).
    for node in ast.walk(context.tree):
        types.learn(node)

    def offending(iterable: ast.AST) -> str | None:
        if types.is_set_expr(iterable):
            return "a set"
        if _is_keys_call(iterable):
            return "dict.keys()"
        return None

    for node in ast.walk(context.tree):
        if isinstance(node, ast.For):
            what = offending(node.iter)
            if what is not None:
                yield context.finding(
                    "RPR001",
                    f"iteration over {what} has no deterministic order; "
                    "sort it or use an insertion-ordered structure",
                    node.iter,
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                what = offending(generator.iter)
                if what is not None:
                    yield context.finding(
                        "RPR001",
                        f"comprehension iterates {what} in no deterministic "
                        "order; sort it or use an insertion-ordered structure",
                        generator.iter,
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in _ORDER_PRESERVING_CALLS and node.args:
                what = offending(node.args[0])
                if what is not None:
                    yield context.finding(
                        "RPR001",
                        f"{node.func.id}() over {what} freezes an "
                        "undefined order; use sorted() instead",
                        node,
                    )


# ----------------------------------------------------------------------
# RPR002 — no wall clock, no module-level RNG
# ----------------------------------------------------------------------

_CLOCK_MODULES = ("time", "datetime")

#: numpy.random constructors that take an explicit seed/key: calling
#: them *with* arguments is the sanctioned counter-based-stream path
#: (the columnar engine's per-replica Philox columns); calling
#: ``default_rng()`` bare draws from OS entropy like ``Random()``.
_NUMPY_SEEDED_CTORS = {"default_rng", "Generator", "Philox", "PCG64", "SeedSequence"}


def _root_name(node: ast.AST) -> str | None:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _attr_chain(node: ast.AST) -> "list[str]":
    """Dotted name parts of an attribute chain (``np.random.rand`` ->
    ``["np", "random", "rand"]``); empty when the root is not a name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return []
    parts.append(node.id)
    parts.reverse()
    return parts


@rule(
    "RPR002",
    "nondeterministic-source",
    "no random/time/datetime wall-clock or module-level RNG use outside "
    "the seeded workload RNG wrappers (seeded random.Random(...) and "
    "seeded/keyed numpy.random generator construction are the "
    "sanctioned sources)",
    scope=("core", "ring", "mesh", "workload", "analysis", "runtime"),
)
def check_nondeterministic_sources(context: ModuleContext) -> Iterator[Finding]:
    # Names imported straight off the offending modules
    # (``from time import monotonic``): calling them is equivalent.
    imported: dict[str, str] = {}
    numpy_aliases: set[str] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom) and node.module in (
            "random",
            *_CLOCK_MODULES,
        ):
            for alias in node.names:
                if node.module == "random" and alias.name == "Random":
                    continue  # seeded construction is the sanctioned path
                imported[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
            for alias in node.names:
                # Seeded constructors are handled at the call site (an
                # argument-less default_rng() is still a violation).
                imported[alias.asname or alias.name] = f"numpy.random.{alias.name}"

    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            root = _root_name(func)
            chain = _attr_chain(func)
            if (
                len(chain) >= 3
                and chain[0] in numpy_aliases
                and chain[1] == "random"
            ):
                attr = chain[2]
                if attr in _NUMPY_SEEDED_CTORS:
                    if not node.args and not node.keywords:
                        yield context.finding(
                            "RPR002",
                            f"numpy.random.{attr}() without a seed draws "
                            "from OS entropy; pass an explicit seed or key",
                            node,
                        )
                else:
                    yield context.finding(
                        "RPR002",
                        f"module-level numpy RNG call numpy.random.{attr}() "
                        "uses the shared global stream; construct a seeded "
                        "Generator (numpy.random.default_rng(seed) or a "
                        "keyed Philox) instead",
                        node,
                    )
            elif root == "random":
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield context.finding(
                            "RPR002",
                            "unseeded random.Random() draws from OS entropy; "
                            "pass an explicit seed",
                            node,
                        )
                else:
                    yield context.finding(
                        "RPR002",
                        f"module-level RNG call random.{func.attr}() uses the "
                        "shared global stream; draw from a seeded "
                        "random.Random instance instead",
                        node,
                    )
            elif root in _CLOCK_MODULES:
                yield context.finding(
                    "RPR002",
                    f"wall-clock read {root}.{func.attr}() makes behaviour "
                    "depend on host time; simulation code must use the "
                    "engine cycle counter",
                    node,
                )
        elif isinstance(func, ast.Name) and func.id in imported:
            origin = imported[func.id]
            if (
                origin.startswith("numpy.random.")
                and origin.rsplit(".", 1)[1] in _NUMPY_SEEDED_CTORS
                and (node.args or node.keywords)
            ):
                continue  # seeded/keyed construction: the sanctioned path
            yield context.finding(
                "RPR002",
                f"call to {origin}() (imported nondeterministic "
                "source); use seeded RNGs / the engine clock",
                node,
            )


# ----------------------------------------------------------------------
# RPR003 — phase discipline for components
# ----------------------------------------------------------------------

#: Base classes marking a class as a clocked component.  Matching is by
#: name: the hierarchy spans modules (core.engine.Component ->
#: ring.port.RingPort -> ring.nic.RingNIC) and the lint is per-file.
_COMPONENT_BASES = {
    "Component",
    "RingPort",
    "RingNIC",
    "MeshRouter",
    "ProcessingModule",
}

#: The declared phase hooks: the engine invokes these (and only these)
#: inside the clock loop, so mutation of engine-owned state is legal in
#: any method reachable from them.  Construction is also a root: wiring
#: happens before the clock starts.  The ``compiled_*_handler`` hooks
#: are finalize-time builders whose returned closures the compiled
#: scheduler invokes *inside* the clock loop — phase hooks by
#: construction (``ast.walk`` descends into the nested closures, so
#: their bodies are still linted under the phase-root allowance).
_PHASE_ROOTS = (
    "propose",
    "update",
    "on_transfer_commit",
    "compiled_propose_handler",
    "compiled_update_handler",
    "compiled_commit_handler",
    "__init__",
    "__post_init__",
)


def _self_calls(function: ast.FunctionDef) -> set[str]:
    """Names of ``self.<method>()`` calls made inside *function*."""
    called: set[str] = set()
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            called.add(node.func.attr)
    return called


def _engine_param_names(function: ast.FunctionDef) -> set[str]:
    """Parameters of *function* that (by name) carry the engine."""
    return {
        arg.arg
        for arg in [*function.args.args, *function.args.kwonlyargs]
        if arg.arg == "engine"
    }


def _attr_chain(node: ast.AST) -> list[str]:
    """``self.metrics.remote_issued`` -> ["self", "metrics", "remote_issued"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


#: FlitBuffer's mutating API — pushes and pops move flits, which only
#: the clock loop may do.
_BUFFER_MUTATORS = ("push", "pop", "push_packet")
_METRICS_MUTATORS = ("record_remote", "record_local", "record", "close_batch")


def _phase_violations(
    context: ModuleContext, function: ast.FunctionDef, class_name: str
) -> Iterator[Finding]:
    engine_names = _engine_param_names(function) | {"_engine"}
    where = f"{class_name}.{function.name}"
    for node in ast.walk(function):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                chain = _attr_chain(target)
                if len(chain) >= 2 and (
                    chain[0] in engine_names
                    or (chain[0] == "self" and chain[1] in engine_names)
                ):
                    yield context.finding(
                        "RPR003",
                        f"{where} assigns engine state "
                        f"{'.'.join(chain)} outside its propose/update/"
                        "on_transfer_commit phase hooks",
                        node,
                    )
                elif "metrics" in chain[:-1]:
                    yield context.finding(
                        "RPR003",
                        f"{where} mutates shared metrics "
                        f"({'.'.join(chain)}) outside its phase hooks",
                        node,
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            chain = _attr_chain(node.func)
            attr = node.func.attr
            if attr in _BUFFER_MUTATORS:
                yield context.finding(
                    "RPR003",
                    f"{where} moves flits ({'.'.join(chain)}()) outside its "
                    "phase hooks; buffers are engine-owned during the run",
                    node,
                )
            elif attr == "propose" and chain and chain[0] in engine_names:
                yield context.finding(
                    "RPR003",
                    f"{where} calls engine.propose() outside the propose phase",
                    node,
                )
            elif attr in _METRICS_MUTATORS and "metrics" in chain[:-1]:
                yield context.finding(
                    "RPR003",
                    f"{where} records metrics ({'.'.join(chain)}()) outside "
                    "its phase hooks",
                    node,
                )


@rule(
    "RPR003",
    "phase-discipline",
    "component classes may not mutate engine-owned state (buffers, "
    "engine counters, metrics) from methods outside their declared "
    "propose/update/on_transfer_commit phase hooks",
    scope=("core", "ring", "mesh"),
)
def check_phase_discipline(context: ModuleContext) -> Iterator[Finding]:
    for node in context.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {base.id for base in node.bases if isinstance(base, ast.Name)}
        if not bases & _COMPONENT_BASES:
            continue
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, ast.FunctionDef)
        }
        # Closure of methods reachable from the phase roots through
        # ``self.<m>()`` calls: those run inside the clock loop (or at
        # construction) and may mutate engine-owned state.
        reachable: set[str] = set()
        frontier = [name for name in _PHASE_ROOTS if name in methods]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for callee in _self_calls(methods[name]):
                if callee in methods and callee not in reachable:
                    frontier.append(callee)
        for name, function in methods.items():
            if name in reachable:
                continue
            yield from _phase_violations(context, function, node.name)


# ----------------------------------------------------------------------
# RPR004 — no float accumulation into integer counters
# ----------------------------------------------------------------------

_COUNTER_NAME = re.compile(
    r"(^|_)(cycles?|flits?|count|counts|counter|moved|issued|completed|"
    r"sent|routed|enqueued|dequeued|outstanding|packets?|misses|hops?)($|_)"
)


def _contains_float(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "float"
        ):
            return True
    return False


@rule(
    "RPR004",
    "float-into-counter",
    "no float accumulation into integer cycle/flit counters (float "
    "rounding makes counts platform- and history-dependent)",
    scope=("core", "ring", "mesh", "workload"),
)
def check_float_counters(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.AugAssign):
            continue
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            continue
        target = node.target
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else target.id if isinstance(target, ast.Name) else None
        )
        if name is None or not _COUNTER_NAME.search(name):
            continue
        if _contains_float(node.value):
            yield context.finding(
                "RPR004",
                f"float value accumulated into integer counter {name!r}; "
                "keep counters integral (scale or round explicitly at the "
                "reporting boundary)",
                node,
            )


# ----------------------------------------------------------------------
# RPR005 — json serialization of dict payloads must sort keys
# ----------------------------------------------------------------------

#: Helper names that (by repo convention) build dict payloads:
#: ``result_payload``, ``params_payload``, ``asdict``, ``to_dict`` ...
_PAYLOAD_BUILDER_RE = re.compile(r"(^|_)(payload|asdict|to_dict)($|_)")


class _DictTypes:
    """Names and attributes known (locally) to hold dicts."""

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.attributes: set[str] = set()

    def is_dict_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and (
                func.id == "dict" or _PAYLOAD_BUILDER_RE.search(func.id)
            ):
                return True
            if isinstance(func, ast.Attribute) and _PAYLOAD_BUILDER_RE.search(
                func.attr
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            # PEP 584 dict merge: a | b is a dict if either side is.
            return self.is_dict_expr(node.left) or self.is_dict_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                return node.attr in self.attributes
        return False

    @staticmethod
    def _annotation_is_dict(annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Name):
            return annotation.id in ("dict", "Dict", "OrderedDict", "defaultdict")
        if isinstance(annotation, ast.Subscript):
            return _DictTypes._annotation_is_dict(annotation.value)
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            text = annotation.value.strip()
            return text.startswith(("dict[", "Dict[", "dict ", "Dict "))
        return False

    def learn(self, node: ast.AST) -> None:
        """Record dict-typed names/attributes from one statement."""
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            if self.is_dict_expr(node.value):
                self._record(node.targets[0])
        elif isinstance(node, ast.AnnAssign):
            if self._annotation_is_dict(node.annotation) or (
                node.value is not None and self.is_dict_expr(node.value)
            ):
                self._record(node.target)

    def _record(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if target.value.id == "self":
                self.attributes.add(target.attr)


@rule(
    "RPR005",
    "unsorted-json-payload",
    "json.dumps/json.dump of a dict-derived payload must pass "
    "sort_keys=True; dict insertion order otherwise leaks into emitted "
    "JSON, breaking byte-identity of results and cache entries",
    scope=("core", "ring", "mesh", "workload", "runtime", "analysis", "audit"),
)
def check_json_sort_keys(context: ModuleContext) -> Iterator[Finding]:
    json_aliases: set[str] = set()
    dumps_imports: dict[str, str] = {}
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "json":
                    json_aliases.add(alias.asname or "json")
        elif isinstance(node, ast.ImportFrom) and node.module == "json":
            for alias in node.names:
                if alias.name in ("dumps", "dump"):
                    dumps_imports[alias.asname or alias.name] = f"json.{alias.name}"

    types = _DictTypes()
    for node in ast.walk(context.tree):
        types.learn(node)

    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in json_aliases
            and func.attr in ("dumps", "dump")
        ):
            called = f"{func.value.id}.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in dumps_imports:
            called = dumps_imports[func.id]
        else:
            continue
        if not node.args:
            continue
        if any(keyword.arg is None for keyword in node.keywords):
            continue  # **kwargs may carry sort_keys; can't prove either way
        sort_keys = next(
            (kw for kw in node.keywords if kw.arg == "sort_keys"), None
        )
        if sort_keys is not None and not (
            isinstance(sort_keys.value, ast.Constant)
            and sort_keys.value.value is False
        ):
            continue  # sort_keys=True, or dynamic — benefit of the doubt
        if types.is_dict_expr(node.args[0]):
            yield context.finding(
                "RPR005",
                f"{called}() serializes a dict-derived payload without "
                "sort_keys=True; dict insertion order leaks into the "
                "emitted bytes — pass sort_keys=True for stable output",
                node,
            )
