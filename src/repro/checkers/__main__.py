"""Entry point for ``python -m repro.checkers``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
