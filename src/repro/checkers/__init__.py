"""Simulator-specific static analysis.

The whole value of this reproduction rests on *bit-identical
determinism* (jobs-1-vs-N byte-identical JSON, active-set vs naive
scheduler equivalence) and on structural correctness claims the paper
makes but never re-checks (transit-priority rings and e-cube meshes are
deadlock-free, ring buffers are packet-sized).  Nothing in a dynamic
test suite stops the next change from iterating an unordered ``set``,
pulling an unseeded RNG, or mutating engine state outside its kernel
phase — the hazards only show up as rare, unreproducible divergence.

This package checks those properties *statically*, in three layers:

* **Layer 1 — AST lints** (:mod:`repro.checkers.lint`,
  :mod:`repro.checkers.rules`): a small rule framework (registry,
  per-rule codes, ``# repro: noqa[CODE]`` suppressions, JSON and human
  output) with simulator-specific rules RPR001-RPR005.
* **Layer 2 — static model checker** (:mod:`repro.checkers.model`):
  builds the ring-hierarchy and mesh topology graphs without running a
  simulation and verifies packet-sized buffering, the paper's 2x2 IRI
  crossbar spec, routing totality, and runtime/spec conformance.
* **Layer 3 — routing-spec algebra + CDG prover**
  (:mod:`repro.checkers.specs`, :mod:`repro.checkers.cdg`): each
  routing algorithm is a declarative :class:`RoutingSpec` (legal output
  channels per occupied channel and destination); the prover builds the
  reachable channel-dependency graph and certifies deadlock freedom —
  acyclic CDGs outright, cycles discharged via rotation-progress
  groups, Duato escape-subnetwork analysis, or a deflection livelock
  bound — or rejects with a minimal, replayable cycle witness.  The
  runtime auditor (:mod:`repro.audit`) reads route legality from the
  same spec tables, so static and dynamic layers cannot disagree.

Run everything from the command line::

    python -m repro.checkers --strict          # lints + model checker
    python -m repro.checkers --routing-proofs  # named proof suite

which is also what the CI ``checks`` job gates on.
"""

from __future__ import annotations

from .cdg import CycleWitness, ProofResult, prove, replay_witness
from .lint import Finding, LintRule, all_rules, lint_file, lint_tree, rule
from .model import (
    ModelFinding,
    paper_model_report,
    routing_proof_report,
    routing_proof_suite,
    static_routing_problem,
    verify_mesh_network,
    verify_ring_network,
)
from .specs import (
    DELIVER,
    RoutingSpec,
    SpecChannel,
    adaptive_mesh_spec,
    ecube_mesh_spec,
    mesh_legal_outputs,
    ring_deflection_spec,
    torus_spec,
)

__all__ = [
    "DELIVER",
    "CycleWitness",
    "Finding",
    "LintRule",
    "ModelFinding",
    "ProofResult",
    "RoutingSpec",
    "SpecChannel",
    "adaptive_mesh_spec",
    "all_rules",
    "ecube_mesh_spec",
    "lint_file",
    "lint_tree",
    "mesh_legal_outputs",
    "paper_model_report",
    "prove",
    "replay_witness",
    "ring_deflection_spec",
    "routing_proof_report",
    "routing_proof_suite",
    "rule",
    "static_routing_problem",
    "torus_spec",
    "verify_mesh_network",
    "verify_ring_network",
]
