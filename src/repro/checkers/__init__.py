"""Simulator-specific static analysis.

The whole value of this reproduction rests on *bit-identical
determinism* (jobs-1-vs-N byte-identical JSON, active-set vs naive
scheduler equivalence) and on structural correctness claims the paper
makes but never re-checks (transit-priority rings and e-cube meshes are
deadlock-free, ring buffers are packet-sized).  Nothing in a dynamic
test suite stops the next change from iterating an unordered ``set``,
pulling an unseeded RNG, or mutating engine state outside its kernel
phase — the hazards only show up as rare, unreproducible divergence.

This package checks those properties *statically*, in two layers:

* **Layer 1 — AST lints** (:mod:`repro.checkers.lint`,
  :mod:`repro.checkers.rules`): a small rule framework (registry,
  per-rule codes, ``# repro: noqa[CODE]`` suppressions, JSON and human
  output) with simulator-specific rules RPR001-RPR004.
* **Layer 2 — static model checker** (:mod:`repro.checkers.model`):
  builds the ring-hierarchy and mesh topology graphs without running a
  simulation and verifies deadlock freedom (acyclic channel-dependency
  graph under e-cube XY routing; ring wait-for cycles limited to the
  rotating transit rings), packet-sized buffering, the paper's 2x2 IRI
  crossbar spec, and routing totality.

Run both from the command line::

    python -m repro.checkers --strict

which is also what the CI ``checks`` job gates on.
"""

from __future__ import annotations

from .lint import Finding, LintRule, all_rules, lint_file, lint_tree, rule
from .model import (
    ModelFinding,
    paper_model_report,
    verify_mesh_network,
    verify_ring_network,
)

__all__ = [
    "Finding",
    "LintRule",
    "ModelFinding",
    "all_rules",
    "lint_file",
    "lint_tree",
    "paper_model_report",
    "rule",
    "verify_mesh_network",
    "verify_ring_network",
]
