"""Layer 2 — the static model checker.

Builds the *real* network objects (construction wires every buffer,
channel and classifier but runs no simulation) and verifies, purely
structurally, the properties the paper asserts and the simulator
assumes:

* **Deadlock freedom** — no longer hard-coded per fabric.  Each
  routing algorithm is expressed as a declarative
  :class:`~repro.checkers.specs.RoutingSpec` (the mesh directly from
  the shared e-cube legality table, the hierarchical ring derived from
  all-pairs route walks through the actual ``classify`` functions) and
  handed to the channel-dependency-graph prover
  (:mod:`repro.checkers.cdg`).  The prover certifies acyclic CDGs
  outright and discharges cycles via rotation-progress groups (the
  ring's bypass flow control), Duato escape-subnetwork analysis, or a
  deflection livelock bound; anything else is rejected with a minimal
  cycle witness.
* **Buffering invariants.**  Every ring transit buffer and IRI queue
  holds at least one full cache-line packet (wormhole stalls would
  otherwise wedge a packet across a ring change), mesh input buffers
  match the configured depth, and every PM ejection sink is unbounded
  (DESIGN.md's protocol-deadlock rule).
* **IRI 2x2 crossbar spec** (paper Figure 4): exactly two ports per
  IRI, six single-packet buffers, split request/response queues on both
  the up and down paths.
* **Routing totality.**  Every PM reaches every other: mesh e-cube
  paths terminate at the destination in exactly the Manhattan distance;
  ring route walks (both request and response framing) terminate in the
  destination PM's ejection sink within a bounded hop count.
* **Spec conformance.**  The runtime mesh router's e-cube function must
  agree with the declarative legality table the prover certified — the
  same table :mod:`repro.audit` enforces per-cycle, so the static and
  dynamic layers cannot drift apart.

:func:`routing_proof_suite` additionally exposes the named proof
obligations the CI ``routing-proofs`` step discharges: the seven paper
topology families plus the torus-dateline / torus-without-dateline /
adaptive-escape / ring-deflection fixtures.

Everything here is pure graph analysis on constructed objects — no
``Engine`` is ever created, no cycle simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Iterator, Mapping

from ..core.buffers import FlitBuffer
from ..core.config import (
    CACHE_LINE_SIZES,
    MeshSystemConfig,
    RingSystemConfig,
    WorkloadConfig,
)
from ..core.packet import Packet, PacketType
from ..core.pm import MetricsHub
from ..mesh.network import MeshNetwork
from ..mesh.routing import LOCAL, ecube_next_direction, ecube_path
from ..mesh.topology import OPPOSITE, MeshShape, TorusShape
from ..ring.network import HierarchicalRingNetwork
from ..ring.port import RingPort
from ..ring.topology import PAPER_TABLE2
from .cdg import CycleWitness, ProofResult, prove, replay_witness
from .specs import (
    DELIVER,
    RoutingSpec,
    SpecChannel,
    adaptive_mesh_spec,
    ecube_mesh_spec,
    mesh_legal_outputs,
    ring_deflection_spec,
    torus_spec,
)

#: Safety bound on ring route walks, in buffer hops per walk, as a
#: multiple of the total port count (a legal route visits each port at
#: most once per level transition; 4x leaves slack for diagnostics).
_WALK_HOP_FACTOR = 4


@dataclass(frozen=True)
class ModelFinding:
    """One violated structural invariant of a built network.

    ``witness`` carries the prover's minimal cycle witness when the
    finding is an undischarged deadlock cycle (``None`` otherwise);
    it round-trips through :meth:`payload` / :meth:`from_payload` for
    the ``--json`` schema.
    """

    check: str
    subject: str
    message: str
    witness: CycleWitness | None = None

    def format(self) -> str:
        return f"{self.subject}: {self.check}: {self.message}"

    def payload(self) -> dict[str, object]:
        return {
            "check": self.check,
            "subject": self.subject,
            "message": self.message,
            "witness": self.witness.payload() if self.witness else None,
        }

    @classmethod
    def from_payload(cls, data: Mapping[str, object]) -> "ModelFinding":
        witness_data = data.get("witness")
        witness = (
            CycleWitness.from_payload(witness_data)
            if isinstance(witness_data, Mapping)
            else None
        )
        return cls(
            check=str(data["check"]),
            subject=str(data["subject"]),
            message=str(data["message"]),
            witness=witness,
        )


def _probe_packet(source: int, destination: int, ptype: PacketType) -> Packet:
    """A minimal synthetic packet for classification walks."""
    return Packet(
        ptype=ptype,
        source=source,
        destination=destination,
        size_flits=1,
        transaction_id=0,
        issue_cycle=0,
    )


# ----------------------------------------------------------------------
# hierarchical ring verification
# ----------------------------------------------------------------------
def _build_ring_network(config: RingSystemConfig) -> HierarchicalRingNetwork:
    return HierarchicalRingNetwork(
        config=config,
        workload=WorkloadConfig(),
        metrics=MetricsHub(),
    )


def _ring_structure_findings(
    network: HierarchicalRingNetwork, subject: str
) -> Iterator[ModelFinding]:
    config = network.config
    spec = network.spec
    packet_flits = config.geometry.cl_packet_flits

    if len(network.nics) != spec.processors:
        yield ModelFinding(
            "pm-count",
            subject,
            f"{len(network.nics)} NICs for {spec.processors} processors",
        )
    if len(network.iris) != spec.iri_count():
        yield ModelFinding(
            "iri-count",
            subject,
            f"{len(network.iris)} IRIs built, topology needs {spec.iri_count()}",
        )

    # Buffer capacities: every ring-side buffer holds >= one full
    # cache-line packet; ejection sinks are unbounded.
    def check_capacity(buffer: FlitBuffer) -> Iterator[ModelFinding]:
        if buffer.capacity is None or buffer.capacity < packet_flits:
            yield ModelFinding(
                "buffer-capacity",
                subject,
                f"buffer {buffer.name!r} holds "
                f"{buffer.capacity if buffer.capacity is not None else 'inf'} "
                f"flits; a cache-line packet needs {packet_flits} "
                "(wormhole ring changes would wedge mid-packet)",
            )

    for nic in network.nics:
        yield from check_capacity(nic.transit_buffer)
        if nic.pm.in_queue.capacity is not None:
            yield ModelFinding(
                "ejection-sink",
                subject,
                f"PM {nic.pm.pm_id} ejection sink is bounded "
                f"({nic.pm.in_queue.capacity} flits); protocol deadlock "
                "freedom requires unbounded endpoint sinks (DESIGN.md §4)",
            )
    for prefix in sorted(network.iris):
        iri = network.iris[prefix]
        # Figure 4's 2x2 crossbar: two ring ports, six buffers, split
        # request/response queues both ways.
        buffers = iri.buffers
        if len(buffers) != 6 or len(set(id(b) for b in buffers)) != 6:
            yield ModelFinding(
                "iri-crossbar",
                subject,
                f"IRI {iri.name} has {len(buffers)} buffers, the 2x2 "
                "crossbar spec needs 6 distinct (2 transit + up/down "
                "request/response)",
            )
        for port in (iri.lower_port, iri.upper_port):
            if len(port.injection_sources) != 2:
                yield ModelFinding(
                    "iri-crossbar",
                    subject,
                    f"IRI port {port.name} has "
                    f"{len(port.injection_sources)} injection queues; the "
                    "2x2 crossbar feeds each ring from split "
                    "request/response queues (2)",
                )
        for buffer in buffers:
            yield from check_capacity(buffer)

    # Every ring is a single closed cycle in member order.
    for prefix in spec.all_rings():
        members = network._ring_members(prefix)
        for position, port in enumerate(members):
            expected = members[(position + 1) % len(members)]
            if port.downstream is not expected:
                yield ModelFinding(
                    "ring-wiring",
                    subject,
                    f"ring {list(prefix)}: {port.name} feeds "
                    f"{port.downstream.name if port.downstream else 'nothing'}, "
                    f"expected {expected.name}",
                )
            if port.out_channel is None:
                yield ModelFinding(
                    "ring-wiring", subject, f"{port.name} has no output channel"
                )


def _drain_port_map(network: HierarchicalRingNetwork) -> dict[int, RingPort]:
    """``id(buffer) -> port`` for every buffer some ring port drains."""
    ports: list[RingPort] = list(network.nics)
    for prefix in sorted(network.iris):
        iri = network.iris[prefix]
        ports.append(iri.lower_port)
        ports.append(iri.upper_port)
    drains: dict[int, RingPort] = {}
    for port in ports:
        for buffer in port.sources_by_priority:
            drains[id(buffer)] = port
    return drains


def _walk_ring_route(
    network: HierarchicalRingNetwork,
    drains: Mapping[int, RingPort],
    source: int,
    destination: int,
    ptype: PacketType,
    max_hops: int,
) -> tuple[list[FlitBuffer], ModelFinding | None]:
    """Follow one packet's buffer sequence from injection to ejection.

    Mirrors exactly what the simulation does per hop: the port draining
    the packet's current buffer sends it to its downstream port, whose
    ``classify`` picks the receiving buffer.
    """
    packet = _probe_packet(source, destination, ptype)
    pm = network.pms[source]
    start = pm.out_resp if ptype.is_response else pm.out_req
    trail: list[FlitBuffer] = [start]
    current = start
    subject = f"route {source}->{destination} ({ptype.name})"
    for _hop in range(max_hops):
        port = drains.get(id(current))
        if port is None:
            return trail, ModelFinding(
                "routing-totality",
                subject,
                f"packet stranded in {current.name!r}: no ring port "
                "drains this buffer",
            )
        if port.downstream is None:
            return trail, ModelFinding(
                "routing-totality",
                subject,
                f"port {port.name} is not wired to a downstream port",
            )
        nxt = port.downstream.classify(packet)
        trail.append(nxt)
        target_pm = network.pms[destination]
        if nxt is target_pm.in_queue:
            return trail, None
        if nxt.capacity is None:
            return trail, ModelFinding(
                "routing-totality",
                subject,
                f"packet ejected into {nxt.name!r}, which is not PM "
                f"{destination}'s input queue",
            )
        current = nxt
    return trail, ModelFinding(
        "routing-totality",
        subject,
        f"route did not terminate within {max_hops} buffer hops "
        "(routing livelock)",
    )


def _ring_routing_spec(
    network: HierarchicalRingNetwork, name: str | None = None
) -> tuple[RoutingSpec, list[ModelFinding], int]:
    """Derive the hierarchical ring's routing spec from route walks.

    Channels are *buffer occupancies annotated by routing phase*:
    ``ascending`` while the destination lies outside the subtree of the
    buffer's ring (the packet still has to climb), ``descending`` once
    inside.  The hierarchical route is monotone — ascend, turn exactly
    once, descend — so the same physical transit buffer serves two
    provably distinct dependency roles; without the annotation the
    roles conflate and every hierarchy looks cyclic.  Transit buffers
    carry a ``rotation_group`` of (ring, phase): a dependency cycle
    confined to one group is a single-ring rotation, which the engine's
    bypass (greatest-fixed-point) flow control always advances — a full
    ring of packet-sized buffers rotates simultaneously, and unbounded
    ejection plus the monotone descent drain it.  Any cycle that mixes
    rings, phases, or passes through inter-ring/injection queues breaks
    the argument, carries no shared group, and (with no escape channels
    declared) is rejected by the prover.

    Returns ``(spec, walk findings, routes walked)``; walk findings are
    the routing-totality failures, which also leave the spec partial.
    """
    drains = _drain_port_map(network)
    hierarchy = network.spec
    processors = hierarchy.processors
    max_hops = _WALK_HOP_FACTOR * max(len(drains), 8)

    # Which ring each buffer lives on.  A port's transit buffer sits on
    # the ring the port is a member of; an IRI's up queues feed the
    # parent ring, its down queues the child ring; a PM's output queues
    # feed its local ring.
    ring_of: dict[int, tuple[int, ...]] = {}
    transit_ring_of: dict[int, tuple[int, ...]] = {}
    for prefix in hierarchy.all_rings():
        for port in network._ring_members(prefix):
            ring_of[id(port.transit_buffer)] = prefix
            transit_ring_of[id(port.transit_buffer)] = prefix
    for child_prefix in sorted(network.iris):
        iri = network.iris[child_prefix]
        ring_of[id(iri.up_req)] = child_prefix[:-1]
        ring_of[id(iri.up_resp)] = child_prefix[:-1]
        ring_of[id(iri.down_req)] = child_prefix
        ring_of[id(iri.down_resp)] = child_prefix
    for pm in network.pms:
        local = hierarchy.local_ring_of(pm.pm_id)
        ring_of[id(pm.out_req)] = local
        ring_of[id(pm.out_resp)] = local

    # Buffer names are display labels; guard channel identity against
    # accidental duplicates so two buffers never share a channel.
    base_names: dict[int, str] = {}
    used_names: set[str] = set()

    def base_name(buffer: FlitBuffer) -> str:
        if id(buffer) not in base_names:
            candidate = buffer.name
            serial = 1
            while candidate in used_names:
                candidate = f"{buffer.name}#{serial}"
                serial += 1
            base_names[id(buffer)] = candidate
            used_names.add(candidate)
        return base_names[id(buffer)]

    channels: dict[str, SpecChannel] = {}

    def channel(buffer: FlitBuffer, destination: int) -> str:
        prefix = ring_of.get(id(buffer))
        descending = prefix is not None and hierarchy.in_subtree(
            destination, prefix
        )
        phase = "desc" if descending else "asc"
        channel_name = f"{base_name(buffer)}[{phase}]"
        if channel_name not in channels:
            transit = transit_ring_of.get(id(buffer))
            group = (
                f"ring{list(transit)}|{phase}" if transit is not None else None
            )
            channels[channel_name] = SpecChannel(
                channel_name, rotation_group=group
            )
        return channel_name

    starts: dict[Hashable, set[str]] = {}
    moves: dict[tuple[str, Hashable], set[str]] = {}
    findings: list[ModelFinding] = []
    walked = 0
    for source in range(processors):
        for destination in range(processors):
            if source == destination:
                continue
            for ptype in (PacketType.READ_REQUEST, PacketType.READ_RESPONSE):
                walked += 1
                trail, failure = _walk_ring_route(
                    network, drains, source, destination, ptype, max_hops
                )
                if failure is not None:
                    findings.append(failure)
                    continue
                token: Hashable = (
                    destination,
                    "resp" if ptype.is_response else "req",
                )
                starts.setdefault(token, set()).add(
                    channel(trail[0], destination)
                )
                # trail[-1] is the destination's ejection sink, which
                # absorbs (never blocks) and maps to DELIVER.
                for position in range(len(trail) - 1):
                    here = channel(trail[position], destination)
                    nxt = (
                        DELIVER
                        if position + 1 == len(trail) - 1
                        else channel(trail[position + 1], destination)
                    )
                    moves.setdefault((here, token), set()).add(nxt)

    spec = RoutingSpec(
        name=name or f"hier-ring-{network.spec}",
        kind="deterministic",
        channels=tuple(
            channels[channel_name] for channel_name in sorted(channels)
        ),
        starts={token: frozenset(first) for token, first in starts.items()},
        moves={state: frozenset(outputs) for state, outputs in moves.items()},
    )
    return spec, findings, walked


def verify_ring_network(
    target: "HierarchicalRingNetwork | RingSystemConfig",
    routes: bool = True,
) -> list[ModelFinding]:
    """Verify all static invariants of a hierarchical ring system.

    *target* may be a config (a fresh network is built) or an
    already-built network — the mis-wiring tests pass damaged instances
    directly.  ``routes=False`` runs only the structural checks, which
    is what the CLI uses for topologies differing from an
    already-walked one only in cache-line size (routing is independent
    of packet geometry).
    """
    network = (
        target
        if isinstance(target, HierarchicalRingNetwork)
        else _build_ring_network(target)
    )
    subject = f"ring {network.spec} cl={network.config.cache_line_bytes}B"
    findings = list(_ring_structure_findings(network, subject))
    if not routes:
        return findings

    spec, walk_findings, _walked = _ring_routing_spec(network)
    findings.extend(walk_findings)
    proof = prove(spec)
    if not proof.certified:
        findings.append(
            ModelFinding(
                "deadlock-freedom", subject, proof.detail, witness=proof.witness
            )
        )
    return findings


# ----------------------------------------------------------------------
# mesh verification
# ----------------------------------------------------------------------
def _build_mesh_network(config: MeshSystemConfig) -> MeshNetwork:
    return MeshNetwork(
        config=config,
        workload=WorkloadConfig(),
        metrics=MetricsHub(),
    )


def _mesh_structure_findings(
    network: MeshNetwork, subject: str
) -> Iterator[ModelFinding]:
    config = network.config
    shape = network.shape
    depth = config.input_buffer_flits
    for router in network.routers:
        neighbors = shape.neighbors(router.node)
        for direction, buffer in router.input_buffers.items():
            if buffer.capacity != depth:
                yield ModelFinding(
                    "buffer-capacity",
                    subject,
                    f"{buffer.name!r} holds "
                    f"{buffer.capacity if buffer.capacity is not None else 'inf'} "
                    f"flits, configured depth is {depth}",
                )
        for direction, neighbor_id in neighbors.items():
            dest = router._out_dest.get(direction)
            expected = network.routers[neighbor_id].input_buffers[
                OPPOSITE[direction]
            ]
            if dest is not expected:
                yield ModelFinding(
                    "mesh-wiring",
                    subject,
                    f"router {router.node} output {direction} feeds "
                    f"{dest.name if dest is not None else 'nothing'!r}, "
                    f"expected {expected.name!r}",
                )
        expected_outputs = set(neighbors) | {LOCAL}
        if set(router.connected_outputs) != expected_outputs:
            yield ModelFinding(
                "mesh-wiring",
                subject,
                f"router {router.node} wires outputs "
                f"{sorted(router.connected_outputs)}, expected "
                f"{sorted(expected_outputs)}",
            )
        if router.pm.in_queue.capacity is not None:
            yield ModelFinding(
                "ejection-sink",
                subject,
                f"PM {router.node} ejection sink is bounded; protocol "
                "deadlock freedom requires unbounded endpoint sinks",
            )


def _mesh_routing_findings(shape: MeshShape, subject: str) -> Iterator[ModelFinding]:
    """Routing totality/minimality, spec conformance, deadlock proof."""
    legal = mesh_legal_outputs(shape)
    for source in range(shape.processors):
        for destination in range(shape.processors):
            if source == destination:
                continue
            path = ecube_path(shape, source, destination)
            if path[-1] != destination:
                yield ModelFinding(
                    "routing-totality",
                    subject,
                    f"e-cube route {source}->{destination} ends at {path[-1]}",
                )
                continue
            if len(path) - 1 != shape.hop_distance(source, destination):
                yield ModelFinding(
                    "routing-minimality",
                    subject,
                    f"e-cube route {source}->{destination} takes "
                    f"{len(path) - 1} hops, Manhattan distance is "
                    f"{shape.hop_distance(source, destination)}",
                )

    # The runtime router and the declarative spec must agree move for
    # move — the prover's certificate is only as good as this bridge.
    for node in range(shape.processors):
        for destination in range(shape.processors):
            direction = ecube_next_direction(shape, node, destination)
            allowed = legal[(node, destination)]
            if direction not in allowed:
                yield ModelFinding(
                    "spec-conformance",
                    subject,
                    f"runtime e-cube picks {direction!r} at node {node} "
                    f"for destination {destination}; the routing spec "
                    f"allows {sorted(allowed)}",
                )

    proof = prove(ecube_mesh_spec(shape))
    if not proof.certified:
        yield ModelFinding(
            "deadlock-freedom", subject, proof.detail, witness=proof.witness
        )


def verify_mesh_network(
    target: "MeshNetwork | MeshSystemConfig",
    routes: bool = True,
) -> list[ModelFinding]:
    """Verify all static invariants of a square-mesh system."""
    network = (
        target if isinstance(target, MeshNetwork) else _build_mesh_network(target)
    )
    subject = (
        f"mesh {network.shape.side}x{network.shape.side} "
        f"cl={network.config.cache_line_bytes}B "
        f"buf={network.config.buffer_flits}"
    )
    findings = list(_mesh_structure_findings(network, subject))
    if routes:
        findings.extend(_mesh_routing_findings(network.shape, subject))
    return findings


# ----------------------------------------------------------------------
# paper coverage: every topology the fig06-fig21/table experiments use
# ----------------------------------------------------------------------
def paper_ring_configs() -> list[RingSystemConfig]:
    """Every distinct ring config the experiment suite can build."""
    from ..analysis.sweeps import growth_topologies, hierarchy_sweep, single_ring_sizes

    seen: set[tuple[tuple[int, ...], int, int]] = set()
    configs: list[RingSystemConfig] = []

    def add(branching: tuple[int, ...], cache_line: int, speed: int = 1) -> None:
        key = (branching, cache_line, speed)
        if key in seen:
            return
        seen.add(key)
        configs.append(
            RingSystemConfig(
                topology=branching,
                cache_line_bytes=cache_line,
                global_ring_speed=speed,
            )
        )

    for cache_line in CACHE_LINE_SIZES:
        for nodes in single_ring_sizes(cache_line, 64):
            add((nodes,), cache_line)
        for levels in (2, 3):
            for __, branching in hierarchy_sweep(levels, cache_line, 150):
                add(branching, cache_line)
        for __, branching in growth_topologies(3, cache_line, 150, max_top_fan=5):
            if len(branching) > 1:
                add(branching, cache_line, speed=2)
        for branching in PAPER_TABLE2[cache_line].values():
            add(branching, cache_line)
    return configs


def paper_mesh_configs() -> list[MeshSystemConfig]:
    """Every distinct mesh config the experiment suite can build."""
    sides = (2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
    configs: list[MeshSystemConfig] = []
    for cache_line in CACHE_LINE_SIZES:
        for buffer_flits in (1, 4, "cl"):
            for side in sides:
                configs.append(
                    MeshSystemConfig(
                        side=side,
                        cache_line_bytes=cache_line,
                        buffer_flits=buffer_flits,
                    )
                )
    return configs


def paper_model_report() -> tuple[list[ModelFinding], dict[str, int]]:
    """Run the model checker over the full experiment topology grid.

    Route walking depends only on the topology shape (packet geometry
    never influences a routing decision), so each distinct branching /
    mesh side is walked once and the remaining cache-line variants get
    the cheap structural pass.
    """
    findings: list[ModelFinding] = []
    stats = {"ring_configs": 0, "mesh_configs": 0, "routes_walked": 0}

    walked_rings: set[tuple[int, ...]] = set()
    for config in paper_ring_configs():
        branching = config.branching
        routes = branching not in walked_rings
        walked_rings.add(branching)
        findings.extend(verify_ring_network(config, routes=routes))
        stats["ring_configs"] += 1
        if routes:
            processors = config.processors
            stats["routes_walked"] += processors * (processors - 1) * 2

    walked_sides: set[int] = set()
    for mesh_config in paper_mesh_configs():
        routes = mesh_config.side not in walked_sides
        walked_sides.add(mesh_config.side)
        findings.extend(verify_mesh_network(mesh_config, routes=routes))
        stats["mesh_configs"] += 1
        if routes:
            processors = mesh_config.processors
            stats["routes_walked"] += processors * (processors - 1)

    return findings, stats


def static_routing_problem(
    system: "RingSystemConfig | MeshSystemConfig",
) -> str | None:
    """Prove the routing spec of *system*'s topology; ``None`` when
    certified.

    The differential fuzzer gates every generated topology through this
    before spending simulation time on it: a topology whose routing the
    CDG prover cannot certify deadlock-free is a spec problem, not a
    scheduler-divergence problem.
    """
    if isinstance(system, MeshSystemConfig):
        proof = prove(ecube_mesh_spec(MeshShape(system.side)))
    else:
        network = _build_ring_network(system)
        spec, walk_findings, _walked = _ring_routing_spec(network)
        if walk_findings:
            return walk_findings[0].format()
        proof = prove(spec)
    return None if proof.certified else proof.detail


# ----------------------------------------------------------------------
# the named routing-proof suite (CI's routing-proofs step)
# ----------------------------------------------------------------------
def routing_proof_suite() -> list[tuple[str, RoutingSpec, bool]]:
    """Named ``(spec, expected certified)`` proof obligations.

    The seven paper topology families (matching the statistical
    equivalence campaign's paper points — routing specs depend only on
    the topology shape, so the mesh buffer-depth variants share a
    side), plus the new-fabric fixtures: the torus with dateline
    virtual channels the prover must certify, the torus *without* them
    it must reject with a minimal cycle witness, the minimal-adaptive
    mesh discharged by escape analysis, and the bufferless ring
    deflection spec discharged by the livelock bound.
    """
    suite: list[tuple[str, RoutingSpec, bool]] = []
    ring_families = [
        ("ring-1level", "8", 1),
        ("ring-2level", "4:4", 1),
        ("ring-3level", "2:2:4", 1),
        ("ring-fast-global", "4:4", 2),
    ]
    for name, topology, speed in ring_families:
        network = _build_ring_network(
            RingSystemConfig(
                topology=topology,
                cache_line_bytes=32,
                global_ring_speed=speed,
            )
        )
        spec, _findings, _walked = _ring_routing_spec(network, name=name)
        suite.append((name, spec, True))
    mesh_families = [("mesh-buf1", 4), ("mesh-buf4", 4), ("mesh-bufcl", 4)]
    for name, side in mesh_families:
        suite.append((name, replace(ecube_mesh_spec(MeshShape(side)), name=name), True))
    torus = TorusShape(4)
    suite.append(
        ("torus-dateline", replace(torus_spec(torus, dateline=True), name="torus-dateline"), True)
    )
    suite.append(
        (
            "torus-no-dateline",
            replace(torus_spec(torus, dateline=False), name="torus-no-dateline"),
            False,
        )
    )
    suite.append(
        (
            "mesh-adaptive-escape",
            replace(adaptive_mesh_spec(MeshShape(4)), name="mesh-adaptive-escape"),
            True,
        )
    )
    suite.append(
        ("ring-deflection", replace(ring_deflection_spec(8), name="ring-deflection"), True)
    )
    return suite


def routing_proof_report() -> tuple[list[ProofResult], list[ModelFinding]]:
    """Prove every suite obligation; findings are expectation breaks.

    A spec expected to certify that gets rejected (or vice versa) is a
    ``routing-proof`` finding.  Expected rejections must additionally
    come with a minimal cycle witness that replays as a real reachable
    dependency chain — a rejection the prover cannot substantiate is
    itself a failure.
    """
    results: list[ProofResult] = []
    findings: list[ModelFinding] = []
    for name, spec, expect_certified in routing_proof_suite():
        proof = prove(spec)
        results.append(proof)
        if proof.certified != expect_certified:
            if expect_certified:
                findings.append(
                    ModelFinding(
                        "routing-proof",
                        name,
                        f"expected certification, prover rejected: "
                        f"{proof.detail}",
                        witness=proof.witness,
                    )
                )
            else:
                findings.append(
                    ModelFinding(
                        "routing-proof",
                        name,
                        "expected rejection, prover certified via "
                        f"{proof.method}",
                    )
                )
            continue
        if not expect_certified:
            if proof.witness is None:
                findings.append(
                    ModelFinding(
                        "routing-proof",
                        name,
                        "rejected as expected but without a cycle witness: "
                        f"{proof.detail}",
                    )
                )
            else:
                problem = replay_witness(spec, proof.witness)
                if problem is not None:
                    findings.append(
                        ModelFinding(
                            "routing-proof",
                            name,
                            f"cycle witness does not replay: {problem}",
                            witness=proof.witness,
                        )
                    )
    return results, findings
