"""Layer 2 — the static model checker.

Builds the *real* network objects (construction wires every buffer,
channel and classifier but runs no simulation) and verifies, purely
structurally, the properties the paper asserts and the simulator
assumes:

* **Deadlock freedom.**  For the mesh, the channel-dependency graph
  under e-cube XY routing must be acyclic (the paper's Section 2
  argument).  For the hierarchical ring, buffer wait-for cycles are
  computed from all-pairs route walks through the actual ``classify``
  functions; the only admissible strongly-connected components are the
  transit-buffer rotations of individual rings, which cannot deadlock
  because (a) inter-ring and ejection dependencies leave the SCC — the
  up-then-down level changes are monotone, so a packet re-enters no
  ring — and (b) the engine's bypass flow control advances a full ring
  of packet-sized transit buffers simultaneously (every flit moves into
  the slot its downstream neighbour vacates the same cycle), so the
  rotation itself always makes progress given transit priority and the
  unbounded ejection sinks.  Any SCC that mixes rings, includes an
  inter-ring queue, or covers only part of a ring breaks that argument
  and is reported.
* **Buffering invariants.**  Every ring transit buffer and IRI queue
  holds at least one full cache-line packet (wormhole stalls would
  otherwise wedge a packet across a ring change), mesh input buffers
  match the configured depth, and every PM ejection sink is unbounded
  (DESIGN.md's protocol-deadlock rule).
* **IRI 2x2 crossbar spec** (paper Figure 4): exactly two ports per
  IRI, six single-packet buffers, split request/response queues on both
  the up and down paths.
* **Routing totality.**  Every PM reaches every other: mesh e-cube
  paths terminate at the destination in exactly the Manhattan distance;
  ring route walks (both request and response framing) terminate in the
  destination PM's ejection sink within a bounded hop count.

Everything here is pure graph analysis on constructed objects — no
``Engine`` is ever created, no cycle simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence, TypeVar

from ..core.buffers import FlitBuffer
from ..core.config import (
    CACHE_LINE_SIZES,
    MeshSystemConfig,
    RingSystemConfig,
    WorkloadConfig,
)
from ..core.packet import Packet, PacketType
from ..core.pm import MetricsHub
from ..mesh.network import MeshNetwork
from ..mesh.routing import LOCAL, ecube_path
from ..mesh.topology import OPPOSITE, MeshShape
from ..ring.network import HierarchicalRingNetwork
from ..ring.port import RingPort
from ..ring.topology import PAPER_TABLE2

#: Safety bound on ring route walks, in buffer hops per walk, as a
#: multiple of the total port count (a legal route visits each port at
#: most once per level transition; 4x leaves slack for diagnostics).
_WALK_HOP_FACTOR = 4

#: Graph node type for the SCC helpers (ints for mesh channels,
#: ``(buffer id, phase)`` tuples for ring wait-for analysis).
_N = TypeVar("_N", bound="int | tuple[int, bool]")


@dataclass(frozen=True)
class ModelFinding:
    """One violated structural invariant of a built network."""

    check: str
    subject: str
    message: str

    def format(self) -> str:
        return f"{self.subject}: {self.check}: {self.message}"

    def payload(self) -> dict[str, object]:
        return {"check": self.check, "subject": self.subject, "message": self.message}


def _probe_packet(source: int, destination: int, ptype: PacketType) -> Packet:
    """A minimal synthetic packet for classification walks."""
    return Packet(
        ptype=ptype,
        source=source,
        destination=destination,
        size_flits=1,
        transaction_id=0,
        issue_cycle=0,
    )


# ----------------------------------------------------------------------
# generic graph helpers
# ----------------------------------------------------------------------
def _strongly_connected_components(
    nodes: Sequence[_N], edges: Mapping[_N, set[_N]]
) -> list[list[_N]]:
    """Tarjan's SCC algorithm, iterative (rings can be deep)."""
    index_of: dict[_N, int] = {}
    lowlink: dict[_N, int] = {}
    on_stack: set[_N] = set()
    stack: list[_N] = []
    components: list[list[_N]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[_N, Iterator[_N]]] = [
            (root, iter(sorted(edges.get(root, ()))))
        ]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(edges.get(successor, ()))))
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[_N] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _nontrivial_sccs(
    nodes: Sequence[_N], edges: Mapping[_N, set[_N]]
) -> list[list[_N]]:
    return [
        component
        for component in _strongly_connected_components(nodes, edges)
        if len(component) > 1
        or component[0] in edges.get(component[0], set())
    ]


# ----------------------------------------------------------------------
# hierarchical ring verification
# ----------------------------------------------------------------------
def _build_ring_network(config: RingSystemConfig) -> HierarchicalRingNetwork:
    return HierarchicalRingNetwork(
        config=config,
        workload=WorkloadConfig(),
        metrics=MetricsHub(),
    )


def _ring_structure_findings(
    network: HierarchicalRingNetwork, subject: str
) -> Iterator[ModelFinding]:
    config = network.config
    spec = network.spec
    packet_flits = config.geometry.cl_packet_flits

    if len(network.nics) != spec.processors:
        yield ModelFinding(
            "pm-count",
            subject,
            f"{len(network.nics)} NICs for {spec.processors} processors",
        )
    if len(network.iris) != spec.iri_count():
        yield ModelFinding(
            "iri-count",
            subject,
            f"{len(network.iris)} IRIs built, topology needs {spec.iri_count()}",
        )

    # Buffer capacities: every ring-side buffer holds >= one full
    # cache-line packet; ejection sinks are unbounded.
    def check_capacity(buffer: FlitBuffer) -> Iterator[ModelFinding]:
        if buffer.capacity is None or buffer.capacity < packet_flits:
            yield ModelFinding(
                "buffer-capacity",
                subject,
                f"buffer {buffer.name!r} holds "
                f"{buffer.capacity if buffer.capacity is not None else 'inf'} "
                f"flits; a cache-line packet needs {packet_flits} "
                "(wormhole ring changes would wedge mid-packet)",
            )

    for nic in network.nics:
        yield from check_capacity(nic.transit_buffer)
        if nic.pm.in_queue.capacity is not None:
            yield ModelFinding(
                "ejection-sink",
                subject,
                f"PM {nic.pm.pm_id} ejection sink is bounded "
                f"({nic.pm.in_queue.capacity} flits); protocol deadlock "
                "freedom requires unbounded endpoint sinks (DESIGN.md §4)",
            )
    for prefix in sorted(network.iris):
        iri = network.iris[prefix]
        # Figure 4's 2x2 crossbar: two ring ports, six buffers, split
        # request/response queues both ways.
        buffers = iri.buffers
        if len(buffers) != 6 or len(set(id(b) for b in buffers)) != 6:
            yield ModelFinding(
                "iri-crossbar",
                subject,
                f"IRI {iri.name} has {len(buffers)} buffers, the 2x2 "
                "crossbar spec needs 6 distinct (2 transit + up/down "
                "request/response)",
            )
        for port in (iri.lower_port, iri.upper_port):
            if len(port.injection_sources) != 2:
                yield ModelFinding(
                    "iri-crossbar",
                    subject,
                    f"IRI port {port.name} has "
                    f"{len(port.injection_sources)} injection queues; the "
                    "2x2 crossbar feeds each ring from split "
                    "request/response queues (2)",
                )
        for buffer in buffers:
            yield from check_capacity(buffer)

    # Every ring is a single closed cycle in member order.
    for prefix in spec.all_rings():
        members = network._ring_members(prefix)
        for position, port in enumerate(members):
            expected = members[(position + 1) % len(members)]
            if port.downstream is not expected:
                yield ModelFinding(
                    "ring-wiring",
                    subject,
                    f"ring {list(prefix)}: {port.name} feeds "
                    f"{port.downstream.name if port.downstream else 'nothing'}, "
                    f"expected {expected.name}",
                )
            if port.out_channel is None:
                yield ModelFinding(
                    "ring-wiring", subject, f"{port.name} has no output channel"
                )


def _drain_port_map(network: HierarchicalRingNetwork) -> dict[int, RingPort]:
    """``id(buffer) -> port`` for every buffer some ring port drains."""
    ports: list[RingPort] = list(network.nics)
    for prefix in sorted(network.iris):
        iri = network.iris[prefix]
        ports.append(iri.lower_port)
        ports.append(iri.upper_port)
    drains: dict[int, RingPort] = {}
    for port in ports:
        for buffer in port.sources_by_priority:
            drains[id(buffer)] = port
    return drains


def _walk_ring_route(
    network: HierarchicalRingNetwork,
    drains: Mapping[int, RingPort],
    source: int,
    destination: int,
    ptype: PacketType,
    max_hops: int,
) -> tuple[list[FlitBuffer], ModelFinding | None]:
    """Follow one packet's buffer sequence from injection to ejection.

    Mirrors exactly what the simulation does per hop: the port draining
    the packet's current buffer sends it to its downstream port, whose
    ``classify`` picks the receiving buffer.
    """
    packet = _probe_packet(source, destination, ptype)
    pm = network.pms[source]
    start = pm.out_resp if ptype.is_response else pm.out_req
    trail: list[FlitBuffer] = [start]
    current = start
    subject = f"route {source}->{destination} ({ptype.name})"
    for _hop in range(max_hops):
        port = drains.get(id(current))
        if port is None:
            return trail, ModelFinding(
                "routing-totality",
                subject,
                f"packet stranded in {current.name!r}: no ring port "
                "drains this buffer",
            )
        if port.downstream is None:
            return trail, ModelFinding(
                "routing-totality",
                subject,
                f"port {port.name} is not wired to a downstream port",
            )
        nxt = port.downstream.classify(packet)
        trail.append(nxt)
        target_pm = network.pms[destination]
        if nxt is target_pm.in_queue:
            return trail, None
        if nxt.capacity is None:
            return trail, ModelFinding(
                "routing-totality",
                subject,
                f"packet ejected into {nxt.name!r}, which is not PM "
                f"{destination}'s input queue",
            )
        current = nxt
    return trail, ModelFinding(
        "routing-totality",
        subject,
        f"route did not terminate within {max_hops} buffer hops "
        "(routing livelock)",
    )


def verify_ring_network(
    target: "HierarchicalRingNetwork | RingSystemConfig",
    routes: bool = True,
) -> list[ModelFinding]:
    """Verify all static invariants of a hierarchical ring system.

    *target* may be a config (a fresh network is built) or an
    already-built network — the mis-wiring tests pass damaged instances
    directly.  ``routes=False`` runs only the structural checks, which
    is what the CLI uses for topologies differing from an
    already-walked one only in cache-line size (routing is independent
    of packet geometry).
    """
    network = (
        target
        if isinstance(target, HierarchicalRingNetwork)
        else _build_ring_network(target)
    )
    subject = f"ring {network.spec} cl={network.config.cache_line_bytes}B"
    findings = list(_ring_structure_findings(network, subject))
    if not routes:
        return findings

    drains = _drain_port_map(network)
    spec = network.spec
    processors = spec.processors
    max_hops = _WALK_HOP_FACTOR * max(len(drains), 8)

    # Which ring each buffer lives on.  A port's transit buffer sits on
    # the ring the port is a member of; an IRI's up queues feed the
    # parent ring, its down queues the child ring; a PM's output queues
    # feed its local ring.
    ring_of: dict[int, tuple[int, ...]] = {}
    transit_ring_of: dict[int, tuple[int, ...]] = {}
    for prefix in spec.all_rings():
        for port in network._ring_members(prefix):
            ring_of[id(port.transit_buffer)] = prefix
            transit_ring_of[id(port.transit_buffer)] = prefix
    for child_prefix in sorted(network.iris):
        iri = network.iris[child_prefix]
        ring_of[id(iri.up_req)] = child_prefix[:-1]
        ring_of[id(iri.up_resp)] = child_prefix[:-1]
        ring_of[id(iri.down_req)] = child_prefix
        ring_of[id(iri.down_resp)] = child_prefix
    for pm in network.pms:
        local = spec.local_ring_of(pm.pm_id)
        ring_of[id(pm.out_req)] = local
        ring_of[id(pm.out_resp)] = local
        # Ejection sinks are normally unbounded and never enter the
        # wait-for graph, but a mis-built bounded sink must map to a
        # ring so the walk reports it instead of crashing.
        ring_of[id(pm.in_queue)] = local

    # Wait-for graph over bounded buffers, with each occupancy annotated
    # by routing phase: *ascending* while the destination lies outside
    # the subtree of the buffer's ring (the packet still has to climb),
    # *descending* once inside.  The hierarchical route is monotone —
    # ascend, turn exactly once, descend — so the same physical transit
    # buffer serves two provably distinct dependency roles; without the
    # annotation the roles conflate and every hierarchy looks cyclic.
    # Unbounded ejection sinks never block, so edges into them are
    # dropped.
    Node = tuple[int, bool]
    buffer_index: dict[int, FlitBuffer] = {}
    edges: dict[Node, set[Node]] = {}
    nodes: set[Node] = set()

    def node(buffer: FlitBuffer, destination: int) -> Node:
        buffer_index[id(buffer)] = buffer
        descending = spec.in_subtree(destination, ring_of[id(buffer)])
        key = (id(buffer), descending)
        nodes.add(key)
        return key

    for source in range(processors):
        for destination in range(processors):
            if source == destination:
                continue
            for ptype in (PacketType.READ_REQUEST, PacketType.READ_RESPONSE):
                trail, failure = _walk_ring_route(
                    network, drains, source, destination, ptype, max_hops
                )
                if failure is not None:
                    findings.append(failure)
                    continue
                for hop, nxt in zip(trail, trail[1:]):
                    if nxt.capacity is None:
                        continue  # ejection sinks absorb, never block
                    edges.setdefault(node(hop, destination), set()).add(
                        node(nxt, destination)
                    )

    # The only admissible wait-for cycles are single-ring transit
    # rotations in a single phase: those always progress, because the
    # bypass (greatest-fixed-point) flow control rotates a full ring of
    # packet-sized buffers simultaneously and unbounded ejection plus
    # the monotone descent guarantee the rotation eventually drains.
    for component in _nontrivial_sccs(sorted(nodes), edges):
        rings = {transit_ring_of.get(buffer_id) for buffer_id, __ in component}
        phases = {descending for __, descending in component}
        if len(rings) == 1 and None not in rings and len(phases) == 1:
            continue
        names = sorted(
            f"{buffer_index[buffer_id].name}"
            f"[{'desc' if descending else 'asc'}]"
            for buffer_id, descending in component
        )
        if None in rings:
            reason = (
                "cycle passes through inter-ring or injection queues — "
                "level changes are no longer monotone, the hierarchical "
                "deadlock-freedom argument fails"
            )
        else:
            reason = (
                "cycle spans multiple rings or mixes ascent with descent "
                "— the bypass-rotation progress argument does not cover it"
            )
        findings.append(
            ModelFinding(
                "deadlock-freedom",
                subject,
                f"unexpected wait-for cycle [{', '.join(names)}]: {reason}",
            )
        )
    return findings


# ----------------------------------------------------------------------
# mesh verification
# ----------------------------------------------------------------------
def _build_mesh_network(config: MeshSystemConfig) -> MeshNetwork:
    return MeshNetwork(
        config=config,
        workload=WorkloadConfig(),
        metrics=MetricsHub(),
    )


def _mesh_structure_findings(
    network: MeshNetwork, subject: str
) -> Iterator[ModelFinding]:
    config = network.config
    shape = network.shape
    depth = config.input_buffer_flits
    for router in network.routers:
        neighbors = shape.neighbors(router.node)
        for direction, buffer in router.input_buffers.items():
            if buffer.capacity != depth:
                yield ModelFinding(
                    "buffer-capacity",
                    subject,
                    f"{buffer.name!r} holds "
                    f"{buffer.capacity if buffer.capacity is not None else 'inf'} "
                    f"flits, configured depth is {depth}",
                )
        for direction, neighbor_id in neighbors.items():
            dest = router._out_dest.get(direction)
            expected = network.routers[neighbor_id].input_buffers[
                OPPOSITE[direction]
            ]
            if dest is not expected:
                yield ModelFinding(
                    "mesh-wiring",
                    subject,
                    f"router {router.node} output {direction} feeds "
                    f"{dest.name if dest is not None else 'nothing'!r}, "
                    f"expected {expected.name!r}",
                )
        expected_outputs = set(neighbors) | {LOCAL}
        if set(router.connected_outputs) != expected_outputs:
            yield ModelFinding(
                "mesh-wiring",
                subject,
                f"router {router.node} wires outputs "
                f"{sorted(router.connected_outputs)}, expected "
                f"{sorted(expected_outputs)}",
            )
        if router.pm.in_queue.capacity is not None:
            yield ModelFinding(
                "ejection-sink",
                subject,
                f"PM {router.node} ejection sink is bounded; protocol "
                "deadlock freedom requires unbounded endpoint sinks",
            )


def _mesh_routing_findings(shape: MeshShape, subject: str) -> Iterator[ModelFinding]:
    """Routing totality + channel-dependency-graph acyclicity."""
    # Channels are (node, direction); ids are compact ints.
    channel_id: dict[tuple[int, str], int] = {}
    edges: dict[int, set[int]] = {}

    def channel(node: int, direction: str) -> int:
        key = (node, direction)
        if key not in channel_id:
            channel_id[key] = len(channel_id)
        return channel_id[key]

    for source in range(shape.processors):
        for destination in range(shape.processors):
            if source == destination:
                continue
            path = ecube_path(shape, source, destination)
            if path[-1] != destination:
                yield ModelFinding(
                    "routing-totality",
                    subject,
                    f"e-cube route {source}->{destination} ends at {path[-1]}",
                )
                continue
            if len(path) - 1 != shape.hop_distance(source, destination):
                yield ModelFinding(
                    "routing-minimality",
                    subject,
                    f"e-cube route {source}->{destination} takes "
                    f"{len(path) - 1} hops, Manhattan distance is "
                    f"{shape.hop_distance(source, destination)}",
                )
            previous: int | None = None
            for here, nxt in zip(path, path[1:]):
                direction = next(
                    d for d, n in shape.neighbors(here).items() if n == nxt
                )
                current = channel(here, direction)
                if previous is not None:
                    edges.setdefault(previous, set()).add(current)
                previous = current

    cycles = _nontrivial_sccs(sorted(channel_id.values()), edges)
    if cycles:
        by_id = {cid: key for key, cid in channel_id.items()}
        for component in cycles:
            names = sorted(f"{node}.{direction}" for node, direction in
                           (by_id[member] for member in component))
            yield ModelFinding(
                "deadlock-freedom",
                subject,
                "channel dependency graph has a cycle under e-cube XY "
                f"routing: [{', '.join(names)}]",
            )


def verify_mesh_network(
    target: "MeshNetwork | MeshSystemConfig",
    routes: bool = True,
) -> list[ModelFinding]:
    """Verify all static invariants of a square-mesh system."""
    network = (
        target if isinstance(target, MeshNetwork) else _build_mesh_network(target)
    )
    subject = (
        f"mesh {network.shape.side}x{network.shape.side} "
        f"cl={network.config.cache_line_bytes}B "
        f"buf={network.config.buffer_flits}"
    )
    findings = list(_mesh_structure_findings(network, subject))
    if routes:
        findings.extend(_mesh_routing_findings(network.shape, subject))
    return findings


# ----------------------------------------------------------------------
# paper coverage: every topology the fig06-fig21/table experiments use
# ----------------------------------------------------------------------
def paper_ring_configs() -> list[RingSystemConfig]:
    """Every distinct ring config the experiment suite can build."""
    from ..analysis.sweeps import growth_topologies, hierarchy_sweep, single_ring_sizes

    seen: set[tuple[tuple[int, ...], int, int]] = set()
    configs: list[RingSystemConfig] = []

    def add(branching: tuple[int, ...], cache_line: int, speed: int = 1) -> None:
        key = (branching, cache_line, speed)
        if key in seen:
            return
        seen.add(key)
        configs.append(
            RingSystemConfig(
                topology=branching,
                cache_line_bytes=cache_line,
                global_ring_speed=speed,
            )
        )

    for cache_line in CACHE_LINE_SIZES:
        for nodes in single_ring_sizes(cache_line, 64):
            add((nodes,), cache_line)
        for levels in (2, 3):
            for __, branching in hierarchy_sweep(levels, cache_line, 150):
                add(branching, cache_line)
        for __, branching in growth_topologies(3, cache_line, 150, max_top_fan=5):
            if len(branching) > 1:
                add(branching, cache_line, speed=2)
        for branching in PAPER_TABLE2[cache_line].values():
            add(branching, cache_line)
    return configs


def paper_mesh_configs() -> list[MeshSystemConfig]:
    """Every distinct mesh config the experiment suite can build."""
    sides = (2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
    configs: list[MeshSystemConfig] = []
    for cache_line in CACHE_LINE_SIZES:
        for buffer_flits in (1, 4, "cl"):
            for side in sides:
                configs.append(
                    MeshSystemConfig(
                        side=side,
                        cache_line_bytes=cache_line,
                        buffer_flits=buffer_flits,
                    )
                )
    return configs


def paper_model_report() -> tuple[list[ModelFinding], dict[str, int]]:
    """Run the model checker over the full experiment topology grid.

    Route walking depends only on the topology shape (packet geometry
    never influences a routing decision), so each distinct branching /
    mesh side is walked once and the remaining cache-line variants get
    the cheap structural pass.
    """
    findings: list[ModelFinding] = []
    stats = {"ring_configs": 0, "mesh_configs": 0, "routes_walked": 0}

    walked_rings: set[tuple[int, ...]] = set()
    for config in paper_ring_configs():
        branching = config.branching
        routes = branching not in walked_rings
        walked_rings.add(branching)
        findings.extend(verify_ring_network(config, routes=routes))
        stats["ring_configs"] += 1
        if routes:
            processors = config.processors
            stats["routes_walked"] += processors * (processors - 1) * 2

    walked_sides: set[int] = set()
    for mesh_config in paper_mesh_configs():
        routes = mesh_config.side not in walked_sides
        walked_sides.add(mesh_config.side)
        findings.extend(verify_mesh_network(mesh_config, routes=routes))
        stats["mesh_configs"] += 1
        if routes:
            processors = mesh_config.processors
            stats["routes_walked"] += processors * (processors - 1)

    return findings, stats
