"""``python -m repro.checkers`` — run both static analysis layers.

Exit status: 0 when every check passes, 1 when the lint layer reports
findings, 2 when the model checker does (3 when both do).  ``--json``
emits a machine-readable report; the default output is one line per
finding plus a summary, which is what the CI ``checks`` job greps.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .lint import Finding, all_rules, lint_tree
from .model import ModelFinding, paper_model_report

EXIT_OK = 0
EXIT_LINT = 1
EXIT_MODEL = 2


def _package_root() -> Path:
    """The ``src/repro`` tree this installation runs from."""
    return Path(__file__).resolve().parents[1]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checkers",
        description="Simulator-specific static analysis: determinism / "
        "phase-discipline lints plus the static deadlock and invariant "
        "verifier.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package tree to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on blanket '# repro: noqa' suppressions without "
        "a rule code",
    )
    parser.add_argument(
        "--lint-only",
        action="store_true",
        help="run only the AST lint layer",
    )
    parser.add_argument(
        "--model-only",
        action="store_true",
        help="run only the static model checker",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a JSON report instead of human-readable lines",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered lint rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    if options.lint_only and options.model_only:
        print("--lint-only and --model-only are mutually exclusive", file=sys.stderr)
        return 2

    if options.list_rules:
        for lint_rule in all_rules():
            print(f"{lint_rule.code}  {lint_rule.name}")
            print(f"    scope: {', '.join(lint_rule.scope)}")
            print(f"    {lint_rule.description}")
        return EXIT_OK

    root = (options.root or _package_root()).resolve()
    lint_findings: list[Finding] = []
    model_findings: list[ModelFinding] = []
    model_stats: dict[str, int] = {}

    if not options.model_only:
        lint_findings = lint_tree(root, strict=options.strict)
    if not options.lint_only:
        model_findings, model_stats = paper_model_report()

    if options.as_json:
        print(
            json.dumps(
                {
                    "root": str(root),
                    "lint": [finding.payload() for finding in lint_findings],
                    "model": [finding.payload() for finding in model_findings],
                    "model_stats": model_stats,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in lint_findings:
            print(finding.format())
        for model_finding in model_findings:
            print(model_finding.format())
        parts = []
        if not options.model_only:
            parts.append(f"lint: {len(lint_findings)} finding(s)")
        if not options.lint_only:
            parts.append(
                f"model: {len(model_findings)} finding(s) over "
                f"{model_stats.get('ring_configs', 0)} ring + "
                f"{model_stats.get('mesh_configs', 0)} mesh configs "
                f"({model_stats.get('routes_walked', 0)} routes walked)"
            )
        print("; ".join(parts))

    status = EXIT_OK
    if lint_findings:
        status |= EXIT_LINT
    if model_findings:
        status |= EXIT_MODEL
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
