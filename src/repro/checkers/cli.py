"""``python -m repro.checkers`` — run the static analysis layers.

Exit status: 0 when every check passes, 1 when the lint layer reports
findings, 2 when the model checker or routing-proof suite does (3 when
both lint and model layers do).  The default output is one line per
finding plus a summary, which is what the CI ``checks`` job greps;
``--routing-proofs`` runs only the named routing-proof suite (CI's
``routing-proofs`` step) and writes witness artifacts for any
expectation break to ``--witness-dir``.

``--json`` emits a machine-readable report with a stable, versioned
schema (``"schema": 2``):

``root``
    Absolute path of the linted package tree (string).
``lint``
    List of lint findings: ``{code, message, path, line, column}``.
``model``
    List of model findings: ``{check, subject, message, witness}``
    where ``witness`` is ``null`` or a minimal CDG cycle witness
    ``{channels: [str], destinations: [str]}`` (``channels[i] ->
    channels[(i+1) % n]`` is a dependency edge induced by a packet
    heading to ``destinations[i]``).
``model_stats``
    ``{ring_configs, mesh_configs, routes_walked}`` coverage counters
    (present when the model layer ran, ``{}`` otherwise).
``proofs``
    List of routing-proof results (present when ``--routing-proofs``
    ran, ``[]`` otherwise): ``{spec, kind, certified, method, detail,
    channels, states, edges, witness}`` with ``witness`` as above.

Schema round-tripping is exercised by
``tests/checkers/test_cli.py``; bump ``"schema"`` when changing any of
the above shapes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .cdg import ProofResult
from .lint import Finding, all_rules, lint_tree
from .model import ModelFinding, paper_model_report, routing_proof_report

EXIT_OK = 0
EXIT_LINT = 1
EXIT_MODEL = 2

#: Version stamp of the ``--json`` report shape documented above.
JSON_SCHEMA_VERSION = 2

#: Where ``--routing-proofs`` drops witness artifacts on failure.
DEFAULT_WITNESS_DIR = Path("results/routing-proofs")


def _package_root() -> Path:
    """The ``src/repro`` tree this installation runs from."""
    return Path(__file__).resolve().parents[1]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checkers",
        description="Simulator-specific static analysis: determinism / "
        "phase-discipline lints plus the static deadlock and invariant "
        "verifier built on declarative routing specs.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package tree to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on blanket '# repro: noqa' suppressions without "
        "a rule code",
    )
    parser.add_argument(
        "--lint-only",
        action="store_true",
        help="run only the AST lint layer",
    )
    parser.add_argument(
        "--model-only",
        action="store_true",
        help="run only the static model checker",
    )
    parser.add_argument(
        "--routing-proofs",
        action="store_true",
        help="run only the named routing-proof suite (paper topology "
        "families plus the torus/adaptive/deflection fixtures) through "
        "the CDG prover",
    )
    parser.add_argument(
        "--witness-dir",
        type=Path,
        default=DEFAULT_WITNESS_DIR,
        help="directory for cycle-witness artifacts when a routing "
        f"proof fails (default: {DEFAULT_WITNESS_DIR})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a JSON report instead of human-readable lines",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered lint rules and exit",
    )
    return parser


def _write_witness_artifacts(
    directory: Path,
    results: Sequence[ProofResult],
    findings: Sequence[ModelFinding],
) -> Path:
    """Dump the failing proof report for CI artifact upload."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "routing-proof-failures.json"
    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "proofs": [result.payload() for result in results],
        "failures": [finding.payload() for finding in findings],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: Sequence[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    exclusive = [
        name
        for name, active in [
            ("--lint-only", options.lint_only),
            ("--model-only", options.model_only),
            ("--routing-proofs", options.routing_proofs),
        ]
        if active
    ]
    if len(exclusive) > 1:
        print(f"{' and '.join(exclusive)} are mutually exclusive", file=sys.stderr)
        return 2

    if options.list_rules:
        for lint_rule in all_rules():
            print(f"{lint_rule.code}  {lint_rule.name}")
            print(f"    scope: {', '.join(lint_rule.scope)}")
            print(f"    {lint_rule.description}")
        return EXIT_OK

    root = (options.root or _package_root()).resolve()
    lint_findings: list[Finding] = []
    model_findings: list[ModelFinding] = []
    model_stats: dict[str, int] = {}
    proof_results: list[ProofResult] = []

    if options.routing_proofs:
        proof_results, model_findings = routing_proof_report()
        if model_findings:
            artifact = _write_witness_artifacts(
                options.witness_dir, proof_results, model_findings
            )
            if not options.as_json:
                print(f"witness artifacts written to {artifact}", file=sys.stderr)
    else:
        if not options.model_only:
            lint_findings = lint_tree(root, strict=options.strict)
        if not options.lint_only:
            model_findings, model_stats = paper_model_report()

    if options.as_json:
        print(
            json.dumps(
                {
                    "schema": JSON_SCHEMA_VERSION,
                    "root": str(root),
                    "lint": [finding.payload() for finding in lint_findings],
                    "model": [finding.payload() for finding in model_findings],
                    "model_stats": model_stats,
                    "proofs": [result.payload() for result in proof_results],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in lint_findings:
            print(finding.format())
        for result in proof_results:
            print(result.format())
        for model_finding in model_findings:
            print(model_finding.format())
        parts = []
        if options.routing_proofs:
            certified = sum(1 for r in proof_results if r.certified)
            parts.append(
                f"proofs: {len(model_findings)} failure(s) over "
                f"{len(proof_results)} spec(s) ({certified} certified)"
            )
        else:
            if not options.model_only:
                parts.append(f"lint: {len(lint_findings)} finding(s)")
            if not options.lint_only:
                parts.append(
                    f"model: {len(model_findings)} finding(s) over "
                    f"{model_stats.get('ring_configs', 0)} ring + "
                    f"{model_stats.get('mesh_configs', 0)} mesh configs "
                    f"({model_stats.get('routes_walked', 0)} routes walked)"
                )
        print("; ".join(parts))

    status = EXIT_OK
    if lint_findings:
        status |= EXIT_LINT
    if model_findings:
        status |= EXIT_MODEL
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
