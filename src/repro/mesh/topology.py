"""Square 2D mesh coordinates and distances.

PM ids are row-major: ``pm_id = y * side + x``.  The mesh is
bi-directional with no end-around connections (paper Section 2), so the
distance between nodes is the Manhattan metric, which is also the hop
count of the deterministic e-cube route.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import TopologyError


@dataclass(frozen=True)
class MeshShape:
    """Geometry helpers for a ``side x side`` mesh."""

    side: int

    def __post_init__(self) -> None:
        if self.side < 1:
            raise TopologyError(f"mesh side must be >= 1, got {self.side}")

    @property
    def processors(self) -> int:
        return self.side * self.side

    def coordinates(self, pm_id: int) -> tuple[int, int]:
        if not 0 <= pm_id < self.processors:
            raise TopologyError(f"pm_id {pm_id} out of range for {self.side}x{self.side}")
        return pm_id % self.side, pm_id // self.side

    def pm_id(self, x: int, y: int) -> int:
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise TopologyError(f"({x},{y}) outside {self.side}x{self.side} mesh")
        return y * self.side + x

    def hop_distance(self, a: int, b: int) -> int:
        ax, ay = self.coordinates(a)
        bx, by = self.coordinates(b)
        return abs(ax - bx) + abs(ay - by)

    def neighbors(self, pm_id: int) -> dict[str, int]:
        """Adjacent node per direction; absent keys are mesh edges."""
        x, y = self.coordinates(pm_id)
        result: dict[str, int] = {}
        if y > 0:
            result["N"] = self.pm_id(x, y - 1)
        if y < self.side - 1:
            result["S"] = self.pm_id(x, y + 1)
        if x < self.side - 1:
            result["E"] = self.pm_id(x + 1, y)
        if x > 0:
            result["W"] = self.pm_id(x - 1, y)
        return result

    def internal_links(self) -> int:
        """Unidirectional router-to-router links in the mesh."""
        return 4 * self.side * (self.side - 1)

    def average_distance(self) -> float:
        """Mean hop count over all ordered pairs of distinct nodes."""
        total = 0
        count = 0
        for a in range(self.processors):
            for b in range(self.processors):
                if a != b:
                    total += self.hop_distance(a, b)
                    count += 1
        return total / count if count else 0.0


@dataclass(frozen=True)
class TorusShape:
    """Geometry helpers for a ``side x side`` 2D torus.

    Same row-major coordinates as :class:`MeshShape`, but every
    direction wraps end-around, so each row and column is a
    bi-directional ring and the hop metric is the wrapped Manhattan
    distance.  Deterministic dimension-order routing on a torus needs
    dateline virtual channels to stay deadlock-free — the routing-spec
    builders in :mod:`repro.checkers.specs` encode (and the CDG prover
    certifies/rejects) both variants.
    """

    side: int

    def __post_init__(self) -> None:
        if self.side < 1:
            raise TopologyError(f"torus side must be >= 1, got {self.side}")

    @property
    def processors(self) -> int:
        return self.side * self.side

    def coordinates(self, pm_id: int) -> tuple[int, int]:
        if not 0 <= pm_id < self.processors:
            raise TopologyError(
                f"pm_id {pm_id} out of range for {self.side}x{self.side} torus"
            )
        return pm_id % self.side, pm_id // self.side

    def pm_id(self, x: int, y: int) -> int:
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise TopologyError(f"({x},{y}) outside {self.side}x{self.side} torus")
        return y * self.side + x

    def hop_distance(self, a: int, b: int) -> int:
        ax, ay = self.coordinates(a)
        bx, by = self.coordinates(b)
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.side - dx) + min(dy, self.side - dy)

    def neighbors(self, pm_id: int) -> dict[str, int]:
        """Adjacent node per direction; every direction exists (wrap)."""
        x, y = self.coordinates(pm_id)
        return {
            "N": self.pm_id(x, (y - 1) % self.side),
            "S": self.pm_id(x, (y + 1) % self.side),
            "E": self.pm_id((x + 1) % self.side, y),
            "W": self.pm_id((x - 1) % self.side, y),
        }


#: Direction sent in maps to the receive-side buffer at the neighbor.
OPPOSITE = {"N": "S", "S": "N", "E": "W", "W": "E"}
