"""Mesh Network Interface Controller — a 5x5 wormhole crossbar router
(paper Figure 5 and Section 2.2).

Each router has four neighbor input links with FIFO buffers of 1, 4 or
``cl`` flits, plus the local processing module's injection port (the
PM's split request/response output queues — one physical port, so at
most one flit injects per cycle, responses first).  Output ports:

* are allocated to an input at the head flit and held until the tail
  flit passes ("once a switch connection ... is established, it is
  broken only after the last flit of a packet has been transferred");
* arbitrate competing head flits round-robin (Section 2.2);
* forward at most one flit per cycle; the crossbar connects any inputs
  to any outputs within a single clock ("our mesh NIC can connect all
  inputs to outputs in a single clock cycle"), and the 1-cycle routing
  delay comes from buffering at the downstream node.

Blocked flits stay in their input buffer and back-pressure the upstream
link through the engine's flow-control resolution.
"""

from __future__ import annotations

from ..core.buffers import FlitBuffer
from ..core.channel import Channel
from ..core.engine import CommitHandler, Component, Engine, Transfer
from ..core.errors import SimulationError
from ..core.packet import Flit, Packet
from ..core.pm import ProcessingModule
from .routing import LOCAL, ecube_next_direction
from .topology import MeshShape

#: Input arbitration order (round-robin start rotates through this).
INPUT_ORDER = ("N", "E", "S", "W", LOCAL)
OUTPUT_ORDER = ("N", "E", "S", "W", LOCAL)


class MeshRouter(Component):
    """One node's router plus its processing-module port."""

    speed = 1

    #: Commit bookkeeping (round-robin advance, crossbar lock/unlock)
    #: happens on head and tail flits only; body flits of the paper's
    #: up-to-36-flit mesh packets are pure data movement.
    commit_on_head_tail_only = True

    def __init__(
        self,
        pm: ProcessingModule,
        shape: MeshShape,
        buffer_flits: int,
    ):
        self.pm = pm
        self.shape = shape
        self.node = pm.pm_id
        self.name = f"router{self.node}"

        self.input_buffers: dict[str, FlitBuffer] = {
            direction: FlitBuffer(f"{self.name}.in_{direction}", capacity=buffer_flits)
            for direction in ("N", "E", "S", "W")
        }

        # Wired by the network builder: out direction -> (dest buffer, channel)
        self._out_dest: dict[str, FlitBuffer] = {LOCAL: pm.in_queue}
        self._out_channel: dict[str, Channel | None] = {LOCAL: None}

        # Wormhole state.
        self._output_lock: dict[str, str | None] = {d: None for d in OUTPUT_ORDER}
        self._input_route: dict[str, str | None] = {d: None for d in INPUT_ORDER}
        self._input_active_buffer: dict[str, FlitBuffer | None] = {
            d: None for d in INPUT_ORDER
        }
        self._rr_pointer: dict[str, int] = {d: 0 for d in OUTPUT_ORDER}

        # Reverse maps for commit-time bookkeeping.
        self._input_of_source: dict[FlitBuffer, str] = {
            buf: direction for direction, buf in self.input_buffers.items()
        }
        self._input_of_source[pm.out_resp] = LOCAL
        self._input_of_source[pm.out_req] = LOCAL
        self._output_of_dest: dict[FlitBuffer, str] = {pm.in_queue: LOCAL}

        # Wired outputs in arbitration order, rebuilt by connect();
        # propose() walks this every active cycle.
        self._connected: tuple[str, ...] = (LOCAL,)
        self._local_queues = (pm.out_resp, pm.out_req)
        self._wake_buffers = (
            *self.input_buffers.values(),
            pm.out_resp,
            pm.out_req,
        )

        self.packets_routed = 0

    # ------------------------------------------------------------------
    def connect(self, direction: str, neighbor: "MeshRouter", channel: Channel) -> None:
        """Wire this router's *direction* output to *neighbor*'s input."""
        from .topology import OPPOSITE

        dest = neighbor.input_buffers[OPPOSITE[direction]]
        self._out_dest[direction] = dest
        self._out_channel[direction] = channel
        self._output_of_dest[dest] = direction
        self._connected = tuple(d for d in OUTPUT_ORDER if d in self._out_dest)

    @property
    def connected_outputs(self) -> list[str]:
        return list(self._connected)

    # ------------------------------------------------------------------
    # active-set scheduling contract (see core.engine.Component)
    # ------------------------------------------------------------------
    def propose_wake_buffers(self) -> tuple[FlitBuffer, ...]:
        return self._wake_buffers

    def may_sleep_propose(self) -> bool:
        """Idle iff no output is mid-packet and every feed buffer is empty."""
        for lock in self._output_lock.values():
            if lock is not None:
                return False
        for buffer in self._wake_buffers:
            if buffer._flits:
                return False
        return True

    def next_update_cycle(self, engine: Engine) -> int | None:
        return None  # routers have no update(); all work happens in propose()

    # ------------------------------------------------------------------
    def _head_candidate(self, in_key: str) -> tuple[Flit, FlitBuffer] | None:
        """The new-packet head flit offered by input *in_key*, if any."""
        if in_key == LOCAL:
            for queue in self._local_queues:
                flit = queue.peek()
                if flit is not None:
                    if not flit.is_head:
                        raise SimulationError(
                            f"{self.name}: idle local port, mid-packet flit "
                            f"at head of {queue.name!r}"
                        )
                    return flit, queue
            return None
        buffer = self.input_buffers[in_key]
        flit = buffer.peek()
        if flit is None:
            return None
        if not flit.is_head:
            raise SimulationError(
                f"{self.name}: input {in_key} idle but heads with {flit!r}"
            )
        return flit, buffer

    def route(self, packet: Packet) -> str:
        return ecube_next_direction(self.shape, self.node, packet.destination)

    # ------------------------------------------------------------------
    def propose(self, engine: Engine) -> None:
        output_lock = self._output_lock
        for out_key in self._connected:
            lock = output_lock[out_key]
            if lock is not None:
                self._propose_continuation(engine, out_key, lock)
            else:
                self._propose_new_packet(engine, out_key)

    def _propose_continuation(self, engine: Engine, out_key: str, in_key: str) -> None:
        buffer = self._input_active_buffer[in_key]
        if buffer is None:
            raise SimulationError(f"{self.name}: output {out_key} locked to idle input")
        flit = buffer.peek()
        if flit is None:
            return  # bubble: the packet's next flit has not arrived yet
        engine.propose(
            flit, buffer, self._out_dest[out_key], self._out_channel[out_key], self
        )

    def _propose_new_packet(self, engine: Engine, out_key: str) -> None:
        start = self._rr_pointer[out_key]
        order = INPUT_ORDER
        for offset in range(len(order)):
            in_key = order[(start + offset) % len(order)]
            if self._input_route[in_key] is not None:
                continue  # input is mid-packet toward some other output
            candidate = self._head_candidate(in_key)
            if candidate is None:
                continue
            flit, buffer = candidate
            if self.route(flit.packet) != out_key:
                continue
            engine.propose(
                flit, buffer, self._out_dest[out_key], self._out_channel[out_key], self
            )
            return

    # ------------------------------------------------------------------
    # Commit bookkeeping.  `_commit_flit` is the single implementation;
    # `on_transfer_commit` (object datapath) unpacks the Transfer into
    # it and `compiled_commit_handler` exposes it to the engine's
    # compiled datapath as a direct monomorphic call.
    def compiled_commit_handler(self) -> "CommitHandler":
        return self._commit_flit

    def on_transfer_commit(self, transfer: Transfer, engine: Engine) -> None:
        self._commit_flit(transfer.flit, transfer.source, transfer.dest, transfer.channel)

    def _commit_flit(
        self,
        flit: Flit,
        source: FlitBuffer,
        dest: FlitBuffer,
        channel: Channel | None,
    ) -> None:
        in_key = self._input_of_source[source]
        out_key = self._output_of_dest[dest]
        if flit.is_head:
            self.packets_routed += 1
            self._rr_pointer[out_key] = (INPUT_ORDER.index(in_key) + 1) % len(INPUT_ORDER)
            if not flit.is_tail:
                self._output_lock[out_key] = in_key
                self._input_route[in_key] = out_key
                self._input_active_buffer[in_key] = source
        if flit.is_tail:
            self._output_lock[out_key] = None
            self._input_route[in_key] = None
            self._input_active_buffer[in_key] = None

    def audit_check_locks(self) -> str | None:
        """Crossbar lock symmetry check for :mod:`repro.audit`.

        The wormhole state is stored twice (by output and by input) so
        both the continuation and the arbitration paths get O(1)
        lookups; this verifies the two views agree: an output locked to
        an input iff that input routes to it, with its active buffer
        pinned.  Returns a human-readable violation, or ``None``.
        """
        for out_key, in_key in self._output_lock.items():
            if in_key is None:
                continue
            if self._input_route.get(in_key) != out_key:
                return (
                    f"{self.name}: output {out_key} locked to input {in_key} "
                    f"but that input routes to {self._input_route.get(in_key)!r}"
                )
            if self._input_active_buffer.get(in_key) is None:
                return (
                    f"{self.name}: output {out_key} locked to input {in_key} "
                    f"with no active source buffer"
                )
        for in_key, out_key in self._input_route.items():
            if out_key is not None and self._output_lock.get(out_key) != in_key:
                return (
                    f"{self.name}: input {in_key} routes to output {out_key} "
                    f"but that output is locked to {self._output_lock.get(out_key)!r}"
                )
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MeshRouter(node={self.node})"
