"""Deterministic e-cube (dimension-order XY) routing.

The paper chooses the bi-directional mesh without end-around links
precisely because "of its simple e-cube deterministic deadlock free
routing algorithm that does not require virtual channels" (Section 2).
A packet first corrects its X offset (East/West), then its Y offset
(North/South), then ejects at the local port.  Because all X hops
complete before any Y hop, the channel dependency graph is acyclic and
the algorithm is deadlock-free.
"""

from __future__ import annotations

from .topology import MeshShape

#: The local (ejection/injection) pseudo-direction.
LOCAL = "L"


def ecube_next_direction(shape: MeshShape, current: int, destination: int) -> str:
    """Output direction at *current* for a packet heading to *destination*."""
    cx, cy = shape.coordinates(current)
    dx, dy = shape.coordinates(destination)
    if cx < dx:
        return "E"
    if cx > dx:
        return "W"
    if cy < dy:
        return "S"
    if cy > dy:
        return "N"
    return LOCAL


def ecube_path(shape: MeshShape, source: int, destination: int) -> list[int]:
    """Node sequence (inclusive) visited by the e-cube route."""
    path = [source]
    current = source
    while current != destination:
        direction = ecube_next_direction(shape, current, destination)
        current = shape.neighbors(current)[direction]
        path.append(current)
    return path
