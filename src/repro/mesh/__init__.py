"""Square 2D bi-directional wormhole mesh with e-cube routing."""
