"""2D mesh network assembly.

Builds the complete mesh system for a
:class:`~repro.core.config.MeshSystemConfig`: one
:class:`~repro.core.pm.ProcessingModule` and
:class:`~repro.mesh.router.MeshRouter` per node, and two opposing
unidirectional channels between each pair of adjacent routers (the
paper's bi-directional links implemented as two 32-bit channels).

Only router-to-router links count toward network utilization, matching
the paper's "percent of maximum network utilization".
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.channel import Channel
from ..core.config import MeshSystemConfig, WorkloadConfig
from ..core.engine import Engine
from ..core.pm import MetricsHub, ProcessingModule
from ..core.processor import MissSource
from ..workload.patterns import TargetSpace, build_target_selector
from .router import MeshRouter
from .topology import MeshShape


class MeshNetwork:
    """A fully wired square 2D mesh multiprocessor system."""

    def __init__(
        self,
        config: MeshSystemConfig,
        workload: WorkloadConfig,
        metrics: MetricsHub,
        seed: int = 1,
        miss_sources: "Sequence[MissSource] | None" = None,
    ):
        config.validate()
        workload.validate()
        self.config = config
        self.workload = workload
        self.metrics = metrics
        self.shape = MeshShape(config.side)

        geometry = config.geometry
        selector = build_target_selector(workload, TargetSpace.mesh(config.side))

        self.pms: list[ProcessingModule] = [
            ProcessingModule(
                pm_id=pm_id,
                geometry=geometry,
                workload=workload,
                memory_latency=config.memory_latency,
                select_target=selector,
                rng=random.Random(seed * 1_000_003 + pm_id),
                metrics=metrics,
                miss_source=miss_sources[pm_id] if miss_sources else None,
            )
            for pm_id in range(self.shape.processors)
        ]
        self.routers: list[MeshRouter] = [
            MeshRouter(pm, self.shape, config.input_buffer_flits) for pm in self.pms
        ]
        self.channels: list[Channel] = []
        self._wire()

    def _wire(self) -> None:
        # RPR001 regression note: wiring follows a fixed N/S/E/W
        # direction order (the insertion order of MeshShape.neighbors),
        # made explicit here so channel registration order — and with it
        # utilization accounting and the active-set wake maps — can
        # never depend on an unordered container.
        for node in range(self.shape.processors):
            router = self.routers[node]
            neighbors = self.shape.neighbors(node)
            for direction in ("N", "S", "E", "W"):
                if direction not in neighbors:
                    continue
                neighbor_id = neighbors[direction]
                channel = Channel(
                    name=f"mesh.link{node}{direction}", klass="mesh", speed=1
                )
                router.connect(direction, self.routers[neighbor_id], channel)
                self.channels.append(channel)

    # ------------------------------------------------------------------
    def register(self, engine: Engine) -> None:
        # PMs first: update order (and hence metric recording order)
        # is registration order, shared by both schedulers.
        engine.add_components(self.pms)
        engine.add_components(self.routers)
        for channel in self.channels:
            engine.register_channel(channel)

    # ------------------------------------------------------------------
    @property
    def levels_present(self) -> list[str]:
        return ["mesh"]

    def flits_carried(self, level: str | None = None) -> int:
        if level not in (None, "mesh"):
            return 0
        return sum(c.flits_carried for c in self.channels)

    def opportunities(self, cycles: int, level: str | None = None) -> float:
        if level not in (None, "mesh"):
            return 0.0
        return float(len(self.channels) * cycles)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MeshNetwork({self.shape.side}x{self.shape.side}, "
            f"cl={self.config.cache_line_bytes}B, buf={self.config.buffer_flits})"
        )
