"""End-to-end service smoke: the CI gate for ``repro.service``.

Drives a real server over HTTP and asserts the serving contract:

1. a small fig07-style two-level-ring sweep job completes (cold);
2. resubmitting the identical job is answered entirely from cache
   (warm hits, zero new simulations);
3. 16 identical concurrent requests for a fresh point coalesce onto
   one simulation (dedup ratio >= 15/16);
4. a served result is byte-identical JSON to a direct
   :func:`repro.runtime.run_point` of the same spec;
5. the server shuts down cleanly on request.

Usage::

    PYTHONPATH=src python -m repro.service.smoke --spawn             # own server
    PYTHONPATH=src python -m repro.service.smoke --port 8650         # existing one
"""

from __future__ import annotations

import argparse
import concurrent.futures
import subprocess
import sys
import tempfile
import threading
import time

from ..core.config import RingSystemConfig, SimulationParams, WorkloadConfig
from ..runtime import PointSpec, ResultCache, run_point
from ..runtime.serialization import canonical_json, result_payload
from .client import ServiceClient

#: fig07's workload: R=1.0 locality, C=0.04 miss rate, T=4 outstanding.
FIG07_WORKLOAD = WorkloadConfig(locality=1.0, miss_rate=0.04, outstanding=4)
SMOKE_PARAMS = SimulationParams(batch_cycles=400, batches=2, seed=11)
HERD_PARAMS = SimulationParams(batch_cycles=2500, batches=3, seed=424242)
HERD_CLIENTS = 16


def fig07_points() -> "list[dict]":
    """A small slice of fig7's 2-level ring sweep as spec payloads."""
    points = []
    for locals_per_ring in (4, 6, 8):
        spec = PointSpec.of(
            RingSystemConfig(topology=f"2:{locals_per_ring}", cache_line_bytes=32),
            FIG07_WORKLOAD,
            SMOKE_PARAMS,
        )
        points.append(spec.payload())
    return points


def herd_point() -> dict:
    """A pinned-seed point no other smoke step has put in any cache."""
    spec = PointSpec(
        system=RingSystemConfig(topology="2:8", cache_line_bytes=32),
        workload=FIG07_WORKLOAD,
        params=HERD_PARAMS,
    )
    return spec.payload()


def _wait_healthy(client: ServiceClient, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout  # repro: noqa[RPR002]
    last_error: "Exception | None" = None
    while time.monotonic() < deadline:  # repro: noqa[RPR002]
        try:
            if client.healthz().get("status") == "ok":
                return
        except Exception as exc:
            last_error = exc
        time.sleep(0.2)
    raise RuntimeError(f"service never became healthy: {last_error}")


def _run_herd(host: str, port: int, point: dict) -> "list[tuple[str, str]]":
    """Fire HERD_CLIENTS identical requests as concurrently as possible."""
    barrier = threading.Barrier(HERD_CLIENTS)

    def one() -> "tuple[str, str]":
        client = ServiceClient(host, port)
        try:
            client.healthz()  # open the connection before the barrier
            barrier.wait(timeout=30)
            return client.run_point(point)
        finally:
            client.close()

    with concurrent.futures.ThreadPoolExecutor(max_workers=HERD_CLIENTS) as pool:
        return list(pool.map(lambda __: one(), range(HERD_CLIENTS)))


def run_smoke(host: str, port: int, *, shutdown: bool) -> int:
    client = ServiceClient(host, port)
    _wait_healthy(client)
    print(f"smoke: service healthy on {host}:{port}")

    points = fig07_points()
    job_id = client.submit_job(points)
    status = client.wait_for_job(job_id)
    assert status["state"] == "done", f"cold job failed: {status}"
    cold_sources = status["sources"]
    print(f"smoke: cold fig07 job {job_id} done, sources {cold_sources}")

    # The same sweep again: every point must be a cache hit now.
    job_id = client.submit_job(points)
    events = [e["event"] for e in client.stream_events(job_id)]
    status = client.job_status(job_id, results=True)
    assert status["state"] == "done", f"warm job failed: {status}"
    warm_sources = status["sources"]
    warm_hits = warm_sources.get("mem", 0) + warm_sources.get("disk", 0)
    assert warm_hits == len(points), (
        f"warm resubmission was not served from cache: {warm_sources}"
    )
    assert "finished" in events and events.count("point") == len(points)
    print(f"smoke: warm fig07 job {job_id} all {warm_hits} points from cache")

    # Byte-identity: the served raw response vs a direct local run_point.
    served_text, source = client.run_point(points[0])
    spec = PointSpec.from_payload(points[0])
    with tempfile.TemporaryDirectory() as tmp:
        local = run_point(spec, cache=ResultCache(tmp))
    expected = canonical_json(result_payload(local))
    assert served_text == expected, "served result != direct run_point bytes"
    assert canonical_json(status["results"][0]) == expected
    print(f"smoke: served result ({source}) byte-identical to direct run_point")

    # Thundering herd: 16 identical concurrent requests, one simulation.
    before = client.stats()["tiers"]["sources"]
    responses = _run_herd(host, port, herd_point())
    after = client.stats()["tiers"]["sources"]
    computed = after["computed"] - before["computed"]
    dedup = after["dedup"] - before["dedup"]
    assert len(set(text for text, __ in responses)) == 1, (
        "herd responses were not byte-identical"
    )
    ratio = (HERD_CLIENTS - computed) / HERD_CLIENTS
    assert computed == 1, f"herd cost {computed} simulations, expected 1"
    assert ratio >= 15 / 16, f"dedup ratio {ratio:.3f} below 15/16"
    print(
        f"smoke: herd of {HERD_CLIENTS} -> {computed} simulation, "
        f"{dedup} dedup waits (ratio {ratio:.3f})"
    )

    if shutdown:
        client.shutdown()
        print("smoke: shutdown requested")
    else:
        client.close()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8650)
    parser.add_argument(
        "--spawn",
        action="store_true",
        help="start (and cleanly stop) a server subprocess on --port",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="disk cache root for a --spawn'd server (default: a temp dir)",
    )
    args = parser.parse_args(argv)

    if not args.spawn:
        return run_smoke(args.host, args.port, shutdown=False)

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = args.cache_dir or tmp
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--host",
                args.host,
                "--port",
                str(args.port),
                "--shards",
                "2",
                "--workers-per-shard",
                "2",
                "--cache-dir",
                cache_dir,
            ],
        )
        try:
            status = run_smoke(args.host, args.port, shutdown=True)
            exit_code = proc.wait(timeout=60)
            assert exit_code == 0, f"server exited {exit_code}, expected 0"
            print("smoke: server exited cleanly")
            return status
        finally:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=30)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
