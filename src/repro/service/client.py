"""Clients for the sweep service's HTTP/JSON API.

:class:`ServiceClient` is a small blocking client on
:mod:`http.client` — convenient for tests, scripts and the smoke
driver.  :class:`AsyncServiceClient` speaks the same API over a single
persistent asyncio connection; the load-generator benchmark opens one
per simulated user so request latency includes no reconnect cost.

Both return the *raw response text* for point results: the service's
responses are canonical result payloads, byte-identical to a direct
``run_point`` serialization, and parsing/re-dumping them would be the
easiest way to destroy that property.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any, Iterator


class ServiceError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, body: str) -> None:
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body


class ServiceClient:
    """Blocking keep-alive client for one service endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: "http.client.HTTPConnection | None" = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _request(
        self, method: str, path: str, payload: "dict[str, Any] | None" = None
    ) -> "tuple[int, str, dict[str, str]]":
        body = json.dumps(payload, sort_keys=True) if payload is not None else None
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(
                    method,
                    path,
                    body=body,
                    headers={"Content-Type": "application/json"} if body else {},
                )
                response = conn.getresponse()
                text = response.read().decode("utf-8")
                headers = {k.lower(): v for k, v in response.getheaders()}
                return response.status, text, headers
            except (http.client.HTTPException, ConnectionError, OSError):
                # Stale keep-alive connection: reconnect once.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _json(
        self, method: str, path: str, payload: "dict[str, Any] | None" = None
    ) -> "dict[str, Any]":
        status, text, __ = self._request(method, path, payload)
        if status >= 400:
            raise ServiceError(status, text)
        parsed = json.loads(text)
        assert isinstance(parsed, dict)
        return parsed

    def healthz(self) -> "dict[str, Any]":
        return self._json("GET", "/healthz")

    def stats(self) -> "dict[str, Any]":
        return self._json("GET", "/stats")

    def run_point(
        self, point: "dict[str, Any]", *, derive_seed: bool = False
    ) -> "tuple[str, str]":
        """Run one spec payload; returns ``(canonical_text, source)``."""
        status, text, headers = self._request(
            "POST", "/points", {"point": point, "derive_seed": derive_seed}
        )
        if status >= 400:
            raise ServiceError(status, text)
        return text, headers.get("x-repro-source", "?")

    def submit_job(
        self,
        points: "list[dict[str, Any]]",
        *,
        priority: int = 0,
        derive_seed: bool = False,
    ) -> str:
        response = self._json(
            "POST",
            "/jobs",
            {"points": points, "priority": priority, "derive_seed": derive_seed},
        )
        job_id = response["job"]
        assert isinstance(job_id, str)
        return job_id

    def job_status(self, job_id: str, *, results: bool = False) -> "dict[str, Any]":
        suffix = "?results=1" if results else ""
        return self._json("GET", f"/jobs/{job_id}{suffix}")

    def stream_events(self, job_id: str) -> "Iterator[dict[str, Any]]":
        """Yield the job's NDJSON progress events until it finishes."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raise ServiceError(response.status, response.read().decode("utf-8"))
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        event = json.loads(line)
                        yield event
                        if event.get("final"):
                            return
        finally:
            conn.close()

    def wait_for_job(self, job_id: str, poll: float = 0.05) -> "dict[str, Any]":
        """Poll until the job reaches a terminal state; returns status."""
        import time

        while True:
            status = self.job_status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            time.sleep(poll)  # repro: noqa[RPR002] — client-side pacing

    def shutdown(self) -> None:
        try:
            self._json("POST", "/shutdown")
        except (ServiceError, ConnectionError, OSError):
            pass
        self.close()


class AsyncServiceClient:
    """One persistent asyncio connection speaking the service API."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def _request(
        self, method: str, path: str, body: bytes = b""
    ) -> "tuple[int, bytes, dict[str, str]]":
        if self._writer is None or self._reader is None:
            await self.connect()
        assert self._writer is not None and self._reader is not None
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("service closed the connection")
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, __, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        payload = await self._reader.readexactly(length) if length else b""
        return status, payload, headers

    async def run_point(
        self, point: "dict[str, Any]", *, derive_seed: bool = False
    ) -> "tuple[str, str]":
        """Run one spec payload; returns ``(canonical_text, source)``."""
        body = json.dumps(
            {"point": point, "derive_seed": derive_seed}, sort_keys=True
        ).encode("utf-8")
        status, payload, headers = await self._request("POST", "/points", body)
        text = payload.decode("utf-8")
        if status >= 400:
            raise ServiceError(status, text)
        return text, headers.get("x-repro-source", "?")

    async def stats(self) -> "dict[str, Any]":
        status, payload, __ = await self._request("GET", "/stats")
        if status >= 400:
            raise ServiceError(status, payload.decode("utf-8"))
        parsed = json.loads(payload)
        assert isinstance(parsed, dict)
        return parsed
