"""Sharded persistent worker pools for the sweep service.

One long-lived :class:`~concurrent.futures.ProcessPoolExecutor` per
shard; the shard for a point is chosen by its content hash
(:meth:`PointSpec.key`), so identical points always land on the same
shard — together with the single-flight layer above, a burst of
identical requests can never fan the same simulation across pools.

Every pool worker is initialized with the parent's precomputed
code-version salt (:func:`repro.runtime.prime_code_version_salt`), so
workers never re-hash the whole package's sources.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor

from ..core.errors import ConfigurationError
from ..core.simulation import SimulationResult
from ..runtime import PointSpec, prime_code_version_salt
from ..runtime.runner import _execute


def _warm() -> bool:
    """No-op worker task used to pre-spawn pool processes."""
    return True


class ShardedPools:
    """A fixed ring of process pools, addressed by point content hash."""

    def __init__(self, shards: int, workers_per_shard: int, salt: str) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if workers_per_shard < 1:
            raise ConfigurationError(
                f"workers_per_shard must be >= 1, got {workers_per_shard}"
            )
        self.workers_per_shard = workers_per_shard
        self._pools = [
            ProcessPoolExecutor(
                max_workers=workers_per_shard,
                initializer=prime_code_version_salt,
                initargs=(salt,),
            )
            for __ in range(shards)
        ]
        self.submitted = [0] * shards

    @property
    def shards(self) -> int:
        return len(self._pools)

    @property
    def total_workers(self) -> int:
        return self.shards * self.workers_per_shard

    def shard_for(self, spec_key: str) -> int:
        """Stable shard index from the leading bits of the content hash."""
        return int(spec_key[:8], 16) % len(self._pools)

    def warm_up(self) -> None:
        """Spawn every worker now so first requests don't pay fork cost."""
        waits = []
        for pool in self._pools:
            waits.extend(pool.submit(_warm) for __ in range(self.workers_per_shard))
        for future in waits:
            future.result()

    async def run(self, spec: PointSpec, spec_key: str) -> SimulationResult:
        """Simulate *spec* on its home shard; awaitable from the loop."""
        shard = self.shard_for(spec_key)
        self.submitted[shard] += 1
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pools[shard], _execute, spec)

    def shutdown(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)

    def describe(self) -> dict:
        return {
            "shards": self.shards,
            "workers_per_shard": self.workers_per_shard,
            "submitted": list(self.submitted),
        }
