"""Two-tier cache with single-flight deduplication (asyncio side).

Request path for one point, in order:

1. **memory** — the process-wide
   :class:`~repro.runtime.memcache.MemCache` LRU (canonical text served
   verbatim, no JSON parse, no disk I/O);
2. **disk** — the code-version-salted
   :class:`~repro.runtime.cache.ResultCache` (hit re-canonicalized and
   promoted into memory);
3. **in-flight** — another request is already computing this exact
   key: await its future instead of simulating again (``dedup``);
4. **compute** — submit to the sharded pools, write through both cache
   tiers, resolve the in-flight future for any coalesced waiters.

Steps 1–3 happen without yielding to the event loop, so the
check-then-register window for the in-flight map is atomic under
asyncio's cooperative scheduling: N identical concurrent requests cost
exactly one simulation and N−1 awaits.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from ..core.simulation import SimulationResult
from ..runtime import GLOBAL_MEMCACHE, MemCache, PointSpec, ResultCache
from ..runtime.memcache import entry_key
from ..runtime.runner import cache_lookup, cache_store
from ..runtime.serialization import canonical_json, result_payload

#: How a response was produced, in increasing order of cost.
SOURCES = ("mem", "disk", "dedup", "computed")


class TieredCache:
    """Memory + disk caching and single-flight dedup for the service."""

    def __init__(
        self, disk: ResultCache | None, mem: MemCache | None = None
    ) -> None:
        self.disk = disk
        self.mem = mem if mem is not None else GLOBAL_MEMCACHE
        self._inflight: dict[str, asyncio.Future[str]] = {}
        self.counters = {source: 0 for source in SOURCES}

    def _mem_key(self, spec_key: str) -> str:
        root = str(self.disk.root) if self.disk is not None else "<no-disk>"
        salt = self.disk.salt if self.disk is not None else "<no-disk>"
        return entry_key(root, salt, spec_key)

    def lookup(self, spec: PointSpec, spec_key: str) -> "tuple[str, str] | None":
        """Synchronous tier probe: ``(canonical_text, source)`` or None."""
        if self.disk is not None:
            hit = cache_lookup(self.disk, spec, spec_key, mem=self.mem)
            if hit is not None:
                return hit[0], hit[2]
            return None
        if self.mem.enabled:
            mem_hit = self.mem.get(self._mem_key(spec_key))
            if mem_hit is not None:
                return mem_hit[0], "mem"
        return None

    def store(self, spec: PointSpec, spec_key: str, result: SimulationResult) -> str:
        """Write *result* through every active tier; returns its text."""
        if self.disk is not None:
            return cache_store(self.disk, spec, result, spec_key, mem=self.mem)
        text = canonical_json(result_payload(result))
        self.mem.put(self._mem_key(spec_key), text, result)
        return text

    async def fetch(
        self,
        spec: PointSpec,
        compute: Callable[[], Awaitable[SimulationResult]],
    ) -> "tuple[str, str]":
        """Serve one point: ``(canonical_text, source)``.

        *compute* is only awaited on a full miss with no identical
        request already in flight.
        """
        spec_key = spec.key()
        hit = self.lookup(spec, spec_key)
        if hit is not None:
            self.counters[hit[1]] += 1
            return hit
        pending = self._inflight.get(spec_key)
        if pending is not None:
            self.counters["dedup"] += 1
            # shield(): one cancelled waiter must not tear down the
            # shared computation other waiters (and the cache) rely on.
            text = await asyncio.shield(pending)
            return text, "dedup"
        future: asyncio.Future[str] = asyncio.get_running_loop().create_future()
        self._inflight[spec_key] = future
        try:
            result = await compute()
            text = self.store(spec, spec_key, result)
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                # A failure with no coalesced waiters would otherwise log
                # "exception was never retrieved" at GC time.
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(text)
            self.counters["computed"] += 1
            return text, "computed"
        finally:
            self._inflight.pop(spec_key, None)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def describe(self) -> dict:
        info = {
            "sources": dict(self.counters),
            "inflight": self.inflight,
            "memory": vars(self.mem.stats()),
        }
        if self.disk is not None:
            info["disk_root"] = str(self.disk.root)
            info["salt"] = self.disk.salt
        return info
