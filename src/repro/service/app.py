"""The async sweep service: HTTP/JSON job API over ``repro.runtime``.

A long-running asyncio server that turns the figure-sweep runner into a
shared simulation service.  Request path for every point: in-memory LRU
→ salted disk cache → single-flight in-flight map → sharded persistent
process pools (shard chosen by point content hash).  Served results are
byte-identical to a direct :func:`repro.runtime.run_point` of the same
spec — responses carry the canonical result payload text.

Endpoints (all JSON):

===========================  ========================================
``GET  /healthz``            liveness + uptime
``GET  /stats``              request, cache-tier and shard counters
``POST /points``             run one point synchronously; body is the
                             spec payload ``{system, workload,
                             params}`` (optionally ``{"point": ...,
                             "derive_seed": true}``); response body is
                             the canonical result text, the
                             ``X-Repro-Source`` header says which tier
                             produced it
``POST /jobs``               submit a sweep: ``{"points": [...],
                             "priority": 0, "derive_seed": false}`` →
                             ``{"job": "<id>"}``; higher priority runs
                             first
``GET  /jobs/<id>``          job status; ``?results=1`` splices each
                             point's canonical result text into a
                             ``results`` array (byte-exact); 410 for
                             ids evicted by finished-job retention
                             (TTL + cap, oldest completion first),
                             400 for ids never issued
``GET  /jobs/<id>/events``   NDJSON progress event stream (chunked)
                             until the job reaches a terminal state
``POST /shutdown``           graceful stop: drain, close pools, exit
===========================  ========================================

The HTTP layer is a deliberately small HTTP/1.1 subset on asyncio
streams (keep-alive, Content-Length bodies, chunked responses for event
streams) — the container ships no third-party web framework, and the
service needs nothing more.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any
from urllib.parse import parse_qs, urlsplit

from ..core.errors import ConfigurationError
from ..runtime import GLOBAL_MEMCACHE, MemCache, PointSpec, ResultCache, code_version_salt
from .queue import Job, JobQueue
from .shards import ShardedPools
from .tiers import TieredCache

#: Default bind address for ``python -m repro.service``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8650

_MAX_BODY_BYTES = 64 * 1024 * 1024


class BadRequest(Exception):
    """Client error carried to an HTTP 400 response."""


class Gone(Exception):
    """A job id that existed but was evicted by retention — HTTP 410."""


#: Default retention for terminal (done/failed) jobs: evicted once
#: older than the TTL or once more than the cap are tracked, oldest
#: completion first.  Queued/running jobs are never evicted.
DEFAULT_JOB_TTL_SEC = 3600.0
DEFAULT_MAX_FINISHED_JOBS = 512


def _json_bytes(payload: "dict[str, Any]") -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class SweepService:
    """Service state: queue, shards, tiered cache, jobs, HTTP server."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        shards: int = 2,
        workers_per_shard: int = 2,
        cache: "ResultCache | None" = None,
        mem: "MemCache | None" = None,
        job_workers: int = 2,
        job_ttl_sec: "float | None" = DEFAULT_JOB_TTL_SEC,
        max_finished_jobs: int = DEFAULT_MAX_FINISHED_JOBS,
    ) -> None:
        if job_workers < 1:
            raise ConfigurationError(f"job_workers must be >= 1, got {job_workers}")
        if job_ttl_sec is not None and job_ttl_sec <= 0:
            raise ConfigurationError(
                f"job_ttl_sec must be positive or None (no TTL), got {job_ttl_sec}"
            )
        if max_finished_jobs < 1:
            raise ConfigurationError(
                f"max_finished_jobs must be >= 1, got {max_finished_jobs}"
            )
        self.host = host
        self.port = port
        # The salt is computed once here, in the parent; every pool
        # worker inherits it through the shard initializer and the
        # disk cache pins it for the service's lifetime.
        self.salt = cache.salt if cache is not None else code_version_salt()
        self.pools = ShardedPools(shards, workers_per_shard, self.salt)
        self.tiers = TieredCache(cache, mem)
        self.queue = JobQueue()
        self.jobs: "dict[str, Job]" = {}
        self.job_workers = job_workers
        self.job_ttl_sec = job_ttl_sec
        self.max_finished_jobs = max_finished_jobs
        self.requests: "dict[str, int]" = {}
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_evicted = 0
        self._job_seq = 0
        # Bounds how many executor submissions one job fans out at once.
        self._point_slots = asyncio.Semaphore(self.pools.total_workers * 4)
        self._server: "asyncio.base_events.Server | None" = None
        self._runners: "list[asyncio.Task[None]]" = []
        self._stopping = asyncio.Event()
        # Host wall-clock for uptime reporting only.
        self._started = time.monotonic()  # repro: noqa[RPR002]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the job-runner tasks."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.port = bound[1]
        self._runners = [
            asyncio.create_task(self._job_runner(), name=f"job-runner-{i}")
            for i in range(self.job_workers)
        ]

    async def serve(self, *, warm_up: bool = False) -> None:
        """Start, optionally pre-spawn workers, and run until shutdown."""
        await self.start()
        if warm_up:
            await asyncio.get_running_loop().run_in_executor(
                None, self.pools.warm_up
            )
        await self._stopping.wait()
        await self._shutdown()

    async def stop(self) -> None:
        self._stopping.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.queue.close()
        if self._runners:
            await asyncio.gather(*self._runners, return_exceptions=True)
        await asyncio.get_running_loop().run_in_executor(
            None, self.pools.shutdown
        )

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                try:
                    await self._dispatch(method, target, body, writer, keep_alive)
                except BadRequest as exc:
                    await self._respond_json(
                        writer, 400, {"error": str(exc)}, keep_alive
                    )
                except Gone as exc:
                    await self._respond_json(
                        writer, 410, {"error": str(exc)}, keep_alive
                    )
                except Exception as exc:  # surface, don't kill the server
                    await self._respond_json(
                        writer,
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                        keep_alive,
                    )
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BadRequest):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "tuple[str, str, dict[str, str], bytes] | None":
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise BadRequest(f"malformed request line: {line!r}")
        method, target, __version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, __, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise BadRequest(f"unacceptable content-length: {length}")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        keep_alive: bool,
        *,
        content_type: str = "application/json",
        extra_headers: "dict[str, str] | None" = None,
    ) -> None:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  410: "Gone", 500: "Internal Server Error"}.get(status, "OK")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        extras = extra_headers or {}
        for name in sorted(extras):
            head.append(f"{name}: {extras[name]}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: "dict[str, Any]",
        keep_alive: bool,
    ) -> None:
        await self._respond(writer, status, _json_bytes(payload), keep_alive)

    async def _dispatch(
        self,
        method: str,
        target: str,
        body: bytes,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> None:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)
        self.requests[f"{method} {path}"] = self.requests.get(f"{method} {path}", 0) + 1

        if method == "GET" and path == "/healthz":
            await self._respond_json(
                writer,
                200,
                {
                    "status": "ok",
                    # repro: noqa[RPR002] — host uptime telemetry only
                    "uptime_sec": round(time.monotonic() - self._started, 3),
                    "salt": self.salt,
                },
                keep_alive,
            )
        elif method == "GET" and path == "/stats":
            await self._respond_json(writer, 200, self.stats_payload(), keep_alive)
        elif method == "POST" and path == "/points":
            await self._handle_point(body, writer, keep_alive)
        elif method == "POST" and path == "/jobs":
            await self._handle_submit(body, writer, keep_alive)
        elif method == "GET" and path.startswith("/jobs/") and path.endswith("/events"):
            await self._handle_events(path.split("/")[2], writer)
        elif method == "GET" and path.startswith("/jobs/"):
            await self._handle_job_status(
                path.split("/")[2], query, writer, keep_alive
            )
        elif method == "POST" and path == "/shutdown":
            await self._respond_json(writer, 200, {"status": "stopping"}, False)
            await self.stop()
        else:
            await self._respond_json(
                writer, 404, {"error": f"no route for {method} {path}"}, keep_alive
            )

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _parse_specs(
        self, payloads: "list[dict[str, Any]]", derive_seed: bool
    ) -> "list[PointSpec]":
        specs = []
        for index, payload in enumerate(payloads):
            if not isinstance(payload, dict):
                raise BadRequest(f"point {index}: payload must be an object")
            try:
                specs.append(PointSpec.from_payload(payload, derive_seed=derive_seed))
            except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
                raise BadRequest(f"point {index}: {exc}") from exc
        return specs

    def _parse_body(self, body: bytes) -> "dict[str, Any]":
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    async def _handle_point(
        self, body: bytes, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        payload = self._parse_body(body)
        derive_seed = bool(payload.pop("derive_seed", False))
        point = payload.pop("point", None)
        spec = self._parse_specs([point if point is not None else payload], derive_seed)[0]
        text, source = await self.tiers.fetch(
            spec, lambda: self.pools.run(spec, spec.key())
        )
        await self._respond(
            writer,
            200,
            text.encode("utf-8"),
            keep_alive,
            extra_headers={"X-Repro-Source": source},
        )

    async def _handle_submit(
        self, body: bytes, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        payload = self._parse_body(body)
        points = payload.get("points")
        if not isinstance(points, list) or not points:
            raise BadRequest('"points" must be a non-empty array of spec payloads')
        specs = self._parse_specs(points, bool(payload.get("derive_seed", False)))
        priority = payload.get("priority", 0)
        if not isinstance(priority, int):
            raise BadRequest('"priority" must be an integer')
        self._job_seq += 1
        job = Job(job_id=f"job-{self._job_seq}", specs=specs, priority=priority)
        self.jobs[job.job_id] = job
        await job.events.append(
            {"event": "accepted", "job": job.job_id, "total": job.total,
             "priority": priority}
        )
        await self.queue.push(job)
        await self._respond_json(
            writer, 202, {"job": job.job_id, "total": job.total}, keep_alive
        )

    def _retire_finished(self) -> None:
        """Evict terminal jobs past the TTL or beyond the tracked cap.

        Eviction order is completion time, oldest first; queued and
        running jobs are never touched.  Keeps ``self.jobs`` bounded no
        matter how long the service runs.
        """
        finished = sorted(
            (
                (job.finished_at, job_id)
                for job_id, job in self.jobs.items()
                if job.finished_at is not None
            ),
        )
        # Host wall-clock drives retention telemetry only, never results.
        now = time.monotonic()  # repro: noqa[RPR002]
        evict: "list[str]" = []
        keep = len(finished)
        for finished_at, job_id in finished:
            assert finished_at is not None
            expired = (
                self.job_ttl_sec is not None
                and now - finished_at > self.job_ttl_sec
            )
            if expired or keep > self.max_finished_jobs:
                evict.append(job_id)
                keep -= 1
        for job_id in evict:
            del self.jobs[job_id]
            self.jobs_evicted += 1

    def _was_issued(self, job_id: str) -> bool:
        """Whether *job_id* is an id this service instance handed out.

        Ids are sequential (``job-1 .. job-<seq>``) and every issued id
        enters ``self.jobs``, so a well-formed id at or below the
        sequence counter that is now missing must have been evicted —
        an O(1) test with no tombstone bookkeeping.
        """
        prefix, __, number = job_id.partition("-")
        if prefix != "job" or not number.isdigit():
            return False
        return 1 <= int(number) <= self._job_seq

    def _job_or_bad_request(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is not None:
            return job
        if self._was_issued(job_id):
            raise Gone(
                f"job {job_id} was evicted after completion (retention: "
                f"ttl={self.job_ttl_sec}s, max_finished={self.max_finished_jobs})"
            )
        raise BadRequest(f"unknown job: {job_id}")

    async def _handle_job_status(
        self,
        job_id: str,
        query: "dict[str, list[str]]",
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> None:
        job = self._job_or_bad_request(job_id)
        status = job.status_payload()
        body = _json_bytes(status)
        if query.get("results", ["0"])[-1] in ("1", "true"):
            # The result texts are canonical already; splice them in
            # verbatim so every element stays byte-identical to a
            # direct run_point serialization of the same spec.
            texts = [text for text in job.results if text is not None]
            if len(texts) == job.total:
                spliced = b",".join(text.encode("utf-8") for text in texts)
                body = body[:-1] + b',"results":[' + spliced + b"]}"
        await self._respond(writer, 200, body, keep_alive)

    async def _handle_events(self, job_id: str, writer: asyncio.StreamWriter) -> None:
        job = self._job_or_bad_request(job_id)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        async for event in job.events.stream():
            chunk = _json_bytes(event) + b"\n"
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    async def _job_runner(self) -> None:
        while True:
            job = await self.queue.pop()
            if job is None:
                return
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        await job.events.append({"event": "started", "job": job.job_id})

        async def run_one(index: int, spec: PointSpec) -> None:
            async with self._point_slots:
                text, source = await self.tiers.fetch(
                    spec, lambda: self.pools.run(spec, spec.key())
                )
            job.results[index] = text
            job.sources[index] = source
            await job.events.append(
                {"event": "point", "job": job.job_id, "index": index,
                 "source": source, "done": job.done, "total": job.total}
            )

        outcomes = await asyncio.gather(
            *(run_one(i, spec) for i, spec in enumerate(job.specs)),
            return_exceptions=True,
        )
        errors = [exc for exc in outcomes if isinstance(exc, BaseException)]
        if errors:
            job.state = "failed"
            job.error = f"{type(errors[0]).__name__}: {errors[0]}"
            self.jobs_failed += 1
        else:
            job.state = "done"
            self.jobs_done += 1
        await job.events.append(
            {"event": "finished", "job": job.job_id, "state": job.state,
             "error": job.error, "final": True}
        )
        # Terminal-state stamp (host clock, retention telemetry only),
        # then sweep: completing a job is the only way the finished set
        # grows, so retiring here keeps the dict bounded.
        job.finished_at = time.monotonic()  # repro: noqa[RPR002]
        self._retire_finished()

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats_payload(self) -> "dict[str, Any]":
        # TTL expiry between job completions becomes visible on the
        # next stats read.
        self._retire_finished()
        return {
            # repro: noqa[RPR002] — host uptime telemetry only
            "uptime_sec": round(time.monotonic() - self._started, 3),
            "requests": dict(self.requests),
            "tiers": self.tiers.describe(),
            "pools": self.pools.describe(),
            "jobs": {
                "queued": len(self.queue),
                "tracked": len(self.jobs),
                "done": self.jobs_done,
                "failed": self.jobs_failed,
                "evicted": self.jobs_evicted,
                "retention": {
                    "ttl_sec": self.job_ttl_sec,
                    "max_finished": self.max_finished_jobs,
                },
            },
        }


class ServiceHandle:
    """A service running in a dedicated thread (tests, benchmarks)."""

    def __init__(self, service: SweepService, thread: threading.Thread) -> None:
        self.service = service
        self.thread = thread

    @property
    def port(self) -> int:
        return self.service.port

    def stop(self, timeout: float = 30.0) -> None:
        loop = getattr(self.service, "_loop", None)
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.service._stopping.set)
        self.thread.join(timeout=timeout)


def start_in_thread(service: SweepService, *, warm_up: bool = False) -> ServiceHandle:
    """Run *service* on a fresh event loop in a daemon thread.

    Returns once the listener is bound (so :attr:`SweepService.port`
    holds the real ephemeral port).
    """
    ready = threading.Event()
    failure: "list[BaseException]" = []

    def _main() -> None:
        async def _serve() -> None:
            service._loop = asyncio.get_running_loop()  # type: ignore[attr-defined]
            try:
                await service.start()
            except BaseException as exc:
                failure.append(exc)
                ready.set()
                raise
            ready.set()
            if warm_up:
                await asyncio.get_running_loop().run_in_executor(
                    None, service.pools.warm_up
                )
            await service._stopping.wait()
            await service._shutdown()

        asyncio.run(_serve())

    thread = threading.Thread(target=_main, name="repro-sweep-service", daemon=True)
    thread.start()
    ready.wait()
    if failure:
        raise failure[0]
    return ServiceHandle(service, thread)
