"""repro.service — async simulation-as-a-service over ``repro.runtime``.

The production-serving layer of the reproduction: a long-running
asyncio HTTP/JSON server (:class:`SweepService`) with

* a priority job queue (:mod:`repro.service.queue`) and per-job
  progress event streams (:mod:`repro.service.events`);
* sharded persistent process pools (:mod:`repro.service.shards`) —
  shard chosen by point content hash, workers primed with the parent's
  code-version salt;
* a two-tier cache with single-flight deduplication
  (:mod:`repro.service.tiers`): process-wide in-memory LRU in front of
  the salted disk cache, identical concurrent requests coalesced onto
  one in-flight simulation.

Served results are byte-identical to a direct
:func:`repro.runtime.run_point` of the same spec.  Start it with
``python -m repro.service``; drive it with
:class:`~repro.service.client.ServiceClient`; measure it with
``python -m benchmarks.bench_service``.
"""

from .app import DEFAULT_HOST, DEFAULT_PORT, ServiceHandle, SweepService, start_in_thread
from .client import AsyncServiceClient, ServiceClient, ServiceError
from .events import EventLog
from .queue import Job, JobQueue
from .shards import ShardedPools
from .tiers import TieredCache

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "AsyncServiceClient",
    "EventLog",
    "Job",
    "JobQueue",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "ShardedPools",
    "SweepService",
    "TieredCache",
    "start_in_thread",
]
