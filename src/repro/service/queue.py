"""Sweep jobs and the priority queue feeding the job runners.

A :class:`Job` is one submitted sweep: an ordered list of fully
resolved :class:`PointSpec`\\ s plus a priority.  Jobs wait in a
:class:`JobQueue` (max-priority, FIFO within a priority) until one of
the service's job-runner tasks claims them; each finished point's
canonical result text is stored in submission order, and every state
change appends to the job's :class:`~repro.service.events.EventLog`.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from ..runtime import PointSpec
from .events import EventLog

#: Job lifecycle states.
STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted sweep job."""

    job_id: str
    specs: "list[PointSpec]"
    priority: int = 0
    state: str = "queued"
    #: Canonical result text per point, in submission order.
    results: "list[str | None]" = field(default_factory=list)
    #: Response source per point ("mem"/"disk"/"dedup"/"computed").
    sources: "list[str | None]" = field(default_factory=list)
    error: str | None = None
    events: EventLog = field(default_factory=EventLog)
    # Host wall-clock is telemetry only, never simulated behaviour.
    submitted_at: float = field(default_factory=time.monotonic)  # repro: noqa[RPR002]
    #: Stamped (host clock) when the job reaches a terminal state;
    #: drives the service's TTL/cap retention of finished jobs.
    finished_at: float | None = None

    def __post_init__(self) -> None:
        if not self.results:
            self.results = [None] * len(self.specs)
        if not self.sources:
            self.sources = [None] * len(self.specs)

    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def done(self) -> int:
        return sum(1 for text in self.results if text is not None)

    def status_payload(self) -> "dict[str, Any]":
        counts: dict[str, int] = {}
        for source in self.sources:
            if source is not None:
                counts[source] = counts.get(source, 0) + 1
        return {
            "job": self.job_id,
            "state": self.state,
            "priority": self.priority,
            "total": self.total,
            "done": self.done,
            "sources": counts,
            "error": self.error,
        }


class JobQueue:
    """Priority queue of jobs: highest priority first, then FIFO."""

    def __init__(self) -> None:
        self._heap: "list[tuple[int, int, Job]]" = []
        self._counter = itertools.count()
        self._cond = asyncio.Condition()
        self._closed = False

    def __len__(self) -> int:
        return len(self._heap)

    async def push(self, job: Job) -> None:
        async with self._cond:
            if self._closed:
                raise RuntimeError("job queue is closed")
            heapq.heappush(self._heap, (-job.priority, next(self._counter), job))
            self._cond.notify()

    async def pop(self) -> "Job | None":
        """Next job by priority; ``None`` once closed and drained."""
        async with self._cond:
            while not self._heap and not self._closed:
                await self._cond.wait()
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    async def close(self) -> None:
        """Stop accepting jobs and wake every blocked ``pop``."""
        async with self._cond:
            self._closed = True
            self._cond.notify_all()
