"""``python -m repro.service`` — run the async sweep server.

Examples::

    PYTHONPATH=src python -m repro.service --port 8650 --shards 2 --workers-per-shard 2
    PYTHONPATH=src python -m repro.service --port 0 --no-cache   # ephemeral port
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import signal
import sys

from ..runtime import DEFAULT_CACHE_DIR, MemCache, ResultCache
from ..runtime.memcache import DEFAULT_MAX_BYTES, DEFAULT_MAX_ENTRIES
from .app import DEFAULT_HOST, DEFAULT_PORT, SweepService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Async sweep service: HTTP/JSON job API over repro.runtime",
    )
    parser.add_argument("--host", default=DEFAULT_HOST)
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"listen port; 0 picks an ephemeral one (default {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="worker-pool shards; identical points always land on the "
        "same shard (default 2)",
    )
    parser.add_argument(
        "--workers-per-shard",
        type=int,
        default=2,
        help="processes per shard pool (default 2)",
    )
    parser.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="concurrent jobs drained from the priority queue (default 2)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="disk result-cache root "
        f"(default: REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without the disk tier (memory LRU + dedup only)",
    )
    parser.add_argument(
        "--mem-entries",
        type=int,
        default=DEFAULT_MAX_ENTRIES,
        help="in-memory LRU entry bound; 0 disables the memory tier",
    )
    parser.add_argument(
        "--mem-bytes",
        type=int,
        default=DEFAULT_MAX_BYTES,
        help="in-memory LRU byte bound; 0 disables the memory tier",
    )
    parser.add_argument(
        "--no-warm-up",
        action="store_true",
        help="skip pre-spawning pool workers at startup",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    cache = None
    if not args.no_cache:
        root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR", "").strip() or None
        cache = ResultCache(root)
    service = SweepService(
        args.host,
        args.port,
        shards=args.shards,
        workers_per_shard=args.workers_per_shard,
        cache=cache,
        mem=MemCache(max_entries=args.mem_entries, max_bytes=args.mem_bytes),
        job_workers=args.job_workers,
    )

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, service._stopping.set)
        await service.start()
        tiers = "mem+disk" if cache is not None else "mem-only"
        print(
            f"repro-service listening on {service.host}:{service.port} "
            f"({service.pools.shards} shards x "
            f"{service.pools.workers_per_shard} workers, {tiers}, "
            f"salt {service.salt})",
            flush=True,
        )
        if not args.no_warm_up:
            await loop.run_in_executor(None, service.pools.warm_up)
        await service._stopping.wait()
        await service._shutdown()
        print("repro-service: clean shutdown", flush=True)

    asyncio.run(_main())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
