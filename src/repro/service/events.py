"""Per-job progress event streams.

An :class:`EventLog` is an append-only list of JSON-serializable event
dicts plus an :class:`asyncio.Condition`; any number of subscribers can
:meth:`stream` it concurrently, each getting every event exactly once
from its chosen start index, ending after the terminal event (one with
``"final": True``).
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator


class EventLog:
    """Append-only event list with async fan-out to live subscribers."""

    def __init__(self) -> None:
        self._events: list[dict[str, Any]] = []
        self._cond = asyncio.Condition()
        self._closed = False

    @property
    def events(self) -> "list[dict[str, Any]]":
        return list(self._events)

    @property
    def closed(self) -> bool:
        return self._closed

    async def append(self, event: "dict[str, Any]") -> None:
        """Append one event; ``final=True`` closes the log."""
        async with self._cond:
            if self._closed:
                raise RuntimeError("event log already closed")
            self._events.append(event)
            if event.get("final"):
                self._closed = True
            self._cond.notify_all()

    async def stream(self, start: int = 0) -> "AsyncIterator[dict[str, Any]]":
        """Yield events from *start* until the log closes."""
        index = start
        while True:
            async with self._cond:
                while index >= len(self._events) and not self._closed:
                    await self._cond.wait()
                batch = self._events[index:]
                index = len(self._events)
                closed = self._closed
            for event in batch:
                yield event
            if closed:
                return
