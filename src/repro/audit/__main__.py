"""Entry point for ``python -m repro.audit``."""

from .cli import main

raise SystemExit(main())
