"""Runtime invariant auditing and cross-scheduler differential fuzzing.

``repro.audit`` machine-checks, every cycle, the conservation and
protocol invariants the simulator's correctness argument rests on
(flit conservation, buffer bounds, wormhole contiguity, transaction
lifecycle, transit priority — see :mod:`repro.audit.invariants` for the
full list), and fuzzes the three schedulers against each other on
randomized small configurations (:mod:`repro.audit.fuzz`).

Auditing follows the :mod:`repro.core.profiling` pattern: zero cost
when off, ambient enable/disable around a run::

    from repro.audit import Auditor, enabled

    with enabled(Auditor()) as auditor:
        result = simulate(system, workload, params)
    print(auditor.describe())

The columnar scheduler gives up byte-identity for throughput, so it is
gated statistically instead: :mod:`repro.audit.stat_equiv` runs paired
columnar-vs-bit-exact campaigns (overlapping cross-seed confidence
intervals for latency/throughput on every paper topology) and samples
running columnar engines, materializing one replica's columns back
into object form to check the same structural invariants.

Command line (see ``python -m repro.audit --help``)::

    python -m repro.audit fuzz --cases 50 --seed 0
    python -m repro.audit fuzz --cases 10 --include-columnar
    python -m repro.audit smoke
    python -m repro.audit stat-equiv --seeds 8

This ``__init__`` keeps heavy imports lazy: the engine imports
``repro.audit.runtime`` from inside ``_finalize`` (which executes this
module), so pulling the ring/mesh component classes in here would make
every unaudited engine pay for them.
"""

from __future__ import annotations

from typing import Any

from .runtime import current, disable, enable, enabled

__all__ = [
    "AuditError",
    "Auditor",
    "SamplingAuditor",
    "current",
    "disable",
    "enable",
    "enabled",
    "run_campaign",
]

#: Names resolved lazily on first attribute access (invariants imports
#: the ring and mesh packages; stat_equiv imports numpy and the
#: columnar engine).
_LAZY = {"Auditor", "AuditError"}
_LAZY_STAT = {"SamplingAuditor", "run_campaign"}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from . import invariants

        return getattr(invariants, name)
    if name in _LAZY_STAT:
        from . import stat_equiv

        return getattr(stat_equiv, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
