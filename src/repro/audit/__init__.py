"""Runtime invariant auditing and cross-scheduler differential fuzzing.

``repro.audit`` machine-checks, every cycle, the conservation and
protocol invariants the simulator's correctness argument rests on
(flit conservation, buffer bounds, wormhole contiguity, transaction
lifecycle, transit priority — see :mod:`repro.audit.invariants` for the
full list), and fuzzes the three schedulers against each other on
randomized small configurations (:mod:`repro.audit.fuzz`).

Auditing follows the :mod:`repro.core.profiling` pattern: zero cost
when off, ambient enable/disable around a run::

    from repro.audit import Auditor, enabled

    with enabled(Auditor()) as auditor:
        result = simulate(system, workload, params)
    print(auditor.describe())

Command line (see ``python -m repro.audit --help``)::

    python -m repro.audit fuzz --cases 50 --seed 0
    python -m repro.audit smoke

This ``__init__`` keeps heavy imports lazy: the engine imports
``repro.audit.runtime`` from inside ``_finalize`` (which executes this
module), so pulling the ring/mesh component classes in here would make
every unaudited engine pay for them.
"""

from __future__ import annotations

from typing import Any

from .runtime import current, disable, enable, enabled

__all__ = [
    "AuditError",
    "Auditor",
    "current",
    "disable",
    "enable",
    "enabled",
]

#: Names resolved lazily from :mod:`repro.audit.invariants` (which
#: imports the ring and mesh packages) on first attribute access.
_LAZY = {"Auditor", "AuditError"}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from . import invariants

        return getattr(invariants, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
