"""Cross-scheduler differential fuzzer.

The simulator's central correctness claim is that the four schedulers
(``naive`` / ``active`` / ``compiled`` / ``batched``) are
*behavior-identical*: for any configuration they produce byte-identical
canonical result JSON (``batched`` runs the case as a lockstep batch of
one replica).  The hand-picked equivalence matrix
(tests/integration/test_kernel_equivalence.py) enforces that claim on
representative points; this module attacks it with randomized small
configurations instead:

1. draw a :class:`FuzzCase` — topology (1–3 ring levels or a 2–4 side
   mesh), switching mode, clock-domain layout, buffer depth, M-MRP
   workload and run schedule — from a seeded ``random.Random``;
2. gate the generated topology through the static CDG prover
   (:func:`repro.checkers.static_routing_problem`, cached per distinct
   shape): a topology whose routing spec cannot be certified
   deadlock-free fails immediately as kind ``"spec"`` — no simulation
   time is spent chasing what would surface as a confusing watchdog
   timeout;
3. run it under all four schedulers with the runtime invariant auditor
   (:class:`repro.audit.Auditor`) enabled, so every cycle of every run
   is also checked for conservation/protocol violations;
4. assert the four canonical result payloads are byte-identical (a
   raised error is accepted only if all four schedulers raise the
   *same* error);
5. for clean bypass-flow-control cases, re-run once more with packet
   generation cut after the measured cycles and assert the network
   drains to full quiescence (transaction lifecycle: every request got
   exactly one response, nothing left in any buffer);
6. on any failure, greedily *shrink* the case through monotone
   reductions (fewer levels, smaller radix, shallower buffers, shorter
   run, T=1, ...) while it keeps failing, and write the minimal
   reproducer as JSON (replayable via ``python -m repro.audit replay``).

With ``include_columnar=True`` (CLI ``--include-columnar``) each clean
case additionally runs under the ``columnar`` scheduler with the
sampled materialization audit (:mod:`repro.audit.stat_equiv`) hooked
in.  Columnar results are only *statistically* equivalent, so they are
held to tolerant sanity gates — flit volume within a generous band of
the bit-exact baseline — rather than byte identity; materialization
invariant violations fail the case outright.  Slotted-switching cases
are skipped (the columnar engine models wormhole switching only).

Everything is deterministic in ``--seed``: the case stream, the
per-case simulation seeds, and the shrink order.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, replace
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Iterator, Literal

from ..checkers.model import static_routing_problem
from ..core.config import (
    CACHE_LINE_SIZES,
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
    format_hierarchy,
)
from ..core.engine import Engine
from ..core.errors import SimulationError
from ..core.pm import MetricsHub
from ..core.simulation import SystemConfig, build_network, simulate
from ..runtime.serialization import (
    canonical_json,
    params_from_payload,
    params_payload,
    result_payload,
    system_from_payload,
    system_payload,
    workload_from_payload,
    workload_payload,
)
from .invariants import AuditError, Auditor
from .runtime import enabled

SCHEDULERS = ("naive", "active", "compiled", "batched")

#: Mesh input-FIFO depths the fuzzer draws from (typed so a drawn
#: ``"cl"`` stays the literal the config field expects).
BUFFER_CHOICES: tuple[int | Literal["cl"], ...] = (1, 4, "cl")

#: Columnar sanity run: seeds per case and the tolerated total-flit
#: ratio against the bit-exact baseline.  Fuzz cases are short, so the
#: band is loose — the point is catching gross datapath breakage and
#: materialization invariant violations, not tight statistics (the
#: paired CI campaign in :mod:`repro.audit.stat_equiv` does that).
COLUMNAR_SEEDS = 3
COLUMNAR_RATIO_BAND = (0.4, 2.5)
COLUMNAR_AUDIT_INTERVAL = 50

#: Drain budget for the lifecycle pass: chunks of cycles stepped after
#: generation is cut, polling for quiescence between chunks.
DRAIN_CHUNK_CYCLES = 250
DRAIN_CHUNKS = 60

#: Cap on shrink re-runs per failing case (each re-run is 4 audited
#: simulations, so this bounds shrink cost at ~240 small sims).
SHRINK_BUDGET = 60


@dataclass(frozen=True)
class FuzzCase:
    """One randomized configuration under test."""

    system: SystemConfig
    workload: WorkloadConfig
    params: SimulationParams

    def payload(self) -> dict[str, Any]:
        return {
            "system": system_payload(self.system),
            "workload": workload_payload(self.workload),
            "params": params_payload(self.params),
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "FuzzCase":
        return FuzzCase(
            system=system_from_payload(payload["system"]),
            workload=workload_from_payload(payload["workload"]),
            params=params_from_payload(payload["params"]),
        )

    def describe(self) -> str:
        system = self.system
        if isinstance(system, RingSystemConfig):
            shape = (
                f"ring {system.topology} {system.switching}"
                f" cl={system.cache_line_bytes}"
                f" speed={system.global_ring_speed}"
            )
        else:
            shape = (
                f"mesh {system.side}x{system.side}"
                f" buf={system.buffer_flits} cl={system.cache_line_bytes}"
            )
        return (
            f"{shape} | C={self.workload.miss_rate} R={self.workload.locality}"
            f" T={self.workload.outstanding}"
            f" | {self.params.batches}x{self.params.batch_cycles}cyc"
            f" seed={self.params.seed} {self.params.flow_control}"
        )


@dataclass(frozen=True)
class CaseResult:
    """Outcome of running one case under every scheduler."""

    #: "ok" | "spec" | "divergence" | "violation" | "lifecycle" | "columnar"
    kind: str
    detail: str

    @property
    def failed(self) -> bool:
        return self.kind != "ok"


# ----------------------------------------------------------------------
# case generation
# ----------------------------------------------------------------------
def random_case(rng: random.Random) -> FuzzCase:
    """Draw one small random configuration from *rng*."""
    cache_line = rng.choice(CACHE_LINE_SIZES)
    if rng.random() < 0.6:
        levels = rng.choice((1, 1, 2, 2, 3))
        if levels == 1:
            branching: tuple[int, ...] = (rng.randint(2, 8),)
        elif levels == 2:
            branching = (rng.randint(2, 3), rng.randint(2, 4))
        else:
            branching = (2, 2, rng.randint(2, 3))
        # Stored in the paper's "2:3:4" string form so a payload
        # round-trip (reproducer JSON) reproduces an equal dataclass.
        system: SystemConfig = RingSystemConfig(
            topology=format_hierarchy(branching),
            cache_line_bytes=cache_line,
            global_ring_speed=2 if levels > 1 and rng.random() < 0.3 else 1,
            switching="slotted" if rng.random() < 0.25 else "wormhole",
        )
    else:
        system = MeshSystemConfig(
            side=rng.randint(2, 4),
            cache_line_bytes=cache_line,
            buffer_flits=rng.choice(BUFFER_CHOICES),
        )
    workload = WorkloadConfig(
        locality=rng.choice((1.0, 1.0, 0.9, 0.5)),
        miss_rate=rng.choice((0.01, 0.05, 0.1, 0.2)),
        outstanding=rng.randint(1, 8),
        read_fraction=rng.choice((0.7, 0.7, 0.5, 1.0)),
    )
    params = SimulationParams(
        batch_cycles=rng.choice((150, 250, 400)),
        batches=rng.choice((3, 4)),
        seed=rng.randrange(1 << 16),
        deadlock_threshold=3000,
        flow_control="conservative" if rng.random() < 0.15 else "bypass",
    )
    return FuzzCase(system, workload, params)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _mesh_spec_problem(side: int) -> str | None:
    return static_routing_problem(
        MeshSystemConfig(side=side, cache_line_bytes=32)
    )


@lru_cache(maxsize=None)
def _ring_spec_problem(topology: str) -> str | None:
    return static_routing_problem(
        RingSystemConfig(topology=topology, cache_line_bytes=32)
    )


def static_spec_problem(case: FuzzCase) -> str | None:
    """The CDG prover's objection to the case's topology, or ``None``.

    Routing depends only on the topology shape (never on cache-line
    size, buffer depth, ring speed, or the workload), so proofs are
    cached per distinct mesh side / ring branching — a whole campaign
    pays for each shape once.
    """
    system = case.system
    if isinstance(system, MeshSystemConfig):
        return _mesh_spec_problem(system.side)
    return _ring_spec_problem(format_hierarchy(system.branching))


def _run_one(case: FuzzCase, scheduler: str) -> tuple[str, str]:
    """(status, payload) for one audited run: ``("ok", canonical_json)``
    on success, ``("audit", message)`` on an invariant violation,
    ``("error", "Type: message")`` on any other simulation error."""
    params = replace(case.params, scheduler=scheduler)
    try:
        with enabled(Auditor()):
            result = simulate(case.system, case.workload, params)
    except AuditError as exc:
        return ("audit", f"{scheduler}: {exc}")
    except SimulationError as exc:
        return ("error", f"{type(exc).__name__}: {exc}")
    return ("ok", canonical_json(result_payload(result)))


def _lifecycle_problem(case: FuzzCase) -> str | None:
    """Drain the network after the measured run; report what is left.

    Only meaningful under bypass flow control (the conservative ablation
    can legitimately wedge a full ring, which is exactly why it is an
    ablation).
    """
    auditor = Auditor()
    metrics = MetricsHub()
    network = build_network(
        case.system, case.workload, metrics, seed=case.params.seed
    )
    engine = Engine(
        deadlock_threshold=case.params.deadlock_threshold,
        flow_control=case.params.flow_control,
        scheduler="compiled",
    )
    network.register(engine)
    try:
        with enabled(auditor):
            engine.run(case.params.total_cycles)
            for pm in network.pms:
                pm.generation_enabled = False
            for _ in range(DRAIN_CHUNKS):
                if auditor.quiescence_problem(engine) is None:
                    return None
                engine.run(DRAIN_CHUNK_CYCLES)
            return auditor.quiescence_problem(engine)
    except SimulationError as exc:
        return f"{type(exc).__name__} while draining: {exc}"


def _columnar_problem(case: FuzzCase, baseline_payload: str | None) -> str | None:
    """Columnar sanity run of *case*; ``None`` when clean or out of scope.

    Runs :data:`COLUMNAR_SEEDS` seeds on the columnar engine with the
    sampled materialization audit hooked in every
    :data:`COLUMNAR_AUDIT_INTERVAL` cycles, then gates the mean total
    flit volume against the bit-exact baseline's within
    :data:`COLUMNAR_RATIO_BAND`.  Slotted-switching cases are skipped
    (columnar models wormhole only); under conservative flow control a
    seed-dependent deadlock on either side is not a divergence.
    """
    system = case.system
    if isinstance(system, RingSystemConfig) and system.switching != "wormhole":
        return None
    from ..core.columnar import simulate_columnar
    from .stat_equiv import SamplingAuditor

    params = replace(case.params, scheduler="columnar")
    seeds = tuple(case.params.seed + i for i in range(COLUMNAR_SEEDS))
    auditor = SamplingAuditor()
    try:
        results = simulate_columnar(
            case.system,
            case.workload,
            params,
            seeds=seeds,
            cycle_hook=auditor,
            hook_interval=COLUMNAR_AUDIT_INTERVAL,
        )
    except AuditError as exc:
        return f"materialization audit: {exc}"
    except SimulationError as exc:
        if baseline_payload is None or case.params.flow_control == "conservative":
            # the bit-exact schedulers also failed, or the conservative
            # ablation wedged under columnar's (different) miss stream
            return None
        return f"{type(exc).__name__}: {exc}"
    if baseline_payload is None:
        return None  # every bit-exact scheduler errored; nothing to compare
    base_flits = json.loads(baseline_payload)["flits_moved"]
    col_flits = sum(r.flits_moved for r in results) / len(results)
    if base_flits == 0:
        if col_flits > 0:
            return f"baseline moved no flits, columnar moved {col_flits:.0f}"
        return None
    ratio = col_flits / base_flits
    lo, hi = COLUMNAR_RATIO_BAND
    if not lo <= ratio <= hi:
        return (
            f"flit volume ratio {ratio:.3f} outside [{lo}, {hi}] "
            f"(columnar mean {col_flits:.0f} vs baseline {base_flits})"
        )
    return None


def run_case(
    case: FuzzCase, lifecycle: bool = True, include_columnar: bool = False
) -> CaseResult:
    """Differential run of *case* under every scheduler, audited.

    The static spec gate runs first: a topology the CDG prover cannot
    certify deadlock-free fails as ``"spec"`` without simulating.
    """
    spec_problem = static_spec_problem(case)
    if spec_problem is not None:
        return CaseResult("spec", spec_problem)
    outcomes = {scheduler: _run_one(case, scheduler) for scheduler in SCHEDULERS}
    for scheduler, (status, detail) in outcomes.items():
        if status == "audit":
            return CaseResult("violation", detail)
    baseline_scheduler = SCHEDULERS[0]
    baseline = outcomes[baseline_scheduler]
    for scheduler in SCHEDULERS[1:]:
        if outcomes[scheduler] != baseline:
            return CaseResult(
                "divergence",
                f"{scheduler} disagrees with {baseline_scheduler}: "
                f"{_divergence_detail(baseline, outcomes[scheduler])}",
            )
    if (
        lifecycle
        and baseline[0] == "ok"
        and case.params.flow_control == "bypass"
    ):
        problem = _lifecycle_problem(case)
        if problem is not None:
            return CaseResult("lifecycle", problem)
    if include_columnar:
        payload = baseline[1] if baseline[0] == "ok" else None
        problem = _columnar_problem(case, payload)
        if problem is not None:
            return CaseResult("columnar", problem)
    return CaseResult("ok", "")


def _divergence_detail(a: tuple[str, str], b: tuple[str, str]) -> str:
    if a[0] != b[0]:
        return f"{a[0]} ({a[1][:120]}) vs {b[0]} ({b[1][:120]})"
    # Both "ok" with different JSON: report the first differing key.
    da, db = json.loads(a[1]), json.loads(b[1])
    for key in sorted(set(da) | set(db)):
        if da.get(key) != db.get(key):
            return f"result[{key!r}]: {da.get(key)!r} vs {db.get(key)!r}"
    return "payloads differ"


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def _reductions(case: FuzzCase) -> Iterator[FuzzCase]:
    """Candidate one-step reductions of *case*, most aggressive first.

    Every candidate is strictly "smaller" on some axis (fewer levels,
    smaller radix, shorter run, ...), so greedy adoption terminates.
    """
    system, workload, params = case.system, case.workload, case.params

    def with_system(new: SystemConfig) -> FuzzCase:
        return replace(case, system=new)

    if isinstance(system, RingSystemConfig):
        branching = system.branching
        if len(branching) > 1:
            yield with_system(
                replace(system, topology=format_hierarchy(branching[1:]))
            )
        if any(b > 2 for b in branching):
            yield with_system(
                replace(
                    system,
                    topology=format_hierarchy(tuple(min(b, 2) for b in branching)),
                )
            )
        for index, radix in enumerate(branching):
            if radix > 2:
                reduced = branching[:index] + (radix - 1,) + branching[index + 1:]
                yield with_system(
                    replace(system, topology=format_hierarchy(reduced))
                )
        if system.global_ring_speed == 2:
            yield with_system(replace(system, global_ring_speed=1))
        if system.switching == "slotted":
            yield with_system(replace(system, switching="wormhole"))
    else:
        if system.side > 2:
            yield with_system(replace(system, side=system.side - 1))
        if system.buffer_flits == "cl":
            yield with_system(replace(system, buffer_flits=4))
        if system.buffer_flits == 4:
            yield with_system(replace(system, buffer_flits=1))
    if system.cache_line_bytes > CACHE_LINE_SIZES[0]:
        smaller = max(c for c in CACHE_LINE_SIZES if c < system.cache_line_bytes)
        yield with_system(replace(system, cache_line_bytes=smaller))
    if params.batch_cycles > 50:
        yield replace(
            case, params=replace(params, batch_cycles=max(50, params.batch_cycles // 2))
        )
    if params.batches > 2:
        yield replace(case, params=replace(params, batches=2))
    if params.flow_control == "conservative":
        yield replace(case, params=replace(params, flow_control="bypass"))
    if workload.outstanding > 1:
        yield replace(
            case, workload=replace(workload, outstanding=workload.outstanding // 2)
        )
    if workload.locality != 1.0:
        yield replace(case, workload=replace(workload, locality=1.0))
    if workload.read_fraction != 0.7:
        yield replace(case, workload=replace(workload, read_fraction=0.7))


def shrink(
    case: FuzzCase,
    budget: int = SHRINK_BUDGET,
    log: Callable[[str], None] | None = None,
    include_columnar: bool = False,
) -> tuple[FuzzCase, CaseResult]:
    """Greedily reduce a failing *case* while it keeps failing.

    Accepts any failure kind as "still failing" (a reduction that turns
    a divergence into an invariant violation still reproduces the bug
    at a smaller size).  Returns the smallest failing case found and
    its result.
    """
    result = run_case(case, include_columnar=include_columnar)
    if not result.failed:
        raise ValueError("shrink() called on a passing case")
    attempts = 0
    improved = True
    while improved and attempts < budget:
        improved = False
        for candidate in _reductions(case):
            if attempts >= budget:
                break
            attempts += 1
            candidate_result = run_case(candidate, include_columnar=include_columnar)
            if candidate_result.failed:
                case, result = candidate, candidate_result
                if log is not None:
                    log(f"  shrunk to: {case.describe()}")
                improved = True
                break
    return case, result


# ----------------------------------------------------------------------
# campaign driver
# ----------------------------------------------------------------------
def write_reproducer(
    directory: Path, index: int, case: FuzzCase, result: CaseResult
) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"repro-{index:04d}-{result.kind}.json"
    payload = {
        "case": case.payload(),
        "kind": result.kind,
        "detail": result.detail,
        "describe": case.describe(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_fuzz(
    cases: int,
    seed: int,
    out_dir: Path,
    log: Callable[[str], None] = print,
    lifecycle: bool = True,
    include_columnar: bool = False,
) -> int:
    """Run a fuzz campaign; returns the number of failing cases.

    Failures are shrunk and written to *out_dir* as reproducer JSON.
    """
    rng = random.Random(seed)
    failures = 0
    for index in range(cases):
        case = random_case(rng)
        result = run_case(case, lifecycle=lifecycle, include_columnar=include_columnar)
        if not result.failed:
            log(f"[{index + 1}/{cases}] ok   {case.describe()}")
            continue
        failures += 1
        log(f"[{index + 1}/{cases}] FAIL {case.describe()}")
        log(f"  {result.kind}: {result.detail}")
        case, result = shrink(case, log=log, include_columnar=include_columnar)
        path = write_reproducer(out_dir, index, case, result)
        log(f"  minimal reproducer: {path}")
    log(
        f"fuzz: {cases} case(s), {failures} failure(s)"
        + (f", reproducers in {out_dir}" if failures else "")
    )
    return failures


def replay(path: Path, log: Callable[[str], None] = print) -> CaseResult:
    """Re-run a reproducer JSON written by :func:`run_fuzz`."""
    payload = json.loads(Path(path).read_text())
    case = FuzzCase.from_payload(payload["case"])
    log(f"replaying: {case.describe()}")
    result = run_case(case, include_columnar=payload.get("kind") == "columnar")
    log(f"{result.kind}" + (f": {result.detail}" if result.detail else ""))
    return result
