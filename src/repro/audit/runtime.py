"""Ambient on/off switch for the runtime invariant auditor.

Mirrors :mod:`repro.core.profiling`: the engine's hot loop pays nothing
while auditing is off — at finalize time the engine asks
:func:`current` once and installs the plain step function unless an
:class:`~repro.audit.invariants.Auditor` has been installed via
:func:`enable`, in which case it swaps in the audited step (a separate
function, so the unaudited paths carry zero audit branches).

Auditing is process-local ambient state, exactly like profiling: it
only observes engines *finalized* while it is enabled, so the
experiments CLI forces ``--jobs 1`` and disables the result cache when
``--audit`` is given.

This module deliberately imports nothing from the rest of the audit
package (or from the simulator): the engine imports it from inside
``_finalize``, and keeping it leaf-level makes that import cycle-proof
and nearly free.

Usage::

    from repro.audit import Auditor, enabled

    auditor = Auditor()
    with enabled(auditor):
        result = simulate(system, workload, params)
    print(auditor.describe())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - type-only import, no cycle
    from .invariants import Auditor

#: The process-wide active auditor (None = auditing off, zero-cost).
_ACTIVE: "Auditor | None" = None


def enable(auditor: "Auditor") -> None:
    """Install *auditor*; engines finalized afterwards report into it."""
    global _ACTIVE
    _ACTIVE = auditor


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None


def current() -> "Auditor | None":
    return _ACTIVE


@contextmanager
def enabled(auditor: "Auditor") -> Iterator["Auditor"]:
    """Scoped :func:`enable` / :func:`disable`."""
    enable(auditor)
    try:
        yield auditor
    finally:
        disable()
