"""Command line front end: ``python -m repro.audit <subcommand>``.

``fuzz``
    Differential fuzz campaign: randomized small configurations run
    under all three schedulers with the invariant auditor on, result
    JSON compared byte-for-byte, failures shrunk to minimal reproducer
    specs on disk.  Exit 1 if any case fails.

``smoke``
    Audited runs of one representative point per figure-family config
    (hierarchy depths, double-speed global ring, slotted switching,
    mesh buffer depths) under every scheduler, asserting byte-identical
    results and zero invariant violations.  Exit 1 on any violation or
    divergence.

``replay FILE``
    Re-run a reproducer JSON written by ``fuzz``.  Exit 1 if it still
    fails (i.e. exit 0 means the bug it captured is fixed).

``stat-equiv``
    Paired columnar-vs-bit-exact campaign (:mod:`repro.audit.stat_equiv`):
    every paper topology family runs under both schedulers across a
    common seed set, gated on overlapping cross-seed 95% confidence
    intervals for latency and throughput plus flit-volume agreement.
    Exit 1 if any point fails.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from pathlib import Path
from typing import Callable

from ..core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from ..core.simulation import SystemConfig, simulate
from ..runtime.serialization import canonical_json, result_payload
from .fuzz import SCHEDULERS, replay, run_fuzz
from .invariants import Auditor
from .runtime import enabled

#: Default reproducer output directory (mirrors the experiments layout).
DEFAULT_OUT = Path("results/audit")

#: One representative configuration per figure family (fig06–fig21
#: sweep the same system shapes over larger sizes and workloads).
SMOKE_SYSTEMS: list[tuple[str, SystemConfig]] = [
    ("ring-1level", RingSystemConfig(topology="8", cache_line_bytes=32)),
    ("ring-2level", RingSystemConfig(topology="2:4", cache_line_bytes=32)),
    ("ring-3level", RingSystemConfig(topology="2:2:4", cache_line_bytes=32)),
    (
        "ring-fast-global",
        RingSystemConfig(topology="2:2:4", cache_line_bytes=32, global_ring_speed=2),
    ),
    (
        "ring-slotted",
        RingSystemConfig(topology="2:4", cache_line_bytes=32, switching="slotted"),
    ),
    ("mesh-buf1", MeshSystemConfig(side=3, cache_line_bytes=32, buffer_flits=1)),
    ("mesh-buf4", MeshSystemConfig(side=4, cache_line_bytes=32, buffer_flits=4)),
    ("mesh-bufcl", MeshSystemConfig(side=3, cache_line_bytes=64, buffer_flits="cl")),
]

SMOKE_PARAMS = SimulationParams(batch_cycles=400, batches=3, seed=7)
SMOKE_WORKLOAD = WorkloadConfig(miss_rate=0.05, outstanding=4)


def run_smoke(log: Callable[[str], object] = print) -> int:
    """Audited cross-scheduler identity check on the smoke matrix."""
    failures = 0
    auditor = Auditor()
    for name, system in SMOKE_SYSTEMS:
        payloads: dict[str, str] = {}
        with enabled(auditor):
            for scheduler in SCHEDULERS:
                result = simulate(
                    system,
                    SMOKE_WORKLOAD,
                    replace(SMOKE_PARAMS, scheduler=scheduler),
                )
                payloads[scheduler] = canonical_json(result_payload(result))
        baseline = payloads[SCHEDULERS[0]]
        diverged = [s for s in SCHEDULERS[1:] if payloads[s] != baseline]
        if diverged:
            failures += 1
            log(f"{name}: DIVERGED ({', '.join(diverged)} vs {SCHEDULERS[0]})")
        else:
            log(f"{name}: ok")
    log(auditor.describe())
    if auditor.violations:
        failures += len(auditor.violations)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.audit",
        description="runtime invariant auditing and differential fuzzing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz_p = sub.add_parser("fuzz", help="differential fuzz campaign")
    fuzz_p.add_argument("--cases", type=int, default=50, help="cases to run")
    fuzz_p.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz_p.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="reproducer output directory"
    )
    fuzz_p.add_argument(
        "--no-lifecycle",
        action="store_true",
        help="skip the post-run drain/quiescence pass",
    )
    fuzz_p.add_argument(
        "--include-columnar",
        action="store_true",
        help="also run each clean case under the columnar scheduler "
        "with the sampled materialization audit and loose statistical "
        "sanity gates",
    )

    sub.add_parser("smoke", help="audited scheduler-identity smoke matrix")

    replay_p = sub.add_parser("replay", help="re-run a fuzz reproducer")
    replay_p.add_argument("file", type=Path, help="reproducer JSON path")

    equiv_p = sub.add_parser(
        "stat-equiv", help="columnar statistical-equivalence campaign"
    )
    equiv_p.add_argument(
        "--seeds", type=int, default=8, help="seeds per side of each paired point"
    )
    equiv_p.add_argument(
        "--seed", type=int, default=1, help="first simulation seed"
    )
    equiv_p.add_argument(
        "--baseline",
        default="compiled",
        choices=["compiled", "batched", "active", "naive"],
        help="bit-exact baseline scheduler (all are byte-identical; "
        "'batched' is the fastest)",
    )
    equiv_p.add_argument(
        "--points",
        default=None,
        metavar="SUBSTR[,SUBSTR...]",
        help="only run paper points whose name contains one of these "
        "substrings (e.g. 'ring-2level,mesh' for the fig7/fig12 "
        "families); default: all",
    )

    args = parser.parse_args(argv)
    if args.command == "fuzz":
        failures = run_fuzz(
            cases=args.cases,
            seed=args.seed,
            out_dir=args.out,
            lifecycle=not args.no_lifecycle,
            include_columnar=args.include_columnar,
        )
        return 1 if failures else 0
    if args.command == "smoke":
        return 1 if run_smoke() else 0
    if args.command == "replay":
        return 1 if replay(args.file).failed else 0
    if args.command == "stat-equiv":
        from .stat_equiv import paper_points, run_campaign

        points: list[tuple[str, SystemConfig]] | None = None
        if args.points is not None:
            wanted = [s.strip() for s in args.points.split(",") if s.strip()]
            points = [
                (name, system)
                for name, system in paper_points()
                if any(w in name for w in wanted)
            ]
            if not points:
                parser.error(
                    f"--points {args.points!r} matches no paper point; "
                    f"names: {', '.join(n for n, _ in paper_points())}"
                )
        reports = run_campaign(
            points=points,
            seeds=range(args.seed, args.seed + args.seeds),
            baseline=args.baseline,
            log=print,
        )
        failed = sum(1 for r in reports if not r.passed)
        print(
            f"stat-equiv: {len(reports)} point(s), {failed} failure(s)"
        )
        return 1 if failed else 0
    raise AssertionError(f"unhandled command {args.command!r}")
