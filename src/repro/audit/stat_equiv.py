"""Statistical-equivalence gating for the columnar scheduler.

The columnar engine (:mod:`repro.core.columnar`) deliberately gives up
byte-identity with the object schedulers: it draws misses from its own
per-replica Philox columns, so no flit-level diff against ``compiled``
is possible.  Correctness is instead re-established one layer up, where
the paper's claims actually live — at the statistics layer.  This
module provides the two halves of that argument:

**Paired campaigns** (:func:`run_campaign`, :func:`paired_point`) run
the same point under the columnar scheduler and a bit-exact baseline
across a common set of seeds and require the cross-seed 95% confidence
intervals of mean remote latency and throughput to overlap, and the
total flit volumes to agree within a ratio band.  The default campaign
(:func:`paper_points`) covers every topology family the paper
evaluates: single ring, 2- and 3-level hierarchies, the double-speed
global ring, and the mesh at 1-flit, 4-flit and cache-line buffers.

**Sampled materialization audits** (:func:`audit_replica`,
:class:`SamplingAuditor`) periodically freeze one replica of a running
columnar engine, materialize its struct-of-arrays columns back into the
object model's :class:`~repro.core.buffers.FlitBuffer` /
:class:`~repro.core.packet.Packet` vocabulary, and check the structural
invariants the object engine's auditor enforces: occupancy bounds,
wormhole contiguity, IRI routing contracts, mid-packet lock
consistency, transaction-count conservation and network flit
conservation.  A violation raises
:class:`~repro.audit.invariants.AuditError`, same as the object-model
auditor.

Command line: ``python -m repro.audit stat-equiv`` (see
:mod:`repro.audit.cli`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..core.buffers import FlitBuffer
from ..core.config import (
    MeshSystemConfig,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
)
from ..core.packet import Packet, PacketType
from ..core.statistics import _t_critical

if TYPE_CHECKING:
    from ..core.columnar import ColumnarEngine
    from ..core.simulation import SimulationResult, SystemConfig

#: Flit-volume agreement band for paired campaigns.  Wide enough for
#: honest sampling noise at short quick-scale runs, tight enough to
#: catch any systematic datapath divergence (a lost packet class or a
#: doubled response size shifts volume by far more than this).
FLIT_RATIO_BAND = (0.75, 1.3333)

#: Default seed count per side of a paired campaign point.
DEFAULT_SEEDS = 8


# ----------------------------------------------------------------------
# cross-seed confidence intervals
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """A cross-seed 95% t confidence interval for one metric."""

    mean: float
    half_width: float
    n: int

    @property
    def lo(self) -> float:
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "Interval") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi


def cross_seed_interval(values: Sequence[float]) -> Interval:
    """95% t interval of per-seed metric means (seeds are independent)."""
    clean = [v for v in values if not math.isnan(v)]
    n = len(clean)
    if n == 0:
        return Interval(mean=math.nan, half_width=math.inf, n=0)
    mean = sum(clean) / n
    if n == 1:
        return Interval(mean=mean, half_width=math.inf, n=1)
    var = sum((v - mean) ** 2 for v in clean) / (n - 1)
    half = _t_critical(n - 1) * math.sqrt(var / n)
    return Interval(mean=mean, half_width=half, n=n)


# ----------------------------------------------------------------------
# paired campaign
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PairedReport:
    """Outcome of one columnar-vs-baseline point comparison."""

    name: str
    seeds: tuple[int, ...]
    #: metric -> (columnar interval, baseline interval)
    intervals: dict[str, tuple[Interval, Interval]]
    #: total columnar flits / total baseline flits
    flit_ratio: float
    failures: tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [f"[{self.name}] {'PASS' if self.passed else 'FAIL'}"]
        for metric, (col, base) in sorted(self.intervals.items()):
            lines.append(
                f"  {metric}: columnar {col.mean:.3f}±{col.half_width:.3f}"
                f" vs baseline {base.mean:.3f}±{base.half_width:.3f}"
                f" ({'overlap' if col.overlaps(base) else 'DISJOINT'})"
            )
        lines.append(f"  flit ratio: {self.flit_ratio:.4f}")
        lines.extend(f"  FAIL: {f}" for f in self.failures)
        return "\n".join(lines)


def _metric_values(
    results: "Sequence[SimulationResult]",
) -> dict[str, list[float]]:
    out: dict[str, list[float]] = {"latency": [], "throughput": []}
    for result in results:
        out["latency"].append(result.latency.mean)
        if result.throughput is not None:
            out["throughput"].append(result.throughput.mean)
    if not out["throughput"]:
        del out["throughput"]
    return out


def paired_point(
    name: str,
    system: "SystemConfig",
    workload: WorkloadConfig,
    params: SimulationParams,
    seeds: Sequence[int] | None = None,
    baseline: str = "compiled",
) -> PairedReport:
    """Run one point columnar vs *baseline* and gate on CI overlap.

    Both sides run the same seed set; the per-seed mean latencies and
    throughputs form two independent samples whose 95% t intervals must
    overlap, and total flit volume must agree within
    :data:`FLIT_RATIO_BAND`.  ``baseline`` may be any bit-exact
    scheduler — they are all byte-identical to each other (enforced by
    the scheduler-equivalence tests), so ``"batched"`` is a legitimate
    faster stand-in for ``"compiled"``.
    """
    from ..core.columnar import simulate_columnar
    from ..core.simulation import simulate_batch

    if seeds is None:
        seeds = tuple(range(params.seed, params.seed + DEFAULT_SEEDS))
    seeds = tuple(int(s) for s in seeds)
    col_params = replace(params, scheduler="columnar")
    base_params = replace(params, scheduler=baseline)
    col_results = simulate_columnar(system, workload, col_params, seeds=seeds)
    base_results = simulate_batch(system, workload, base_params, seeds=seeds)

    col_metrics = _metric_values(col_results)
    base_metrics = _metric_values(base_results)
    intervals: dict[str, tuple[Interval, Interval]] = {}
    failures: list[str] = []
    for metric in sorted(set(col_metrics) & set(base_metrics)):
        col_iv = cross_seed_interval(col_metrics[metric])
        base_iv = cross_seed_interval(base_metrics[metric])
        intervals[metric] = (col_iv, base_iv)
        if col_iv.n == 0 and base_iv.n == 0:
            continue  # neither side measured it (e.g. zero remote traffic)
        if col_iv.n == 0 or base_iv.n == 0:
            failures.append(f"{metric}: measured on only one side")
        elif not col_iv.overlaps(base_iv):
            failures.append(
                f"{metric}: disjoint 95% CIs "
                f"(columnar [{col_iv.lo:.3f}, {col_iv.hi:.3f}] vs "
                f"baseline [{base_iv.lo:.3f}, {base_iv.hi:.3f}])"
            )

    col_flits = sum(r.flits_moved for r in col_results)
    base_flits = sum(r.flits_moved for r in base_results)
    if base_flits == 0 and col_flits == 0:
        ratio = 1.0
    elif base_flits == 0 or col_flits == 0:
        ratio = math.inf
        failures.append(
            f"flit volume: one side moved no flits "
            f"(columnar {col_flits}, baseline {base_flits})"
        )
    else:
        ratio = col_flits / base_flits
        lo, hi = FLIT_RATIO_BAND
        if not lo <= ratio <= hi:
            failures.append(
                f"flit volume ratio {ratio:.4f} outside [{lo}, {hi}] "
                f"(columnar {col_flits}, baseline {base_flits})"
            )

    return PairedReport(
        name=name,
        seeds=seeds,
        intervals=intervals,
        flit_ratio=ratio,
        failures=tuple(failures),
    )


def paper_points() -> "list[tuple[str, SystemConfig]]":
    """One system per topology family the paper evaluates."""
    return [
        ("ring-1level", RingSystemConfig(topology="8", cache_line_bytes=32)),
        ("ring-2level", RingSystemConfig(topology="4:4", cache_line_bytes=32)),
        ("ring-3level", RingSystemConfig(topology="2:2:4", cache_line_bytes=32)),
        (
            "ring-fast-global",
            RingSystemConfig(
                topology="4:4", cache_line_bytes=32, global_ring_speed=2
            ),
        ),
        ("mesh-buf1", MeshSystemConfig(side=4, cache_line_bytes=32, buffer_flits=1)),
        ("mesh-buf4", MeshSystemConfig(side=4, cache_line_bytes=32, buffer_flits=4)),
        (
            "mesh-bufcl",
            MeshSystemConfig(side=4, cache_line_bytes=64, buffer_flits="cl"),
        ),
    ]


def run_campaign(
    points: "Sequence[tuple[str, SystemConfig]] | None" = None,
    workload: WorkloadConfig | None = None,
    params: SimulationParams | None = None,
    seeds: Sequence[int] | None = None,
    baseline: str = "compiled",
    log: Callable[[str], None] | None = None,
) -> list[PairedReport]:
    """Paired columnar-vs-baseline campaign over *points*.

    Defaults to :func:`paper_points` under the paper's workload
    (R=1.0, C=0.04, T=4) at a quick simulation scale.  Returns one
    :class:`PairedReport` per point; the campaign passes iff every
    report does.
    """
    if points is None:
        points = paper_points()
    if workload is None:
        workload = WorkloadConfig(locality=1.0, miss_rate=0.04, outstanding=4)
    if params is None:
        params = SimulationParams(batch_cycles=500, batches=3)
    reports: list[PairedReport] = []
    for name, system in points:
        report = paired_point(
            name, system, workload, params, seeds=seeds, baseline=baseline
        )
        reports.append(report)
        if log is not None:
            log(report.describe())
    return reports


# ----------------------------------------------------------------------
# sampled materialization audit
# ----------------------------------------------------------------------
@dataclass
class MaterializedReplica:
    """One replica's columns rebuilt in the object model's vocabulary."""

    replica: int
    cycle: int
    #: buffer name -> object-model FlitBuffer holding real Flit objects
    buffers: dict[str, FlitBuffer]
    #: packet id -> materialized Packet (only packets with flits in flight)
    packets: dict[int, Packet]


def _packet_type(resp: bool, read: bool) -> PacketType:
    if resp:
        return PacketType.READ_RESPONSE if read else PacketType.WRITE_RESPONSE
    return PacketType.READ_REQUEST if read else PacketType.WRITE_REQUEST


def _buffer_pids(engine: "ColumnarEngine", buf: int) -> list[int]:
    """Head-to-tail packet ids of the occupied slots of global buffer *buf*."""
    occ = int(engine._occ[buf])
    if occ == 0:
        return []
    head = int(engine._head[buf])
    base = buf << engine._blog
    mask = engine._smask
    return [int(engine._slots[base + ((head + i) & mask)]) for i in range(occ)]


def _materialize_packet(engine: "ColumnarEngine", pid: int) -> Packet:
    return Packet(
        _packet_type(bool(engine._pkt_resp[pid]), bool(engine._pkt_read[pid])),
        source=int(engine._pkt_src[pid]),
        destination=int(engine._pkt_dest[pid]),
        size_flits=int(engine._pkt_size[pid]),
        transaction_id=pid,
        issue_cycle=int(engine._pkt_issue[pid]),
    )


def materialize_replica(engine: "ColumnarEngine", replica: int) -> MaterializedReplica:
    """Rebuild one replica's buffer columns as object-model FlitBuffers.

    Each occupied slot run becomes real :class:`Flit` objects of a real
    :class:`Packet`; ``FlitBuffer.push`` enforces the object layer's
    capacity contract while filling, so a column that overflowed its
    buffer surfaces as the same :class:`OverflowError` the object
    engine would raise.  Flit indices are positional within the run
    (a wormhole packet may legitimately span several buffers, so the
    absolute flit index is not recoverable from one buffer alone).
    """
    B = engine.buffers_per_replica
    base = replica * B
    buffers: dict[str, FlitBuffer] = {}
    packets: dict[int, Packet] = {}
    for t, name in enumerate(engine.buffer_names):
        cap = int(engine._t_caps[t])
        sink = bool(engine._is_sink[base + t])
        fb = FlitBuffer(name, None if sink else cap)
        run_pid, run_len = -1, 0
        for pid in _buffer_pids(engine, base + t):
            if pid not in packets:
                packets[pid] = _materialize_packet(engine, pid)
            if pid == run_pid:
                run_len += 1
            else:
                run_pid, run_len = pid, 0
            packet = packets[pid]
            fb.push(packet.flits[min(run_len, packet.size_flits - 1)])
        buffers[name] = fb
    return MaterializedReplica(
        replica=replica, cycle=engine.cycle, buffers=buffers, packets=packets
    )


def audit_replica(engine: "ColumnarEngine", replica: int) -> list[str]:
    """Structural invariant check of one replica's columns.

    Returns a list of problem descriptions (empty when clean).  The
    checks mirror the object-model auditor's per-cycle invariants,
    re-expressed over the struct-of-arrays state:

    * buffer occupancy within ``[0, capacity]``; sink occupancy zero
      (sink arrivals eject into the receive counters immediately)
    * every occupied slot holds a live packet id, wormhole-contiguously
      (a packet's flits in one buffer form a single run no longer than
      the packet)
    * IRI routing contracts: up queues hold only packets leaving the
      subtree, down queues only packets entering it, with the
      request/response split intact (ring)
    * mid-packet port state: ``mid`` implies a positive remaining count
      below the packet size and a real continuation buffer (ring);
      a locked output implies its claimed input slot (mesh)
    * partial receives: a PM's receive counter stays below its packet's
      size
    * transaction conservation: per PM column,
      ``outstanding == open remote transactions + pending local
      accesses``, bounded by the workload's T
    * network flit conservation (whole engine, replica-independent):
      the net-flit counter equals total occupancy of the non-sink
      buffers
    """
    problems: list[str] = []
    B = engine.buffers_per_replica
    U = engine.ports_per_replica
    P = engine.processors
    base = replica * B

    npkt = engine._npkt
    runs: dict[int, list[int]] = {}
    for t, name in enumerate(engine.buffer_names):
        b = base + t
        occ = int(engine._occ[b])
        cap = int(engine._t_caps[t])
        sink = bool(engine._is_sink[b])
        if sink:
            if occ != 0:
                problems.append(f"{name}: sink occupancy {occ} != 0")
            continue
        if not 0 <= occ <= cap:
            problems.append(f"{name}: occupancy {occ} outside [0, {cap}]")
            continue
        pids = _buffer_pids(engine, b)
        seen: set[int] = set()
        run_pid, run_len = -1, 0
        for pid in pids:
            if not 1 <= pid < npkt:
                problems.append(f"{name}: slot holds invalid packet id {pid}")
                break
            if pid != run_pid:
                if pid in seen:
                    problems.append(
                        f"{name}: packet {pid} flits not contiguous "
                        f"(wormhole interleaving)"
                    )
                    break
                seen.add(pid)
                run_pid, run_len = pid, 0
            run_len += 1
            if run_len > int(engine._pkt_size[pid]):
                problems.append(
                    f"{name}: packet {pid} has {run_len} flits queued, "
                    f"size is {int(engine._pkt_size[pid])}"
                )
                break
            runs.setdefault(pid, []).append(t)

    # IRI routing contracts (ring only; the list is empty for meshes).
    for t, lo, hi, inside, is_resp in engine.iri_contracts:
        name = engine.buffer_names[t]
        for pid in _buffer_pids(engine, base + t):
            dest = int(engine._pkt_dest[pid])
            if (lo <= dest < hi) != inside:
                where = "inside" if inside else "outside"
                problems.append(
                    f"{name}: packet {pid} dest {dest} should be {where} "
                    f"subtree [{lo}, {hi})"
                )
            if bool(engine._pkt_resp[pid]) != is_resp:
                kind = "responses" if is_resp else "requests"
                problems.append(f"{name}: packet {pid} in {kind}-only queue")

    # Port wormhole state.
    ports = slice(replica * U, (replica + 1) * U)
    if engine.kind == "ring":
        mid = engine._mid[ports]
        rem = engine._rem[ports]
        cont = engine._cont_src[ports]
        for u in np.nonzero(mid)[0]:
            if rem[u] < 1:
                problems.append(
                    f"port {engine._t_port_names[u]}: mid-packet with "
                    f"remaining count {int(rem[u])}"
                )
            if cont[u] >= engine._sent:
                problems.append(
                    f"port {engine._t_port_names[u]}: mid-packet with "
                    f"sentinel continuation source"
                )
    else:
        lock = engine._lock[ports]
        rem = engine._rem[ports]
        for u in range(U):
            lk = int(lock[u])
            if lk == -1:
                continue
            if not 0 <= lk < 5:
                problems.append(
                    f"port {engine._t_port_names[u]}: lock {lk} outside [0, 5)"
                )
                continue
            gu = replica * U + u
            if not bool(engine._claimed[engine._m_router5[gu] + lk]):
                problems.append(
                    f"port {engine._t_port_names[u]}: locked input {lk} "
                    f"not claimed"
                )
            if rem[u] < 1:
                problems.append(
                    f"port {engine._t_port_names[u]}: locked with "
                    f"remaining count {int(rem[u])}"
                )
        # claimed is router-major (5 slots per router) while border
        # routers have their off-mesh output ports pruned, so the
        # replica's claim range is routers*5 wide, not U wide
        v5 = engine._routers_per_replica * 5
        claims = int(
            np.count_nonzero(engine._claimed[replica * v5 : (replica + 1) * v5])
        )
        locks = int(np.count_nonzero(lock >= 0))
        if claims != locks:
            problems.append(
                f"replica {replica}: {claims} claimed input slots "
                f"vs {locks} locked outputs"
            )

    # Partial receives and transaction conservation, per PM column.
    cols = slice(replica * P, (replica + 1) * P)
    rx_cnt = engine._rx_cnt[cols]
    rx_pid = engine._rx_pid[cols]
    outstanding = engine._outstanding[cols]
    rem_open = engine._rem_open[cols]
    local_pending = engine.local_pending_counts()[cols]
    limit = engine._t_limit
    for p in range(P):
        if rx_cnt[p] < 0 or (
            rx_cnt[p] > 0 and rx_cnt[p] >= int(engine._pkt_size[rx_pid[p]])
        ):
            problems.append(
                f"pm {p}: receive counter {int(rx_cnt[p])} not within "
                f"packet {int(rx_pid[p])}"
            )
        if not 0 <= int(outstanding[p]) <= limit:
            problems.append(
                f"pm {p}: outstanding {int(outstanding[p])} outside "
                f"[0, {limit}]"
            )
        if int(outstanding[p]) != int(rem_open[p]) + int(local_pending[p]):
            problems.append(
                f"pm {p}: outstanding {int(outstanding[p])} != "
                f"{int(rem_open[p])} open remote + "
                f"{int(local_pending[p])} pending local"
            )

    # Whole-engine flit conservation (independent of the sampled replica).
    real = ~engine._is_sink[: engine.replicas * B]
    in_network = int(engine._occ[: engine.replicas * B][real].sum())
    if in_network != engine._net_flits:
        problems.append(
            f"net flit counter {engine._net_flits} != "
            f"{in_network} flits in non-sink buffers"
        )
    return problems


class SamplingAuditor:
    """Cycle hook that materializes and audits replicas on a rotation.

    Attach via :func:`repro.core.columnar.simulate_columnar`'s
    ``cycle_hook`` / ``hook_interval`` arguments (or set the engine
    attributes directly).  Each firing audits one replica — rotating
    through all of them — and additionally exercises the full object
    materialization (:func:`materialize_replica`), so buffer-capacity
    violations surface through ``FlitBuffer.push`` exactly as they
    would in the object engine.  Raises
    :class:`~repro.audit.invariants.AuditError` on the first problem.
    """

    def __init__(self) -> None:
        self.samples = 0
        self._next_replica = 0

    def __call__(self, engine: "ColumnarEngine") -> None:
        from .invariants import AuditError

        replica = self._next_replica % engine.replicas
        self._next_replica = replica + 1
        self.samples += 1
        problems = audit_replica(engine, replica)
        if problems:
            raise AuditError(
                "columnar_materialization",
                engine.cycle,
                f"replica {replica} (seed {engine.seeds[replica]}): "
                + "; ".join(problems),
            )
        materialized = materialize_replica(engine, replica)
        for fb in materialized.buffers.values():
            # push() already enforced capacity; the conservation counter
            # must agree with content for a freshly filled buffer.
            if fb.conservation_delta() != 0:
                raise AuditError(
                    "columnar_materialization",
                    engine.cycle,
                    f"{fb.name}: conservation delta "
                    f"{fb.conservation_delta()} after materialization",
                )

    def describe(self) -> str:
        return f"materialization audit: {self.samples} samples, clean"
