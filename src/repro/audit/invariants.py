"""The runtime invariant auditor.

An :class:`Auditor` hooks the engine's propose/resolve/commit/update
step (installed by ``Engine._finalize`` when :func:`repro.audit.enable`
is active) and re-checks, from outside the datapath, the invariants the
three schedulers' equivalence argument rests on:

**Per subcycle, after propose** (:meth:`Auditor.check_proposals`)
    * every proposed flit is the head of its source FIFO;
    * at most one drain per source buffer and one fill per bounded
      destination buffer (the resolver's structural precondition);
    * transit-over-injection priority on wormhole ring ports: a fresh
      head-flit proposal from an injection queue is only legal when the
      transit buffer is empty (paper Section 2.1, "priority is given to
      packets that do not change rings");
    * body flits of a wormhole send follow the route pinned on the
      channel by their packet's head;
    * mesh proposals obey the declarative routing spec: a head flit
      offered to output *d* must have *d* in the legal-output set of
      :func:`repro.checkers.specs.mesh_legal_outputs` for its
      destination — the same table the static CDG prover certified, so
      the static and dynamic legality models are one artifact.

**Per subcycle, after resolve** (:meth:`Auditor.check_resolution`)
    * the surviving set is a valid fixed point (no surviving fill
      overflows its destination, counting same-subcycle drains under
      bypass flow control) and *maximal* (every revoked proposal would
      overflow, i.e. the resolver never over-revokes — the greatest
      fixed point, not just any fixed point);
    * wormhole contiguity per channel: flits of different packets never
      interleave on one link, and a packet's flits cross in index order
      (slotted ring links are exempt — slots are independent by design).

**Per subcycle, after commit** (:meth:`Auditor.check_commit`)
    * the commit loop moved exactly the resolved survivors;
    * ring wormhole route state: a committed head (non-tail) leaves the
      channel's incoming route open on its packet, a committed tail
      leaves it closed;
    * mesh crossbar lock symmetry
      (:meth:`~repro.mesh.router.MeshRouter.audit_check_locks`).

**Per base cycle, after update** (:meth:`Auditor.check_cycle_end`)
    * flit conservation per buffer: ``enqueued - dequeued == occupancy``
      (:meth:`~repro.core.buffers.FlitBuffer.conservation_delta`), and
      occupancy within capacity;
    * flit conservation per channel: ``flits_carried`` advanced by
      exactly the transfers the auditor saw commit over it;
    * flit conservation globally: ``engine.flits_moved`` equals the
      audited commit total;
    * transaction lifecycle per PM: ``outstanding`` equals open remote
      transactions plus pending local ones, and never exceeds the
      workload's T; globally, issued minus completed remote
      transactions equals the open-transaction population;
    * IRI routing contract: every packet parked in a *down* queue is
      destined inside the child subtree, every packet in an *up* queue
      outside it, and request/response queues hold only their kind.

**At drain** (:meth:`Auditor.check_quiescent`, used by the fuzzer)
    * with generation disabled and the network drained, every buffer is
      empty, every wormhole route closed, every PM's transaction window
      empty, and every issued remote request was matched by exactly one
      response (``remote_issued == remote_completed``).

The auditor is deliberately slow and object-level: it re-derives each
invariant from component state using none of the compiled datapath's
caches, so a bug in those caches cannot hide itself.  All violations
raise :class:`AuditError` immediately (and are kept in
:attr:`Auditor.violations` for post-mortem inspection).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..checkers.specs import mesh_legal_outputs
from ..core.buffers import FlitBuffer
from ..core.channel import Channel
from ..core.errors import SimulationError
from ..core.pm import ProcessingModule
from ..mesh.router import MeshRouter
from ..ring.iri import InterRingInterface
from ..ring.port import RingPort

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core.engine import Engine
    from ..core.packet import Flit
    from ..core.pm import MetricsHub

#: One audited proposal: (flit, source, dest, channel, owner, live).
Proposal = tuple[
    "Flit", FlitBuffer, FlitBuffer, "Channel | None", Any, bool
]
#: One audited survivor: a committed (flit, source, dest, channel, owner).
Survivor = tuple["Flit", FlitBuffer, FlitBuffer, "Channel | None", Any]


class AuditError(SimulationError):
    """A runtime invariant violation caught by the auditor."""

    def __init__(self, invariant: str, cycle: int, detail: str):
        self.invariant = invariant
        self.cycle = cycle
        self.detail = detail
        super().__init__(f"[{invariant}] cycle {cycle}: {detail}")


class Auditor:
    """Per-cycle invariant checker (see the module docstring).

    One instance may audit several engines in sequence (every point of
    a sweep): the engine-specific registries reset on each
    :meth:`attach`, the counters accumulate.
    """

    def __init__(self) -> None:
        #: base cycles fully audited, across all attached engines
        self.cycles_audited = 0
        #: individual proposals validated
        self.proposals_checked = 0
        #: engines attached (= simulation runs observed)
        self.engines_attached = 0
        #: violations found, as AuditError instances (raise-first: the
        #: list is only longer than one when callers swallow the raise)
        self.violations: list[AuditError] = []
        self._engine: "Engine | None" = None
        # --- per-engine registries, rebuilt by attach() ---
        # insertion-ordered buffer registry: id -> (buffer, enq0, deq0, occ0)
        self._buffers: dict[int, tuple[FlitBuffer, int, int, int]] = {}
        # channel conservation: id -> [channel, carried0, expected_delta]
        self._channels: dict[int, list[Any]] = {}
        # wormhole contiguity state: id -> [channel, open_packet, next_index]
        self._contiguity: dict[int, list[Any]] = {}
        self._slotted_channels: set[int] = set()
        # wormhole transit-first ports: id -> (port, injection buffer ids)
        self._transit_ports: dict[int, tuple[RingPort, frozenset[int]]] = {}
        self._ring_ports: list[RingPort] = []
        self._mesh_routers: list[MeshRouter] = []
        self._pms: list[ProcessingModule] = []
        self._iris: list[InterRingInterface] = []
        # One hub per replica under the batched engine; exactly one for
        # a solo run (deduped — every PM of a network shares its hub).
        self._metrics_hubs: "list[MetricsHub]" = []
        self._flits_moved_base = 0
        self._committed_total = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, engine: "Engine") -> None:
        """Index *engine*'s components; called from ``Engine._finalize``."""
        self._engine = engine
        self.engines_attached += 1
        self._buffers = {}
        self._channels = {}
        self._contiguity = {}
        self._slotted_channels = set()
        self._transit_ports = {}
        self._ring_ports = []
        self._mesh_routers = []
        self._pms = []
        self._iris = []
        self._metrics_hubs = []
        self._flits_moved_base = engine.flits_moved
        self._committed_total = 0
        seen_iris: set[int] = set()
        for component in engine.components:
            for buffer in (
                *component.propose_wake_buffers(),
                *component.update_wake_buffers(),
                *component.drain_wake_buffers(),
                *component.update_output_buffers(),
            ):
                self._track_buffer(buffer)
            if isinstance(component, RingPort):
                self._ring_ports.append(component)
                if component.out_channel is not None:
                    self._track_channel(component.out_channel)
                    if component.slotted:
                        self._slotted_channels.add(id(component.out_channel))
                if not component.slotted and component.transit_first:
                    self._transit_ports[id(component)] = (
                        component,
                        frozenset(
                            id(buffer) for buffer in component.injection_sources
                        ),
                    )
                # An IRI is not itself a component; recover it from the
                # bound classifier its two ports carry.
                owner = getattr(component.classify, "__self__", None)
                if isinstance(owner, InterRingInterface) and id(owner) not in seen_iris:
                    seen_iris.add(id(owner))
                    self._iris.append(owner)
            elif isinstance(component, MeshRouter):
                self._mesh_routers.append(component)
                for channel in component._out_channel.values():
                    if channel is not None:
                        self._track_channel(channel)
            elif isinstance(component, ProcessingModule):
                self._pms.append(component)
                if not any(hub is component.metrics for hub in self._metrics_hubs):
                    self._metrics_hubs.append(component.metrics)

    def _track_buffer(self, buffer: FlitBuffer) -> None:
        key = id(buffer)
        if key not in self._buffers:
            self._buffers[key] = (
                buffer,
                buffer.flits_enqueued,
                buffer.flits_dequeued,
                buffer.occupancy,
            )

    def _track_channel(self, channel: Channel) -> None:
        key = id(channel)
        if key not in self._channels:
            self._channels[key] = [channel, channel.flits_carried, 0]
            self._contiguity[key] = [channel, None, 0]

    # ------------------------------------------------------------------
    def _fail(self, invariant: str, detail: str) -> None:
        engine = self._engine
        error = AuditError(invariant, engine.cycle if engine else -1, detail)
        self.violations.append(error)
        raise error

    # ------------------------------------------------------------------
    # hook: after the propose phase of a subcycle
    # ------------------------------------------------------------------
    def check_proposals(self, engine: "Engine") -> None:
        proposals = engine.audit_proposals()
        self.proposals_checked += len(proposals)
        drained: set[int] = set()
        filled: set[int] = set()
        for flit, source, dest, channel, owner, _live in proposals:
            self._track_buffer(source)
            self._track_buffer(dest)
            if channel is not None:
                self._track_channel(channel)
            if not source._flits or source._flits[0] is not flit:
                self._fail(
                    "proposal-head",
                    f"{owner!r} proposed {flit!r} which is not the head "
                    f"of {source.name!r}",
                )
            if id(source) in drained:
                self._fail(
                    "one-drain-per-source",
                    f"two proposals drain buffer {source.name!r}",
                )
            drained.add(id(source))
            if dest.capacity is not None:
                if id(dest) in filled:
                    self._fail(
                        "one-fill-per-dest",
                        f"two proposals fill bounded buffer {dest.name!r}",
                    )
                filled.add(id(dest))
            entry = self._transit_ports.get(id(owner))
            if entry is not None:
                port, injection_ids = entry
                if (
                    flit.is_head
                    and not port.is_mid_packet
                    and id(source) in injection_ids
                    and port.transit_buffer._flits
                ):
                    self._fail(
                        "transit-priority",
                        f"{port.name}: injected head {flit!r} from "
                        f"{source.name!r} while transit buffer "
                        f"{port.transit_buffer.name!r} holds "
                        f"{port.transit_buffer.occupancy} flit(s)",
                    )
                if not flit.is_head and channel is not None:
                    if channel.incoming_packet is not flit.packet:
                        self._fail(
                            "wormhole-route-pin",
                            f"{port.name}: body flit {flit!r} proposed on "
                            f"{channel.name!r} whose open route belongs to "
                            f"{channel.incoming_packet!r}",
                        )
                    if channel.incoming_route is not dest:
                        self._fail(
                            "wormhole-route-pin",
                            f"{port.name}: body flit {flit!r} targets "
                            f"{dest.name!r} but the route pinned on "
                            f"{channel.name!r} is {channel.incoming_route!r}",
                        )
            elif isinstance(owner, MeshRouter) and flit.is_head:
                direction = owner._output_of_dest.get(dest)
                if direction is None:
                    self._fail(
                        "mesh-route",
                        f"{owner.name}: head {flit!r} proposed into "
                        f"{dest.name!r}, which is not one of its outputs",
                    )
                else:
                    # Legality comes from the same declarative spec
                    # table the static CDG prover certified — not from
                    # re-running the router's own route() against
                    # itself — so the static and dynamic layers cannot
                    # drift apart (LOCAL is legal exactly at the
                    # packet's destination).
                    allowed = mesh_legal_outputs(owner.shape)[
                        (owner.node, flit.packet.destination)
                    ]
                    if direction not in allowed:
                        self._fail(
                            "mesh-route",
                            f"{owner.name}: head of {flit.packet!r} offered "
                            f"to output {direction} but the routing spec "
                            f"allows {sorted(allowed)}",
                        )

    # ------------------------------------------------------------------
    # hook: after the resolve phase of a subcycle
    # ------------------------------------------------------------------
    def check_resolution(self, engine: "Engine") -> list[Survivor]:
        proposals = engine.audit_proposals()
        bypass = engine.flow_control == "bypass"
        # Surviving drain per source buffer, for the bypass test.
        live_drain_of: set[int] = set()
        for _flit, source, _dest, _chan, _owner, live in proposals:
            if live:
                live_drain_of.add(id(source))
        survivors: list[Survivor] = []
        for flit, source, dest, channel, owner, live in proposals:
            cap = dest.capacity
            draining = bypass and cap is not None and id(dest) in live_drain_of
            if live:
                if cap is not None and (
                    dest.occupancy - (1 if draining else 0) + 1 > cap
                ):
                    self._fail(
                        "resolve-fixed-point",
                        f"surviving fill of {dest.name!r} overflows: "
                        f"occupancy {dest.occupancy}, capacity {cap}, "
                        f"draining={draining} ({flit!r} from {source.name!r})",
                    )
                survivors.append((flit, source, dest, channel, owner))
            else:
                if cap is None:
                    self._fail(
                        "resolve-maximality",
                        f"proposal into unbounded {dest.name!r} was revoked "
                        f"({flit!r} from {source.name!r})",
                    )
                elif dest.occupancy - (1 if draining else 0) + 1 <= cap:
                    self._fail(
                        "resolve-maximality",
                        f"revoked fill of {dest.name!r} would not overflow: "
                        f"occupancy {dest.occupancy}, capacity {cap}, "
                        f"draining={draining} ({flit!r} from {source.name!r})",
                    )
        # Wormhole contiguity: advance the per-channel packet state with
        # this subcycle's survivors (at most one per channel).
        for flit, source, _dest, channel, _owner, live in proposals:
            if not live or channel is None:
                continue
            key = id(channel)
            if key in self._slotted_channels:
                continue  # slots are independently routed by design
            if key not in self._contiguity:
                self._track_channel(channel)
            state = self._contiguity[key]
            open_packet = state[1]
            if open_packet is None:
                if not flit.is_head:
                    self._fail(
                        "wormhole-contiguity",
                        f"channel {channel.name!r}: {flit!r} crosses with no "
                        f"packet open (expected a head flit)",
                    )
            else:
                if flit.packet is not open_packet:
                    self._fail(
                        "wormhole-contiguity",
                        f"channel {channel.name!r}: {flit!r} interleaves into "
                        f"open packet {open_packet!r}",
                    )
                if flit.index != state[2]:
                    self._fail(
                        "wormhole-contiguity",
                        f"channel {channel.name!r}: flit index {flit.index} "
                        f"of {open_packet!r} crossed out of order "
                        f"(expected index {state[2]})",
                    )
            if flit.is_tail:
                state[1] = None
                state[2] = 0
            else:
                state[1] = flit.packet
                state[2] = flit.index + 1
        return survivors

    # ------------------------------------------------------------------
    # hook: after the commit phase of a subcycle
    # ------------------------------------------------------------------
    def check_commit(
        self, engine: "Engine", survivors: list[Survivor], committed: int
    ) -> None:
        if committed != len(survivors):
            self._fail(
                "commit-count",
                f"commit loop reported {committed} transfers but resolution "
                f"left {len(survivors)} survivors",
            )
        self._committed_total += committed
        routers_touched: dict[int, MeshRouter] = {}
        for flit, _source, dest, channel, owner in survivors:
            if channel is not None:
                entry = self._channels.get(id(channel))
                if entry is None:
                    self._track_channel(channel)
                    entry = self._channels[id(channel)]
                entry[2] += 1
            if isinstance(owner, MeshRouter):
                routers_touched[id(owner)] = owner
            elif (
                channel is not None
                and isinstance(owner, RingPort)
                and not owner.slotted
            ):
                if flit.is_head and not flit.is_tail:
                    if channel.incoming_packet is not flit.packet:
                        self._fail(
                            "wormhole-route-state",
                            f"{owner.name}: committed head of {flit.packet!r} "
                            f"but {channel.name!r} routes "
                            f"{channel.incoming_packet!r}",
                        )
                    if channel.incoming_route is not dest:
                        self._fail(
                            "wormhole-route-state",
                            f"{owner.name}: committed head into {dest.name!r} "
                            f"but {channel.name!r} pins "
                            f"{channel.incoming_route!r}",
                        )
                elif flit.is_tail and channel.route_is_open:
                    self._fail(
                        "wormhole-route-state",
                        f"{owner.name}: committed tail of {flit.packet!r} but "
                        f"{channel.name!r} still routes "
                        f"{channel.incoming_packet!r}",
                    )
        for router in routers_touched.values():
            problem = router.audit_check_locks()
            if problem is not None:
                self._fail("mesh-lock-symmetry", problem)

    # ------------------------------------------------------------------
    # hook: after the update phase, once per base cycle
    # ------------------------------------------------------------------
    def check_cycle_end(self, engine: "Engine") -> None:
        self.cycles_audited += 1
        for buffer, enq0, deq0, occ0 in self._buffers.values():
            expected = occ0 + (buffer.flits_enqueued - enq0) - (
                buffer.flits_dequeued - deq0
            )
            if buffer.occupancy != expected:
                self._fail(
                    "buffer-conservation",
                    f"{buffer.name!r}: occupancy {buffer.occupancy} but "
                    f"counters imply {expected} "
                    f"(delta {buffer.conservation_delta()})",
                )
            if buffer.capacity is not None and buffer.occupancy > buffer.capacity:
                self._fail(
                    "buffer-capacity",
                    f"{buffer.name!r}: occupancy {buffer.occupancy} exceeds "
                    f"capacity {buffer.capacity}",
                )
        if engine.flits_moved != self._flits_moved_base + self._committed_total:
            self._fail(
                "flit-conservation",
                f"engine counted {engine.flits_moved - self._flits_moved_base} "
                f"moved flits but the audit saw {self._committed_total} commit",
            )
        for channel, carried0, expected_delta in self._channels.values():
            actual = channel.flits_carried + self._pending_carried(engine, channel)
            if actual != carried0 + expected_delta:
                self._fail(
                    "channel-conservation",
                    f"{channel.name!r}: carried {actual - carried0} flits "
                    f"but the audit saw {expected_delta} cross",
                )
        for pm in self._pms:
            window = len(pm.open_transactions) + len(pm._local_pending)
            if pm.outstanding != window:
                self._fail(
                    "transaction-window",
                    f"pm{pm.pm_id}: outstanding={pm.outstanding} but "
                    f"{len(pm.open_transactions)} open remote + "
                    f"{len(pm._local_pending)} pending local",
                )
            if not 0 <= pm.outstanding <= pm._outstanding_limit:
                self._fail(
                    "transaction-window",
                    f"pm{pm.pm_id}: outstanding={pm.outstanding} outside "
                    f"[0, T={pm._outstanding_limit}]",
                )
        if self._metrics_hubs:
            # Summed across hubs: replicas never share PMs or hubs, so
            # the per-replica identities imply the batch-wide one (and a
            # solo run has exactly one hub — the original check).
            open_total = sum(len(pm.open_transactions) for pm in self._pms)
            in_flight = sum(
                hub.remote_issued - hub.remote_completed
                for hub in self._metrics_hubs
            )
            if in_flight != open_total:
                self._fail(
                    "transaction-lifecycle",
                    f"{in_flight} remote transactions in flight by the "
                    f"counters but {open_total} open across the PMs",
                )
        for iri in self._iris:
            self._check_iri(iri)

    @staticmethod
    def _pending_carried(engine: "Engine", channel: Channel) -> int:
        """Compiled-datapath ``flits_carried`` delta not yet flushed."""
        if not engine._compiled:
            return 0
        cid = channel._chan_id
        chan_objs = engine._chan_objs
        if 0 <= cid < len(chan_objs) and chan_objs[cid] is channel:
            return engine._chan_counts[cid]
        return 0

    def _check_iri(self, iri: InterRingInterface) -> None:
        lo, hi = iri.subtree_range
        queues = (
            (iri.up_req, False, True),
            (iri.up_resp, False, False),
            (iri.down_req, True, True),
            (iri.down_resp, True, False),
        )
        for queue, inside, want_request in queues:
            for flit in queue:
                packet = flit.packet
                if (lo <= packet.destination < hi) != inside:
                    self._fail(
                        "iri-routing",
                        f"{queue.name!r} holds {packet!r} destined "
                        f"{'outside' if inside else 'inside'} subtree "
                        f"[{lo}, {hi})",
                    )
                if packet.ptype.is_request != want_request:
                    self._fail(
                        "iri-routing",
                        f"{queue.name!r} holds {packet.ptype.name} packet "
                        f"{packet!r}",
                    )

    # ------------------------------------------------------------------
    # drain check (used by the fuzzer's lifecycle pass)
    # ------------------------------------------------------------------
    def quiescence_problem(self, engine: "Engine") -> str | None:
        """First obstacle to quiescence, or ``None`` once fully drained.

        Non-raising probe for drain loops (the fuzzer polls it between
        drain chunks); :meth:`check_quiescent` is the asserting form.
        """
        for buffer, _enq0, _deq0, _occ0 in self._buffers.values():
            if buffer._flits:
                return (
                    f"{buffer.name!r} still holds {buffer.occupancy} flit(s) "
                    f"after drain"
                )
        for channel, _carried0, _delta in self._channels.values():
            if channel.route_is_open:
                return f"{channel.name!r} still routes {channel.incoming_packet!r}"
        for port in self._ring_ports:
            if port.is_mid_packet:
                return f"{port.name} still mid-packet after drain"
        for router in self._mesh_routers:
            problem = router.audit_check_locks()
            if problem is not None:
                return problem
            for out_key, in_key in router._output_lock.items():
                if in_key is not None:
                    return (
                        f"{router.name}: output {out_key} still locked to "
                        f"{in_key} after drain"
                    )
        for pm in self._pms:
            if (
                pm.outstanding
                or pm.open_transactions
                or pm._local_pending
                or pm._req_staging
                or pm._resp_staging
                or pm._rx_counts
            ):
                return (
                    f"pm{pm.pm_id} not drained: outstanding={pm.outstanding}, "
                    f"{len(pm.open_transactions)} open remote, "
                    f"{len(pm._local_pending)} pending local, "
                    f"{len(pm._req_staging)}+{len(pm._resp_staging)} staged, "
                    f"{len(pm._rx_counts)} partial receives"
                )
        for metrics in self._metrics_hubs:
            if metrics.remote_issued != metrics.remote_completed:
                return (
                    f"{metrics.remote_issued} remote requests issued but "
                    f"{metrics.remote_completed} responses completed after drain"
                )
        return None

    def check_quiescent(self, engine: "Engine") -> None:
        """Assert the network fully drained: run after disabling packet
        generation and stepping until idle (every issued remote request
        matched by exactly one completed response, no state left)."""
        problem = self.quiescence_problem(engine)
        if problem is not None:
            self._fail("quiescence", problem)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line audit summary for CLI output."""
        return (
            f"audit: {self.cycles_audited} cycles, "
            f"{self.proposals_checked} proposals checked across "
            f"{self.engines_attached} engine(s), "
            f"{len(self.violations)} violation(s)"
        )
