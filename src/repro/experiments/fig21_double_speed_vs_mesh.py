"""Figure 21: meshes vs 3-level rings with double-speed global rings.

Paper claim: with the 2x global ring and no locality, 128B-line rings
beat meshes by 10-20% at up to ~120 processors; for 32B and 64B lines
the cross-overs barely move because they occur before a third ring
level is even needed.
"""

from __future__ import annotations

from ..analysis.crossover import crossover_point
from ..analysis.sweeps import SweepResult
from ._shared import mesh_sweep, table2_size_ring_sweep
from .base import Experiment, Scale, register

CACHE_LINES = (32, 64, 128)


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 21: meshes vs rings with 2x global ring (R=1.0, C=0.04, T=4)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for cache_line in CACHE_LINES:
        if cache_line not in scale.cache_lines:
            continue
        ring_series = result.new_series(f"ring {cache_line}B 2x-global")
        for nodes, point in table2_size_ring_sweep(
            scale, cache_line, 4, global_ring_speed=2
        ):
            ring_series.add(nodes, point.avg_latency, saturated=point.saturated)
        mesh_series = result.new_series(f"mesh {cache_line}B")
        for nodes, point in mesh_sweep(scale, cache_line, 4, 4):
            mesh_series.add(nodes, point.avg_latency, saturated=point.saturated)
        crossing = crossover_point(ring_series, mesh_series)
        result.notes.append(
            f"cross-over {cache_line}B: "
            + (f"{crossing:.0f} nodes" if crossing else "none (rings win throughout)")
        )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    ring128 = result.series.get("ring 128B 2x-global")
    mesh128 = result.series.get("mesh 128B")
    if ring128 is not None and mesh128 is not None and len(ring128.xs) >= 2:
        crossing = crossover_point(ring128, mesh128)
        hi = min(max(ring128.xs), max(mesh128.xs))
        if crossing is not None and crossing < 0.75 * hi:
            failures.append(
                f"128B: with a 2x global ring, rings should stay ahead of "
                f"meshes until large sizes (cross-over at {crossing:.0f}/{hi:.0f})"
            )
    return failures


register(
    Experiment(
        experiment_id="fig21",
        title="Meshes vs double-speed-global rings",
        paper_claim=(
            "128B rings beat meshes by 10-20% up to ~120 processors even "
            "without locality"
        ),
        runner=run,
        check=check,
        tags=("comparison", "double-speed"),
    )
)
