"""Figure 15: rings vs meshes with cache-line-sized mesh buffers (128B).

Paper claim: with cl-sized buffers a worm never stalls across more than
one link, so meshes improve and the cross-over drops to 16-30 nodes
depending on T (and is the same for every cache line size).
"""

from __future__ import annotations

from ..analysis.crossover import crossover_point
from ..analysis.sweeps import SweepResult
from ..core.config import CL_BUFFER
from ._shared import mesh_sweep, table2_size_ring_sweep
from .base import Experiment, Scale, register

CACHE_LINE = 128


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 15: rings vs meshes with cl-sized buffers, 128B lines (R=1.0, C=0.04)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for outstanding in scale.t_values:
        ring_series = result.new_series(f"ring T={outstanding}")
        for nodes, point in table2_size_ring_sweep(scale, CACHE_LINE, outstanding):
            ring_series.add(nodes, point.avg_latency, saturated=point.saturated)
        mesh_series = result.new_series(f"mesh T={outstanding}")
        for nodes, point in mesh_sweep(scale, CACHE_LINE, CL_BUFFER, outstanding):
            mesh_series.add(nodes, point.avg_latency, saturated=point.saturated)
        crossing = crossover_point(ring_series, mesh_series)
        result.notes.append(
            f"cross-over T={outstanding}: "
            + (f"{crossing:.0f} nodes" if crossing else "none")
        )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for name in list(result.series):
        if not name.startswith("ring"):
            continue
        outstanding = int(name.split("=")[1])
        ring = result.series[name]
        mesh = result.series.get(f"mesh T={outstanding}")
        if mesh is None or len(ring.xs) < 2 or len(mesh.xs) < 2:
            continue
        crossing = crossover_point(ring, mesh)
        if crossing is None:
            failures.append(
                f"T={outstanding}: cl-sized mesh buffers should produce a "
                "cross-over below the largest sampled size"
            )
        elif not 8 <= crossing <= 50:
            failures.append(
                f"T={outstanding}: cross-over {crossing:.0f} outside the "
                "paper's 16-30 node neighborhood"
            )
    return failures


register(
    Experiment(
        experiment_id="fig15",
        title="Rings vs meshes (cl-sized buffers), 128B lines",
        paper_claim="cross-over drops to 16-30 nodes depending on T",
        runner=run,
        check=check,
        tags=("comparison",),
    )
)
