"""One module per paper table/figure; see DESIGN.md for the index."""
