"""Command-line entry point for the paper reproductions.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments fig14 --scale quick
    python -m repro.experiments fig6 fig7 --scale default --check
    python -m repro.experiments all --scale full --json results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from .base import SCALES, all_experiments, get_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of Ravindran & Stumm (HPCA 1997)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig14 table1), or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="quick",
        help="sweep breadth and simulation length (default: quick)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="evaluate the paper-shape checks and report pass/fail",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        help="also write each result as JSON into this directory",
    )
    parser.add_argument(
        "--plot",
        metavar="DIR",
        help="also write each result as an SVG chart into this directory",
    )
    parser.add_argument(
        "--ascii",
        action="store_true",
        help="print an ASCII chart of each result after its table",
    )
    parser.add_argument(
        "--summarize",
        metavar="DIR",
        help="print a Markdown digest of saved results in DIR and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    experiments = all_experiments()

    if args.summarize:
        from ..analysis.reporting import summarize_results_dir

        print(summarize_results_dir(args.summarize))
        return 0

    if args.list or not args.experiments:
        width = max(len(eid) for eid in experiments)
        for eid in sorted(experiments, key=_experiment_sort_key):
            exp = experiments[eid]
            print(f"{eid:<{width}}  {exp.title}")
        return 0

    ids = sorted(experiments, key=_experiment_sort_key) if args.experiments == ["all"] else args.experiments
    scale = SCALES[args.scale]
    failures_total = 0
    for eid in ids:
        experiment = get_experiment(eid)
        started = time.time()
        result = experiment.run(scale)
        elapsed = time.time() - started
        print(result.format_table())
        print(f"[{eid}] scale={scale.name} elapsed={elapsed:.1f}s")
        if args.check:
            failures = experiment.evaluate(result)
            if failures:
                failures_total += len(failures)
                for failure in failures:
                    print(f"[{eid}] CHECK FAILED: {failure}")
            else:
                print(f"[{eid}] checks passed")
        if args.ascii:
            from ..analysis.plotting import ascii_chart

            print(ascii_chart(result))
        if args.json:
            out_dir = pathlib.Path(args.json)
            out_dir.mkdir(parents=True, exist_ok=True)
            out_file = out_dir / f"{eid}_{scale.name}.json"
            out_file.write_text(result.to_json())
            print(f"[{eid}] wrote {out_file}")
        if args.plot:
            from ..analysis.plotting import write_svg

            out_dir = pathlib.Path(args.plot)
            out_dir.mkdir(parents=True, exist_ok=True)
            out_file = out_dir / f"{eid}_{scale.name}.svg"
            write_svg(result, out_file)
            print(f"[{eid}] wrote {out_file}")
        print()
    return 1 if failures_total else 0


def _experiment_sort_key(eid: str) -> tuple:
    if eid.startswith("fig"):
        return (1, int("".join(ch for ch in eid if ch.isdigit()) or 0))
    if eid.startswith("table"):
        return (0, int("".join(ch for ch in eid if ch.isdigit()) or 0))
    return (2, eid)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
