"""Command-line entry point for the paper reproductions.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments fig14 --scale quick
    python -m repro.experiments fig6 fig7 --scale default --check
    python -m repro.experiments all --scale full --jobs 4 --json results/

Sweep points run through :mod:`repro.runtime`: ``--jobs N`` fans them
across N worker processes, and finished points are cached on disk under
``results/.cache/`` (keyed by the full point spec plus a hash of the
simulator sources), so re-running a figure after an unrelated edit is
almost entirely cache hits.  ``--no-cache`` disables the cache,
``--clear-cache`` wipes it.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import pathlib
import sys
import time
from dataclasses import replace

from ..core.config import SCHEDULERS as SCHEDULER_CHOICES
from ..runtime import DEFAULT_CACHE_DIR, ProgressPrinter, ResultCache, runtime_context
from .base import SCALES, all_experiments, get_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of Ravindran & Stumm (HPCA 1997)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig14 table1), or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="quick",
        help="sweep breadth and simulation length (default: quick)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULER_CHOICES),
        default=None,
        help="run every sweep point under this engine scheduler instead of "
        "the default ('columnar' trades byte-exact results for vectorized "
        "multi-replica throughput — statistically equivalent, cached "
        "separately; see README's scheduler decision table)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run sweep points across N worker processes "
        "(default: REPRO_JOBS or 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=f"on-disk result cache location (default: REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this run",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete the on-disk result cache (then run any given experiments)",
    )
    parser.add_argument(
        "--cache-prune",
        metavar="BYTES",
        default=None,
        help="evict least-recently-used cache entries (any salt "
        "generation) until the cache is at most this many bytes; "
        "accepts K/M/G suffixes (then run any given experiments)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache statistics (entry count, total bytes, salt "
        "generations present) before running",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="evaluate the paper-shape checks and report pass/fail",
    )
    parser.add_argument(
        "--allow-saturated",
        action="store_true",
        help="exit 0 even when sweep points saturated without converging "
        "(expected when sweeping past a network's saturation knee)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        help="also write each result as JSON into this directory",
    )
    parser.add_argument(
        "--plot",
        metavar="DIR",
        help="also write each result as an SVG chart into this directory",
    )
    parser.add_argument(
        "--ascii",
        action="store_true",
        help="print an ASCII chart of each result after its table",
    )
    parser.add_argument(
        "--summarize",
        metavar="DIR",
        help="print a Markdown digest of saved results in DIR and exit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase kernel wall-time profile after each "
        "experiment (profiling is process-local, so this forces "
        "--jobs 1 and --no-cache; the unprofiled hot loop is untouched)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run every sweep point with the runtime invariant auditor "
        "(repro.audit) checking flit conservation, buffer bounds, "
        "wormhole contiguity and transaction lifecycle each cycle; "
        "slow, forces --jobs 1 and --no-cache, fails fast on the "
        "first violation",
    )
    return parser


def _build_cache(args) -> ResultCache | None:
    if args.no_cache:
        return None
    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR", "").strip() or None
    return ResultCache(root)


def _parse_bytes(text: str) -> int:
    """``"500M"``-style byte sizes with K/M/G suffixes."""
    scale = {"K": 1024, "M": 1024**2, "G": 1024**3}.get(text[-1:].upper())
    if scale is not None:
        return int(float(text[:-1]) * scale)
    return int(text)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    experiments = all_experiments()

    if args.summarize:
        from ..analysis.reporting import summarize_results_dir

        print(summarize_results_dir(args.summarize))
        return 0

    if args.clear_cache:
        cache = _build_cache(args) or ResultCache(args.cache_dir)
        removed = cache.clear()
        print(f"cleared result cache at {cache.root} ({removed} entries)")
        if not args.experiments:
            return 0

    if args.cache_prune is not None:
        try:
            max_bytes = _parse_bytes(args.cache_prune)
        except ValueError:
            parser.error(f"--cache-prune: not a byte size: {args.cache_prune!r}")
        cache = _build_cache(args) or ResultCache(args.cache_dir)
        report = cache.prune(max_bytes)
        print(
            f"pruned result cache at {cache.root}: removed "
            f"{report.removed_entries} entries ({report.removed_bytes} bytes), "
            f"kept {report.kept_entries} entries ({report.kept_bytes} bytes)"
        )
        if not args.experiments and not args.cache_stats:
            return 0

    if args.cache_stats:
        cache = _build_cache(args) or ResultCache(args.cache_dir)
        print(f"result cache at {cache.root}: {cache.stats().describe()}")
        if not args.experiments:
            return 0

    if args.list or not args.experiments:
        width = max(len(eid) for eid in experiments)
        for eid in sorted(experiments, key=_experiment_sort_key):
            exp = experiments[eid]
            print(f"{eid:<{width}}  {exp.title}")
        return 0

    ids = sorted(experiments, key=_experiment_sort_key) if args.experiments == ["all"] else args.experiments
    scale = SCALES[args.scale]
    if args.scheduler is not None:
        # Scale (and its SimulationParams) key the memoized sweeps, so
        # swapping the scheduler here flows into every point spec — and
        # into the cache identity for "columnar", whose results are
        # tagged non-canonical rather than shared with bit-exact runs.
        scale = replace(scale, sim=replace(scale.sim, scheduler=args.scheduler))
    if args.profile and args.audit:
        # Both swap in a dedicated engine step function; the audited
        # step carries no phase timers, so combining them would
        # silently drop the profile.
        parser.error("--audit and --profile are mutually exclusive")
    if args.profile or args.audit:
        # Profiling and auditing are process-local ambient state: worker
        # processes and cache hits would run (or skip) engines this
        # profile/auditor never sees.
        args.no_cache = True
        args.jobs = 1
    cache = _build_cache(args)
    failures_total = 0
    unconverged_total = 0
    for eid in ids:
        experiment = get_experiment(eid)
        reporter = ProgressPrinter(sys.stderr, label=eid, live=sys.stderr.isatty())
        started = time.time()
        profile = None
        auditor = None
        if args.profile:
            from ..core import profiling

            profile = profiling.PhaseProfile()
            profile_ctx = profiling.enabled(profile)
        elif args.audit:
            from .. import audit

            auditor = audit.Auditor()
            profile_ctx = audit.enabled(auditor)
        else:
            profile_ctx = contextlib.nullcontext()
        with runtime_context(jobs=args.jobs, cache=cache, progress=reporter.update):
            with profile_ctx:
                result = experiment.run(scale)
        elapsed = time.time() - started
        reporter.finish_line()
        print(result.format_table())
        if profile is not None:
            print(profile.format_table())
        if auditor is not None:
            print(f"[{eid}] {auditor.describe()}")
        print(
            f"[{eid}] scale={scale.name} elapsed={elapsed:.1f}s "
            f"sweep: {reporter.summary()}"
        )
        unconverged = result.unconverged_points()
        if unconverged:
            unconverged_total += len(unconverged)
            verdict = "allowed" if args.allow_saturated else "FAILING the run"
            print(
                f"[{eid}] {len(unconverged)} point(s) saturated without "
                f"converging ({verdict}):"
            )
            for description in unconverged:
                print(f"[{eid}]   {description}")
        if args.check:
            failures = experiment.evaluate(result)
            if failures:
                failures_total += len(failures)
                for failure in failures:
                    print(f"[{eid}] CHECK FAILED: {failure}")
            else:
                print(f"[{eid}] checks passed")
        if args.ascii:
            from ..analysis.plotting import ascii_chart

            print(ascii_chart(result))
        if args.json:
            out_dir = pathlib.Path(args.json)
            out_dir.mkdir(parents=True, exist_ok=True)
            out_file = out_dir / f"{eid}_{scale.name}.json"
            out_file.write_text(result.to_json())
            print(f"[{eid}] wrote {out_file}")
        if args.plot:
            from ..analysis.plotting import write_svg

            out_dir = pathlib.Path(args.plot)
            out_dir.mkdir(parents=True, exist_ok=True)
            out_file = out_dir / f"{eid}_{scale.name}.svg"
            write_svg(result, out_file)
            print(f"[{eid}] wrote {out_file}")
        print()
    # Exit status is a bitmask: 1 = paper-shape check failures, 2 =
    # saturated-without-convergence points (unless --allow-saturated).
    status = 1 if failures_total else 0
    if unconverged_total and not args.allow_saturated:
        status |= 2
    return status


def _experiment_sort_key(eid: str) -> tuple:
    if eid.startswith("fig"):
        return (1, int("".join(ch for ch in eid if ch.isdigit()) or 0))
    if eid.startswith("table"):
        return (0, int("".join(ch for ch in eid if ch.isdigit()) or 0))
    return (2, eid)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
