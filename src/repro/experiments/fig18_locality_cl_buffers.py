"""Figure 18: locality with cl-sized mesh buffers (128B lines).

Paper claim: even giving meshes their best case (cache-line-sized
router buffers), locality raises the cross-over to 45+ processors for
R <= 0.3 — rings stay ahead for small and medium systems.
"""

from __future__ import annotations

from ..analysis.crossover import crossover_point
from ..analysis.sweeps import SweepResult
from ..core.config import CL_BUFFER
from ._shared import mesh_sweep, table2_size_ring_sweep
from .base import Experiment, Scale, register

CACHE_LINE = 128


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 18: rings vs cl-buffer meshes with locality, 128B lines (C=0.04, T=4)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for locality in scale.locality_values:
        ring_series = result.new_series(f"ring R={locality}")
        for nodes, point in table2_size_ring_sweep(
            scale, CACHE_LINE, 4, locality=locality
        ):
            ring_series.add(nodes, point.avg_latency, saturated=point.saturated)
        mesh_series = result.new_series(f"mesh R={locality}")
        for nodes, point in mesh_sweep(
            scale, CACHE_LINE, CL_BUFFER, 4, locality=locality
        ):
            mesh_series.add(nodes, point.avg_latency, saturated=point.saturated)
        crossing = crossover_point(ring_series, mesh_series)
        result.notes.append(
            f"cross-over R={locality}: "
            + (f"{crossing:.0f} nodes" if crossing else "none (rings win throughout)")
        )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for name in list(result.series):
        if not name.startswith("ring"):
            continue
        locality = float(name.split("=")[1])
        ring = result.series[name]
        mesh = result.series.get(f"mesh R={locality}")
        if mesh is None or len(ring.xs) < 2 or len(mesh.xs) < 2:
            continue
        crossing = crossover_point(ring, mesh)
        if crossing is not None and crossing < 30:
            failures.append(
                f"R={locality}: locality should push the cl-buffer cross-over "
                f"past ~45 nodes, got {crossing:.0f}"
            )
    return failures


register(
    Experiment(
        experiment_id="fig18",
        title="Locality with cl-sized mesh buffers, 128B lines",
        paper_claim="cross-over at 45+ processors for R <= 0.3",
        runner=run,
        check=check,
        tags=("comparison", "locality"),
    )
)
