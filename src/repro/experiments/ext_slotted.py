"""Extension: slotted (non-blocking) vs wormhole ring switching.

Not a paper figure.  The paper simulates wormhole rings but notes that
the machines its model is calibrated against (Hector, NUMAchine) use
slotted switching, and that "slotted rings tend to perform somewhat
better" (Section 5, citing the authors' IEICE '96 study).  This
experiment runs the paper's 2-level growth sweep under both switching
modes.

What to expect from *our* models: identical latency at low utilization
(same per-hop timing), and a crossover in relative merit as the rings
saturate — wormhole throttles sources through backpressure while
slotted burns ring bandwidth on recirculating slots.  Our slotted model
is register-insertion style without the slot-reuse optimizations of the
real machines, so we do not reproduce the "somewhat better" claim at
saturation; see EXPERIMENTS.md.
"""

from __future__ import annotations

from ..analysis.sweeps import SweepResult, growth_topologies
from ..core.config import RingSystemConfig, WorkloadConfig
from ..ring.topology import SINGLE_RING_MAX
from ..runtime import PointSpec, run_points
from .base import Experiment, Scale, register

CACHE_LINE = 32


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Extension: slotted vs wormhole ring switching (R=1.0, C=0.04, T=4)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    workload = WorkloadConfig(locality=1.0, miss_rate=0.04, outstanding=4)
    schedule = [(SINGLE_RING_MAX[CACHE_LINE], (SINGLE_RING_MAX[CACHE_LINE],))]
    schedule += growth_topologies(2, CACHE_LINE, scale.max_nodes)
    for switching in ("wormhole", "slotted"):
        series = result.new_series(switching)
        specs = [
            PointSpec.of(
                RingSystemConfig(
                    topology=branching,
                    cache_line_bytes=CACHE_LINE,
                    switching=switching,
                ),
                workload,
                scale.sim,
            )
            for __, branching in schedule
        ]
        for (nodes, __), point in zip(schedule, run_points(specs)):
            if point.remote_transactions:
                series.add(nodes, point.avg_latency,
                           transactions=point.remote_transactions,
                           saturated=point.saturated)
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    wormhole = result.series.get("wormhole")
    slotted = result.series.get("slotted")
    if not wormhole or not slotted or not wormhole.xs or not slotted.xs:
        return ["missing series"]
    smallest = min(set(wormhole.xs) & set(slotted.xs), default=None)
    if smallest is not None:
        a, b = wormhole.y_at(smallest), slotted.y_at(smallest)
        if abs(a - b) > 0.25 * max(a, b):
            failures.append(
                f"at {smallest} nodes (light load) the modes should be close: "
                f"wormhole {a:.0f} vs slotted {b:.0f}"
            )
    return failures


register(
    Experiment(
        experiment_id="ext-slotted",
        title="Slotted vs wormhole ring switching (extension)",
        paper_claim=(
            "paper footnote: real NUMAchine rings are slotted; modes match "
            "at light load, diverge at saturation"
        ),
        runner=run,
        check=check,
        tags=("ring", "extension"),
    )
)
