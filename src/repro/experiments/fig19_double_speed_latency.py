"""Figure 19: 3-level hierarchies with normal vs double-speed global rings.

Paper claim: clocking the global ring at 2x lets it sustain five
second-level rings instead of three — 180/120/90/60 processors for
16/32/64/128B lines — with markedly lower latency at sizes where the
normal-speed global ring is saturated.
"""

from __future__ import annotations

from ..analysis.crossover import interpolate
from ..analysis.sweeps import SweepResult
from ..ring.topology import SINGLE_RING_MAX
from ._shared import level_growth_sweep
from .base import Experiment, Scale, register

CACHE_LINES = (32, 64, 128)


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 19: 3-level rings, normal vs 2x global ring (R=1.0, C=0.04, T=4)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for cache_line in CACHE_LINES:
        if cache_line not in scale.cache_lines:
            continue
        for speed, label in ((1, "normal"), (2, "double")):
            series = result.new_series(f"{cache_line}B {label}")
            sweep = level_growth_sweep(
                scale,
                levels=3,
                cache_line=cache_line,
                outstanding=4,
                global_ring_speed=speed,
                include_smaller=False,
                max_nodes=200,
            )
            for nodes, point in sweep:
                series.add(
                    nodes,
                    point.avg_latency,
                    global_utilization=point.utilization_percent("global"),
                    saturated=point.saturated,
                )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for name in list(result.series):
        if not name.endswith("double"):
            continue
        cache_line = int(name.split("B")[0])
        double = result.series[name]
        normal = result.series.get(f"{cache_line}B normal")
        if normal is None or len(double.xs) < 2 or len(normal.xs) < 2:
            continue
        local = SINGLE_RING_MAX[cache_line]
        saturated = [
            x for x in double.xs if x >= 12 * local and min(normal.xs) <= x <= max(normal.xs)
        ]
        for x in saturated:
            if double.y_at(x) > 0.95 * interpolate(normal, x):
                failures.append(
                    f"{cache_line}B at {x} nodes: double-speed global ring "
                    "should clearly beat normal speed once saturated"
                )
    return failures


register(
    Experiment(
        experiment_id="fig19",
        title="Double-speed global ring latency",
        paper_claim=(
            "2x global ring sustains five second-level rings "
            "(180/120/90/60 processors for 16/32/64/128B lines)"
        ),
        runner=run,
        check=check,
        tags=("ring", "double-speed"),
    )
)
