"""Figure 12: latency of 2D meshes by router buffer depth.

Paper claims: mesh latency grows far more moderately with system size
than hierarchical rings because both aggregate and bisection bandwidth
scale; buffer size matters a lot — scaling 4 -> 121 processors raises
latency by roughly 5-7x with cl-sized buffers, 6-8x with 4-flit
buffers, and 9-12x with 1-flit buffers.
"""

from __future__ import annotations

from ..analysis.sweeps import SweepResult
from ..core.config import CL_BUFFER
from ._shared import mesh_sweep
from .base import Experiment, Scale, register

BUFFER_CHOICES = (CL_BUFFER, 4, 1)


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 12: latency for 2D meshes (R=1.0, C=0.04, T=4)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for buffer_flits in BUFFER_CHOICES:
        label = "cl" if buffer_flits == CL_BUFFER else f"{buffer_flits}-flit"
        for cache_line in scale.cache_lines:
            series = result.new_series(f"{label} {cache_line}B")
            for nodes, point in mesh_sweep(scale, cache_line, buffer_flits, 4):
                series.add(
                    nodes,
                    point.avg_latency,
                    utilization=point.utilization_percent("mesh"),
                    saturated=point.saturated,
                )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for cache_line in {int(n.split()[1].rstrip("B")) for n in result.series}:
        by_buffer = {}
        for label in ("cl", "4-flit", "1-flit"):
            series = result.series.get(f"{label} {cache_line}B")
            if series is not None and series.xs:
                by_buffer[label] = series
        if {"cl", "1-flit"} <= set(by_buffer):
            shared = set(by_buffer["cl"].xs) & set(by_buffer["1-flit"].xs)
            big = [x for x in shared if x >= 16]
            for x in big:
                if by_buffer["1-flit"].y_at(x) < 0.95 * by_buffer["cl"].y_at(x):
                    failures.append(
                        f"{cache_line}B at {x} nodes: 1-flit buffers should "
                        "not beat cl-sized buffers"
                    )
    return failures


register(
    Experiment(
        experiment_id="fig12",
        title="Mesh latency vs nodes by buffer depth",
        paper_claim=(
            "latency grows moderately with size; deeper router buffers "
            "(cl > 4-flit > 1-flit) give strictly better latency"
        ),
        runner=run,
        check=check,
        tags=("mesh",),
    )
)
