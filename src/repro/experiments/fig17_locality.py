"""Figure 17: rings vs meshes under memory access locality (4-flit buffers).

Paper claims: with even moderate locality (R <= 0.3) hierarchical rings
beat meshes at every size up to 121 processors for 32B+ cache lines
(16B systems are about even); the ring advantage averages ~20% for 32B
and ~30% for 64/128B lines; and the gap is *larger* at R=0.2 than at
R=0.1 because R=0.1 keeps most mesh targets one hop away.
"""

from __future__ import annotations

from ..analysis.crossover import interpolate
from ..analysis.sweeps import SweepResult
from ._shared import mesh_sweep, table2_size_ring_sweep
from .base import Experiment, Scale, register


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 17: rings vs meshes with locality, 4-flit buffers (C=0.04, T=4)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for cache_line in scale.cache_lines:
        for locality in scale.locality_values:
            ring_series = result.new_series(f"ring {cache_line}B R={locality}")
            for nodes, point in table2_size_ring_sweep(
                scale, cache_line, 4, locality=locality
            ):
                ring_series.add(nodes, point.avg_latency, saturated=point.saturated)
            mesh_series = result.new_series(f"mesh {cache_line}B R={locality}")
            for nodes, point in mesh_sweep(scale, cache_line, 4, 4, locality=locality):
                mesh_series.add(nodes, point.avg_latency, saturated=point.saturated)
    return result


def _gap(result: SweepResult, cache_line: int, locality: float) -> float | None:
    """Mean relative ring advantage over the common size range."""
    ring = result.series.get(f"ring {cache_line}B R={locality}")
    mesh = result.series.get(f"mesh {cache_line}B R={locality}")
    if ring is None or mesh is None or len(ring.xs) < 2 or len(mesh.xs) < 2:
        return None
    lo = max(min(ring.xs), min(mesh.xs))
    hi = min(max(ring.xs), max(mesh.xs))
    xs = [x for x in sorted(set(ring.xs) | set(mesh.xs)) if lo <= x <= hi and x >= 16]
    if not xs:
        return None
    gaps = [
        (interpolate(mesh, x) - interpolate(ring, x)) / interpolate(mesh, x)
        for x in xs
    ]
    return sum(gaps) / len(gaps)


def check(result: SweepResult) -> list[str]:
    failures = []
    cache_lines = {
        int(name.split()[1].rstrip("B")) for name in result.series if name.startswith("ring")
    }
    localities = {
        float(name.split("=")[1]) for name in result.series if name.startswith("ring")
    }
    for cache_line in sorted(cache_lines):
        if cache_line < 32:
            continue  # paper: 16B systems are about even
        for locality in sorted(localities):
            gap = _gap(result, cache_line, locality)
            if gap is not None and gap < -0.05:
                failures.append(
                    f"{cache_line}B R={locality}: rings should beat meshes "
                    f"under locality (mean gap {gap:+.0%})"
                )
    return failures


register(
    Experiment(
        experiment_id="fig17",
        title="Rings vs meshes under locality (R=0.1/0.2/0.3)",
        paper_claim=(
            "rings win at all sizes for 32B+ lines with R <= 0.3, by ~20% "
            "(32B) to ~30% (64/128B); gap larger at R=0.2 than R=0.1"
        ),
        runner=run,
        check=check,
        tags=("comparison", "locality"),
    )
)
