"""Figure 14: hierarchical rings vs meshes with 4-flit buffers (R=1.0).

Paper claims: rings win at small node counts, meshes at large; the
cross-over grows with cache line size — 16/25/27/36 nodes for
16/32/64/128-byte lines at T=4 — because longer worms block more in the
narrow mesh; the cross-over is nearly independent of T (except T=1),
while the performance *gap* grows with T.
"""

from __future__ import annotations

from ..analysis.crossover import crossover_point
from ..analysis.sweeps import SweepResult
from ._shared import mesh_sweep, table2_size_ring_sweep
from .base import Experiment, Scale, register


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 14: rings vs meshes, 4-flit mesh buffers (R=1.0, C=0.04)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for cache_line in scale.cache_lines:
        for outstanding in scale.t_values:
            ring_series = result.new_series(f"ring {cache_line}B T={outstanding}")
            for nodes, point in table2_size_ring_sweep(scale, cache_line, outstanding):
                ring_series.add(nodes, point.avg_latency, saturated=point.saturated)
            mesh_series = result.new_series(f"mesh {cache_line}B T={outstanding}")
            for nodes, point in mesh_sweep(scale, cache_line, 4, outstanding):
                mesh_series.add(nodes, point.avg_latency, saturated=point.saturated)
            crossing = crossover_point(ring_series, mesh_series)
            result.notes.append(
                f"cross-over {cache_line}B T={outstanding}: "
                + (f"{crossing:.0f} nodes" if crossing else "none (ring wins throughout)")
            )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    crossings: dict[tuple[int, int], float | None] = {}
    for name in list(result.series):
        if not name.startswith("ring"):
            continue
        __, cl_part, t_part = name.split()
        cache_line = int(cl_part.rstrip("B"))
        outstanding = int(t_part.split("=")[1])
        ring = result.series[name]
        mesh = result.series.get(f"mesh {cache_line}B T={outstanding}")
        if mesh is None or len(ring.xs) < 2 or len(mesh.xs) < 2:
            continue
        crossings[(cache_line, outstanding)] = crossover_point(ring, mesh)
        smallest = min(set(ring.xs) | set(mesh.xs))
        from ..analysis.crossover import interpolate

        if interpolate(ring, smallest) > 1.2 * interpolate(mesh, smallest):
            failures.append(
                f"{cache_line}B T={outstanding}: rings should win at small sizes"
            )
    # Cross-over should grow with cache line size (same T).
    for outstanding in {t for (__, t) in crossings}:
        cls = sorted(cl for (cl, t) in crossings if t == outstanding)
        values = [crossings[(cl, outstanding)] for cl in cls]
        numeric = [v for v in values if v is not None]
        if len(numeric) >= 2 and numeric != sorted(numeric):
            # Allow small inversions from sampling noise.
            if any(b < 0.7 * a for a, b in zip(numeric, numeric[1:])):
                failures.append(
                    f"T={outstanding}: cross-over should grow with cache line "
                    f"size, got {dict(zip(cls, values))}"
                )
    return failures


register(
    Experiment(
        experiment_id="fig14",
        title="Rings vs meshes (4-flit buffers), no locality",
        paper_claim=(
            "cross-overs at 16/25/27/36 nodes for 16/32/64/128B lines; "
            "rings win below, meshes above"
        ),
        runner=run,
        check=check,
        tags=("comparison",),
    )
)
