"""Table 2: optimal hierarchical ring topology search.

For each (processor count, cache line size) cell, simulate every
design-rule-conforming hierarchy under the no-locality workload
(R=1.0, C=0.04, T=4) and rank by measured latency.  The paper's chosen
topology should rank at or near the top; exact ties between near-equal
hierarchies (e.g. 2:12 vs 3:8) can swap order within noise.
"""

from __future__ import annotations

from ..analysis.sweeps import SweepResult
from ..analysis.tables import table2_topology_search
from ..core.config import WorkloadConfig, format_hierarchy
from ..ring.topology import PAPER_TABLE2
from .base import Experiment, Scale, register

#: Cells searched per scale (larger cells cost many candidate runs).
CELLS = {
    "quick": ((24, 32), (12, 128)),
    "default": ((12, 32), (24, 32), (36, 32), (24, 128), (36, 128)),
    "full": tuple(
        (processors, cache_line)
        for cache_line in (16, 32, 64, 128)
        for processors in sorted(PAPER_TABLE2[cache_line])
        if processors <= 72
    ),
}


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Table 2: optimal ring hierarchy per (P, cache line) — measured ranking",
        x_label="processors",
        y_label="best latency (cycles)",
    )
    workload = WorkloadConfig(locality=1.0, miss_rate=0.04, outstanding=4)
    cells = CELLS.get(scale.name, CELLS["quick"])
    for processors, cache_line in cells:
        ranking = table2_topology_search(
            processors, cache_line, workload=workload, params=scale.sim
        )
        series_name = f"{cache_line}B"
        series = result.series.get(series_name) or result.new_series(series_name)
        paper_rank = ranking.paper_choice_rank()
        paper_latency = (
            ranking.ranked[paper_rank][1] if paper_rank is not None else None
        )
        series.add(
            processors,
            ranking.ranked[0][1],
            best=format_hierarchy(ranking.best),
            paper=(
                format_hierarchy(ranking.paper_choice)
                if ranking.paper_choice
                else None
            ),
            paper_rank=paper_rank,
            paper_latency=paper_latency,
            candidates=len(ranking.ranked),
        )
        result.notes.append(
            f"P={processors} cl={cache_line}B: best={format_hierarchy(ranking.best)} "
            f"paper={format_hierarchy(ranking.paper_choice) if ranking.paper_choice else '?'} "
            f"(paper rank {ranking.paper_choice_rank()} of {len(ranking.ranked)})"
        )
    return result


def check(result: SweepResult) -> list[str]:
    """The paper's pick must be within 25% of our measured best.

    Rank is too strict a criterion: candidate hierarchies cluster within
    a few percent and their order flips with model details (our
    simulator consistently prefers slightly higher top-level fan-out —
    see EXPERIMENTS.md).  What must hold is that the paper's choice is
    *competitive*.
    """
    failures = []
    for series in result.series.values():
        for x, best_latency, meta in zip(series.xs, series.ys, series.meta):
            paper_latency = meta.get("paper_latency")
            if paper_latency is None:
                continue
            if paper_latency > 1.25 * best_latency:
                failures.append(
                    f"P={x}: paper topology {meta['paper']} at "
                    f"{paper_latency:.0f} cycles is not competitive with our "
                    f"best {meta['best']} at {best_latency:.0f}"
                )
    return failures


register(
    Experiment(
        experiment_id="table2",
        title="Optimal hierarchy topology search",
        paper_claim="the paper's Table 2 topology is (near-)optimal per cell",
        runner=run,
        check=check,
        tags=("ring", "search"),
    )
)
