"""Figure 7: latency of 2-level ring hierarchies.

Paper claim: the latency curve steepens twice — once when a second
local ring forces a global ring into the path, and again past three
local rings, when the global ring's constant bisection bandwidth
saturates.  Up to three local rings can be sustained, independent of
cache line size.
"""

from __future__ import annotations

from ..analysis.sweeps import SweepResult
from ..ring.topology import SINGLE_RING_MAX
from ._shared import level_growth_sweep
from .base import Experiment, Scale, register


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 7: latency for 2-level ring hierarchies (R=1.0, C=0.04, T=4)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for cache_line in scale.cache_lines:
        series = result.new_series(f"{cache_line}B")
        sweep = level_growth_sweep(
            scale, levels=2, cache_line=cache_line, outstanding=4, max_nodes=72
        )
        for nodes, point in sweep:
            series.add(
                nodes,
                point.avg_latency,
                local_utilization=point.utilization_percent("local"),
                global_utilization=point.utilization_percent("global"),
                saturated=point.saturated,
            )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for name, series in result.series.items():
        cache_line = int(name.rstrip("B"))
        local = SINGLE_RING_MAX[cache_line]
        three, five = 3 * local, 5 * local
        if three in series.xs and five in series.xs:
            if series.y_at(five) < 1.25 * series.y_at(three):
                failures.append(
                    f"{name}: expected bisection-bandwidth knee past 3 local "
                    f"rings ({series.y_at(three):.0f} -> {series.y_at(five):.0f})"
                )
        if not series.is_nondecreasing(slack=0.2):
            failures.append(f"{name}: latency should grow with system size")
    return failures


register(
    Experiment(
        experiment_id="fig7",
        title="2-level hierarchy latency vs nodes",
        paper_claim=(
            "two slope increases: adding the global ring, then global-ring "
            "saturation past three local rings"
        ),
        runner=run,
        check=check,
        tags=("ring",),
    )
)
