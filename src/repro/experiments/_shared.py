"""Cached sweep runners shared by the experiment modules.

Several paper figures draw different projections of the same runs
(e.g. Figure 7 plots latency and Figure 8 utilization of the identical
2-level sweep), so runners are memoized on their full parameterization.
:class:`~repro.experiments.base.Scale` and the workload knobs are
hashable, making the cache key exact.

Each runner builds its full list of :class:`~repro.runtime.PointSpec`
first and executes it through :func:`repro.runtime.run_points`, so
every sweep transparently picks up the ambient job count (``--jobs`` /
``REPRO_JOBS``) and on-disk result cache configured by the CLI.
"""

from __future__ import annotations

from functools import lru_cache

from ..analysis.sweeps import (
    growth_topologies,
    hierarchy_sweep,
    mesh_point_spec,
    ring_point_spec,
    single_ring_sizes,
)
from ..core.config import WorkloadConfig
from ..core.simulation import SimulationResult
from ..ring.topology import PAPER_TABLE2
from ..runtime import run_points
from .base import Scale

#: (nodes, result) samples of one sweep.
Sweep = tuple[tuple[int, SimulationResult], ...]


def _measured(points) -> Sweep:
    """Drop degenerate points that completed no remote transactions.

    This happens for configs whose locality region contains only the
    local PM (e.g. a 4-node mesh at R=0.2): there is no network traffic
    and hence no latency to report.
    """
    return tuple(
        (nodes, result) for nodes, result in points if result.remote_transactions > 0
    )


def workload(locality: float, outstanding: int) -> WorkloadConfig:
    return WorkloadConfig(locality=locality, miss_rate=0.04, outstanding=outstanding)


def clear_sweep_caches() -> None:
    """Drop all memoized sweeps (used by benchmarks to time real runs)."""
    single_ring_sweep.cache_clear()
    level_growth_sweep.cache_clear()
    table2_size_ring_sweep.cache_clear()
    mesh_sweep.cache_clear()


@lru_cache(maxsize=None)
def single_ring_sweep(scale: Scale, cache_line: int, outstanding: int) -> Sweep:
    """Latency of single rings across node counts (Figure 6 grid)."""
    sizes = single_ring_sizes(cache_line, min(scale.max_nodes, 64))
    wl = workload(1.0, outstanding)
    specs = [ring_point_spec((n,), cache_line, wl, scale.sim) for n in sizes]
    return _measured(zip(sizes, run_points(specs)))


@lru_cache(maxsize=None)
def level_growth_sweep(
    scale: Scale,
    levels: int,
    cache_line: int,
    outstanding: int,
    locality: float = 1.0,
    global_ring_speed: int = 1,
    include_smaller: bool = True,
    max_nodes: int | None = None,
) -> Sweep:
    """Hierarchy growth sweep at a fixed depth (Figures 7-11, 19, 20)."""
    cap = min(scale.max_nodes, max_nodes) if max_nodes else scale.max_nodes
    if include_smaller:
        schedule = hierarchy_sweep(levels, cache_line, cap)
    else:
        schedule = growth_topologies(levels, cache_line, cap)
    wl = workload(locality, outstanding)
    specs = [
        ring_point_spec(
            branching,
            cache_line,
            wl,
            scale.sim,
            global_ring_speed=global_ring_speed if len(branching) > 1 else 1,
        )
        for __, branching in schedule
    ]
    sizes = [nodes for nodes, __ in schedule]
    return _measured(zip(sizes, run_points(specs)))


@lru_cache(maxsize=None)
def table2_size_ring_sweep(
    scale: Scale,
    cache_line: int,
    outstanding: int,
    locality: float = 1.0,
    global_ring_speed: int = 1,
) -> Sweep:
    """Rings at the paper's Table 2 system sizes (comparison figures).

    With a double-speed global ring the 3-level design rule allows five
    second-level rings, so the sweep extends beyond Table 2 with the
    Section 6 growth schedule.
    """
    wl = workload(locality, outstanding)
    schedule: list[tuple[int, tuple[int, ...]]] = []
    for nodes in sorted(PAPER_TABLE2[cache_line]):
        if nodes > scale.max_nodes:
            continue
        schedule.append((nodes, PAPER_TABLE2[cache_line][nodes]))
    if global_ring_speed == 2:
        for nodes, branching in growth_topologies(
            3, cache_line, scale.max_nodes, max_top_fan=5
        ):
            if all(nodes != existing for existing, __ in schedule):
                schedule.append((nodes, branching))
    schedule.sort(key=lambda item: item[0])
    specs = [
        ring_point_spec(
            branching,
            cache_line,
            wl,
            scale.sim,
            global_ring_speed=global_ring_speed if len(branching) > 1 else 1,
        )
        for __, branching in schedule
    ]
    sizes = [nodes for nodes, __ in schedule]
    return _measured(zip(sizes, run_points(specs)))


@lru_cache(maxsize=None)
def mesh_sweep(
    scale: Scale,
    cache_line: int,
    buffer_flits,
    outstanding: int,
    locality: float = 1.0,
) -> Sweep:
    """Meshes across the scale's side lengths (Figures 12-18, 21)."""
    wl = workload(locality, outstanding)
    sides = [side for side in scale.mesh_sides if side * side <= scale.max_nodes]
    specs = [
        mesh_point_spec(side, cache_line, buffer_flits, wl, scale.sim)
        for side in sides
    ]
    return _measured(zip((side * side for side in sides), run_points(specs)))
