"""Cached sweep runners shared by the experiment modules.

Several paper figures draw different projections of the same runs
(e.g. Figure 7 plots latency and Figure 8 utilization of the identical
2-level sweep), so runners are memoized on their full parameterization.
:class:`~repro.experiments.base.Scale` and the workload knobs are
hashable, making the cache key exact.
"""

from __future__ import annotations

from functools import lru_cache

from ..analysis.sweeps import growth_topologies, hierarchy_sweep, run_mesh_point, run_ring_point, single_ring_sizes
from ..core.config import WorkloadConfig
from ..core.simulation import SimulationResult
from ..ring.topology import PAPER_TABLE2
from .base import Scale

#: (nodes, result) samples of one sweep.
Sweep = tuple[tuple[int, SimulationResult], ...]


def _measured(points: list[tuple[int, SimulationResult]]) -> Sweep:
    """Drop degenerate points that completed no remote transactions.

    This happens for configs whose locality region contains only the
    local PM (e.g. a 4-node mesh at R=0.2): there is no network traffic
    and hence no latency to report.
    """
    return tuple(
        (nodes, result) for nodes, result in points if result.remote_transactions > 0
    )


def workload(locality: float, outstanding: int) -> WorkloadConfig:
    return WorkloadConfig(locality=locality, miss_rate=0.04, outstanding=outstanding)


def clear_sweep_caches() -> None:
    """Drop all memoized sweeps (used by benchmarks to time real runs)."""
    single_ring_sweep.cache_clear()
    level_growth_sweep.cache_clear()
    table2_size_ring_sweep.cache_clear()
    mesh_sweep.cache_clear()


@lru_cache(maxsize=None)
def single_ring_sweep(scale: Scale, cache_line: int, outstanding: int) -> Sweep:
    """Latency of single rings across node counts (Figure 6 grid)."""
    sizes = single_ring_sizes(cache_line, min(scale.max_nodes, 64))
    wl = workload(1.0, outstanding)
    return _measured(
        [(n, run_ring_point((n,), cache_line, wl, scale.sim)) for n in sizes]
    )


@lru_cache(maxsize=None)
def level_growth_sweep(
    scale: Scale,
    levels: int,
    cache_line: int,
    outstanding: int,
    locality: float = 1.0,
    global_ring_speed: int = 1,
    include_smaller: bool = True,
    max_nodes: int | None = None,
) -> Sweep:
    """Hierarchy growth sweep at a fixed depth (Figures 7-11, 19, 20)."""
    cap = min(scale.max_nodes, max_nodes) if max_nodes else scale.max_nodes
    if include_smaller:
        schedule = hierarchy_sweep(levels, cache_line, cap)
    else:
        schedule = growth_topologies(levels, cache_line, cap)
    wl = workload(locality, outstanding)
    points = []
    for nodes, branching in schedule:
        speed = global_ring_speed if len(branching) > 1 else 1
        points.append(
            (
                nodes,
                run_ring_point(
                    branching, cache_line, wl, scale.sim, global_ring_speed=speed
                ),
            )
        )
    return _measured(points)


@lru_cache(maxsize=None)
def table2_size_ring_sweep(
    scale: Scale,
    cache_line: int,
    outstanding: int,
    locality: float = 1.0,
    global_ring_speed: int = 1,
) -> Sweep:
    """Rings at the paper's Table 2 system sizes (comparison figures).

    With a double-speed global ring the 3-level design rule allows five
    second-level rings, so the sweep extends beyond Table 2 with the
    Section 6 growth schedule.
    """
    sizes = sorted(PAPER_TABLE2[cache_line])
    wl = workload(locality, outstanding)
    points = []
    for nodes in sizes:
        if nodes > scale.max_nodes:
            continue
        branching = PAPER_TABLE2[cache_line][nodes]
        speed = global_ring_speed if len(branching) > 1 else 1
        points.append(
            (
                nodes,
                run_ring_point(
                    branching, cache_line, wl, scale.sim, global_ring_speed=speed
                ),
            )
        )
    if global_ring_speed == 2:
        for nodes, branching in growth_topologies(
            3, cache_line, scale.max_nodes, max_top_fan=5
        ):
            if all(nodes != existing for existing, __ in points):
                points.append(
                    (
                        nodes,
                        run_ring_point(
                            branching, cache_line, wl, scale.sim, global_ring_speed=2
                        ),
                    )
                )
    points.sort(key=lambda item: item[0])
    return _measured(points)


@lru_cache(maxsize=None)
def mesh_sweep(
    scale: Scale,
    cache_line: int,
    buffer_flits,
    outstanding: int,
    locality: float = 1.0,
) -> Sweep:
    """Meshes across the scale's side lengths (Figures 12-18, 21)."""
    wl = workload(locality, outstanding)
    points = []
    for side in scale.mesh_sides:
        if side * side > scale.max_nodes:
            continue
        points.append(
            (
                side * side,
                run_mesh_point(side, cache_line, buffer_flits, wl, scale.sim),
            )
        )
    return _measured(points)
