"""Figure 9: latency of 3-level ring hierarchies.

Paper claim: like the 2-level case, the slope increases when a third
level becomes necessary and again past three second-level rings; a
3-level hierarchy reasonably supports 108/72/54/36 nodes for
16/32/64/128-byte cache lines.
"""

from __future__ import annotations

from ..analysis.sweeps import SweepResult
from ..ring.topology import SINGLE_RING_MAX
from ._shared import level_growth_sweep
from .base import Experiment, Scale, register


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 9: latency for 3-level ring hierarchies (R=1.0, C=0.04, T=4)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for cache_line in scale.cache_lines:
        series = result.new_series(f"{cache_line}B")
        sweep = level_growth_sweep(
            scale, levels=3, cache_line=cache_line, outstanding=4, max_nodes=150
        )
        for nodes, point in sweep:
            series.add(
                nodes,
                point.avg_latency,
                global_utilization=point.utilization_percent("global"),
                saturated=point.saturated,
            )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for name, series in result.series.items():
        cache_line = int(name.rstrip("B"))
        local = SINGLE_RING_MAX[cache_line]
        supported = 9 * local  # three second-level rings of three locals
        beyond = 12 * local
        if supported in series.xs and beyond in series.xs:
            if series.y_at(beyond) < 1.15 * series.y_at(supported):
                failures.append(
                    f"{name}: expected saturation past three second-level rings "
                    f"({series.y_at(supported):.0f} -> {series.y_at(beyond):.0f})"
                )
        if not series.is_nondecreasing(slack=0.2):
            failures.append(f"{name}: latency should grow with system size")
    return failures


register(
    Experiment(
        experiment_id="fig9",
        title="3-level hierarchy latency vs nodes",
        paper_claim=(
            "3-level hierarchies support 108/72/54/36 nodes for "
            "16/32/64/128B lines; a fourth second-level ring saturates the "
            "global ring"
        ),
        runner=run,
        check=check,
        tags=("ring",),
    )
)
