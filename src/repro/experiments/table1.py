"""Table 1: NIC buffer memory requirements (analytic).

A ring NIC keeps one cache-line-sized transit buffer of 16-byte flits;
a mesh NIC keeps four input buffers of 4-byte flits.  The paper uses
this table to argue that giving rings cl-sized buffers while varying
mesh buffer depth is a fair comparison under constant pin/memory
budgets.
"""

from __future__ import annotations

from ..analysis.sweeps import SweepResult
from ..analysis.tables import table1_memory_requirements
from .base import Experiment, Scale, register

#: The paper's Table 1 values (bytes).  The published ring column for
#: 32B and 64B lines is corrupted in the scanned text ("8B"/"30B"); the
#: stated geometry (cl-sized buffer, 16B flits, 1-flit header) gives 48
#: and 80 bytes.
PAPER_VALUES = {
    16: {"ring": 32, "mesh_cl": 128, "mesh_4": 64, "mesh_1": 16},
    32: {"ring": 48, "mesh_cl": 192, "mesh_4": 64, "mesh_1": 16},
    64: {"ring": 80, "mesh_cl": 320, "mesh_4": 64, "mesh_1": 16},
    128: {"ring": 144, "mesh_cl": 576, "mesh_4": 64, "mesh_1": 16},
}


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Table 1: NIC buffer memory requirements (bytes)",
        x_label="cache line (B)",
        y_label="bytes",
    )
    ring = result.new_series("ring cl-sized")
    mesh_cl = result.new_series("mesh cl-sized")
    mesh_4 = result.new_series("mesh 4-flit")
    mesh_1 = result.new_series("mesh 1-flit")
    for row in table1_memory_requirements():
        ring.add(row.cache_line_bytes, row.ring_nic_bytes)
        mesh_cl.add(row.cache_line_bytes, row.mesh_cl_bytes)
        mesh_4.add(row.cache_line_bytes, row.mesh_4flit_bytes)
        mesh_1.add(row.cache_line_bytes, row.mesh_1flit_bytes)
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    columns = {
        "ring cl-sized": "ring",
        "mesh cl-sized": "mesh_cl",
        "mesh 4-flit": "mesh_4",
        "mesh 1-flit": "mesh_1",
    }
    for series_name, key in columns.items():
        series = result.series[series_name]
        for cache_line, expected in PAPER_VALUES.items():
            measured = series.y_at(cache_line)
            if measured != expected[key]:
                failures.append(
                    f"{series_name} at {cache_line}B: {measured} != paper "
                    f"{expected[key]}"
                )
    return failures


register(
    Experiment(
        experiment_id="table1",
        title="NIC buffer memory requirements",
        paper_claim="exact byte counts of Table 1",
        runner=run,
        check=check,
        tags=("analytic",),
    )
)
