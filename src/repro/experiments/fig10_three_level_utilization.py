"""Figure 10: global ring utilization in 3-level hierarchies.

Paper claim: the global ring saturates once more than three 2-level
subsystems hang off it, reinforcing the constant-bisection-bandwidth
constraint of hierarchical rings.
"""

from __future__ import annotations

from ..analysis.sweeps import SweepResult
from ..ring.topology import SINGLE_RING_MAX
from ._shared import level_growth_sweep
from .base import Experiment, Scale, register


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 10: global ring utilization, 3-level hierarchies (R=1.0, C=0.04, T=4)",
        x_label="nodes",
        y_label="utilization (%)",
    )
    for cache_line in scale.cache_lines:
        series = result.new_series(f"{cache_line}B")
        sweep = level_growth_sweep(
            scale, levels=3, cache_line=cache_line, outstanding=4, max_nodes=150
        )
        for nodes, point in sweep:
            if "global" in point.utilization:
                series.add(
                    nodes,
                    point.utilization_percent("global"),
                    saturated=point.saturated,
                )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for name, series in result.series.items():
        cache_line = int(name.rstrip("B"))
        local = SINGLE_RING_MAX[cache_line]
        saturated = [x for x in series.xs if x >= 9 * local]
        if saturated and max(series.y_at(x) for x in saturated) < 60.0:
            failures.append(
                f"{name}: global ring should approach saturation with three "
                "second-level rings"
            )
    return failures


register(
    Experiment(
        experiment_id="fig10",
        title="3-level hierarchy global ring utilization",
        paper_claim="global ring saturates beyond three second-level rings",
        runner=run,
        check=check,
        tags=("ring",),
    )
)
