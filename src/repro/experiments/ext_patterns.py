"""Extension: per-pattern injection-rate sweeps (saturation search).

Not a paper figure.  The paper evaluates its fabrics only under the
M-MRP locality workload; the NoC literature (the 3D-topology pattern
suite, HiRD, Ring-Mesh — see PAPERS.md) characterizes fabrics by the
injection rate at which each *traffic pattern* saturates them instead.
This family sweeps the per-cycle miss rate ``C`` (the offered injection
rate) under every pattern of :mod:`repro.workload.patterns` plus a
bursty M-MRP cell, on one ring and one mesh of equal size, and reports
each series' saturation onset via
:meth:`repro.analysis.sweeps.SweepResult.saturation_onsets` — the
latency-knee estimate (latency first exceeding :data:`KNEE_FACTOR`
times the series' lowest-``C`` latency).  The existing CI-width
convergence machinery still stamps every point (``saturated`` meta →
the harness's unconverged-point accounting and exit status), but on
quick-scale runs its verdict is batch noise, so the qualitative
ordering check reads the knee.

Expected shape (mirrors published mesh behavior): the permutation
patterns concentrate load onto few paths, so transpose and tornado
saturate the mesh at lower ``C`` than uniform-random; hotspot funnels
over half of all traffic onto two memory modules and saturates earliest
on both fabrics.

``ext-patterns`` is the real sweep (16-PM fabrics, a ``C`` ladder per
scale).  ``ext-patterns-smoke`` is the CI cell: every pattern on the
smallest fabrics that admit the bit permutations (4 PMs) at a single
mid ``C`` — small enough to run under ``--audit``.
"""

from __future__ import annotations

import math

from ..analysis.sweeps import SweepResult
from ..core.config import MeshSystemConfig, RingSystemConfig, WorkloadConfig
from ..runtime import PointSpec, run_points
from .base import Experiment, Scale, register

CACHE_LINE = 32

#: Spatial patterns swept, plus the bursty temporal cell (M-MRP spatial
#: shape with on/off Markov-modulated injection, mean 25-cycle bursts
#: every 100 cycles).
SPATIAL_PATTERNS = ("uniform", "tornado", "transpose", "shuffle", "bitrev", "hotspot")
BURST_ON, BURST_OFF = 25.0, 75.0

#: 16 PMs each: a two-level ring of two full local rings and a 4x4
#: mesh.  16 = 4^2 keeps every bit permutation (and the ring transpose,
#: which needs P = 4^k) valid on both fabrics.
RING_TOPOLOGY = "2:8"
MESH_SIDE = 4

SMOKE_RING_TOPOLOGY = "2:2"
SMOKE_MESH_SIDE = 2
SMOKE_RATE = 0.04

#: Latency-knee saturation threshold: a point counts as past the knee
#: once latency exceeds this multiple of the series' lowest-C latency.
KNEE_FACTOR = 1.5


def injection_rates(scale: Scale) -> tuple[float, ...]:
    """The swept ``C`` ladder; wider and finer at bigger scales."""
    if scale.name == "quick":
        return (0.01, 0.02, 0.04, 0.08)
    if scale.name == "default":
        return (0.005, 0.01, 0.02, 0.03, 0.04, 0.06, 0.08)
    return (0.005, 0.01, 0.02, 0.03, 0.04, 0.06, 0.08, 0.12)


def pattern_workload(name: str, rate: float) -> WorkloadConfig:
    """The workload for one series cell at injection rate ``C = rate``."""
    if name == "bursty":
        return WorkloadConfig(
            miss_rate=rate, burst_on=BURST_ON, burst_off=BURST_OFF
        )
    return WorkloadConfig(miss_rate=rate, pattern=name)


def series_names() -> list[str]:
    return [
        f"{fabric}:{pattern}"
        for fabric in ("ring", "mesh")
        for pattern in (*SPATIAL_PATTERNS, "bursty")
    ]


def _sweep(
    result: SweepResult,
    scale: Scale,
    rates: tuple[float, ...],
    ring_topology: str,
    mesh_side: int,
) -> None:
    for fabric, system in (
        ("ring", RingSystemConfig(topology=ring_topology, cache_line_bytes=CACHE_LINE)),
        ("mesh", MeshSystemConfig(side=mesh_side, cache_line_bytes=CACHE_LINE)),
    ):
        for pattern in (*SPATIAL_PATTERNS, "bursty"):
            series = result.new_series(f"{fabric}:{pattern}")
            specs = [
                PointSpec.of(system, pattern_workload(pattern, rate), scale.sim)
                for rate in rates
            ]
            for rate, point in zip(rates, run_points(specs)):
                if not point.remote_transactions:
                    continue
                throughput = (
                    point.throughput.mean if point.throughput is not None else None
                )
                series.add(
                    rate,
                    point.avg_latency,
                    transactions=point.remote_transactions,
                    saturated=point.saturated,
                    throughput=throughput,
                )
    if len(rates) > 1:
        onsets = result.saturation_onsets(KNEE_FACTOR)
        summary = ", ".join(
            f"{name}: C={onset:g}" if onset is not None else f"{name}: none"
            for name, onset in sorted(onsets.items())
        )
        result.notes.append(
            f"saturation onset (latency > {KNEE_FACTOR:g}x the lowest-C "
            f"latency) — {summary}"
        )


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title=(
            "Extension: per-pattern saturation search "
            f"(ring {RING_TOPOLOGY} vs mesh {MESH_SIDE}x{MESH_SIDE}, "
            "16 PMs, T=4)"
        ),
        x_label="injection rate C",
        y_label="latency (cycles)",
    )
    _sweep(result, scale, injection_rates(scale), RING_TOPOLOGY, MESH_SIDE)
    return result


def run_smoke(scale: Scale) -> SweepResult:
    result = SweepResult(
        title=(
            "Extension: pattern smoke cells "
            f"(ring {SMOKE_RING_TOPOLOGY} + mesh "
            f"{SMOKE_MESH_SIDE}x{SMOKE_MESH_SIDE}, C={SMOKE_RATE})"
        ),
        x_label="injection rate C",
        y_label="latency (cycles)",
    )
    _sweep(result, scale, (SMOKE_RATE,), SMOKE_RING_TOPOLOGY, SMOKE_MESH_SIDE)
    return result


def _onset(result: SweepResult, name: str) -> float:
    """Knee saturation onset for comparisons; never-saturated sorts last."""
    series = result.series.get(name)
    if series is None or not series.xs:
        return math.inf
    onset = series.knee_onset(KNEE_FACTOR)
    return math.inf if onset is None else onset


def check(result: SweepResult) -> list[str]:
    failures = []
    missing = [name for name in series_names() if not result.series.get(name)]
    if missing:
        return [f"missing series: {', '.join(missing)}"]
    mesh_uniform = _onset(result, "mesh:uniform")
    for pattern in ("transpose", "tornado"):
        if _onset(result, f"mesh:{pattern}") > mesh_uniform:
            failures.append(
                f"mesh:{pattern} should saturate at or before mesh:uniform "
                f"(onset {_onset(result, f'mesh:{pattern}'):g} vs "
                f"{mesh_uniform:g})"
            )
    for fabric in ("ring", "mesh"):
        hotspot = _onset(result, f"{fabric}:hotspot")
        for pattern in SPATIAL_PATTERNS:
            if hotspot > _onset(result, f"{fabric}:{pattern}"):
                failures.append(
                    f"{fabric}:hotspot should saturate earliest "
                    f"(onset {hotspot:g} vs {fabric}:{pattern} at "
                    f"{_onset(result, f'{fabric}:{pattern}'):g})"
                )
    return failures


def check_smoke(result: SweepResult) -> list[str]:
    missing = [name for name in series_names() if not result.series.get(name)]
    if missing:
        return [f"missing series: {', '.join(missing)}"]
    empty = [name for name in series_names() if not result.series[name].xs]
    if empty:
        return [f"series with no surviving points: {', '.join(empty)}"]
    return []


register(
    Experiment(
        experiment_id="ext-patterns",
        title="Per-pattern saturation search, ring vs mesh (extension)",
        paper_claim=(
            "NoC pattern suites: permutation traffic (transpose/tornado) "
            "saturates the mesh before uniform-random; hotspot saturates "
            "earliest on both fabrics"
        ),
        runner=run,
        check=check,
        tags=("ring", "mesh", "extension", "patterns"),
    )
)

register(
    Experiment(
        experiment_id="ext-patterns-smoke",
        title="Pattern smoke cells, every pattern on both fabrics (extension)",
        paper_claim=(
            "every traffic pattern (and bursty injection) runs on both "
            "fabrics at audit-friendly size"
        ),
        runner=run_smoke,
        check=check_smoke,
        tags=("ring", "mesh", "extension", "patterns", "smoke"),
    )
)
