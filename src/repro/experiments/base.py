"""Experiment harness: scales, registry, and shared runners.

Every paper table/figure is an :class:`Experiment` registered here.  An
experiment maps a :class:`Scale` (how long and how wide to simulate) to
a :class:`~repro.analysis.sweeps.SweepResult` and carries qualitative
*checks* — the shape claims the paper makes about that figure — which
the integration tests and the CLI's ``--check`` flag evaluate.

Scales
------
``quick``    seconds-per-experiment; used by CI tests and benchmarks.
``default``  minutes-per-experiment; good fidelity on the shapes.
``full``     the complete paper grid (all cache lines, T values, and
             system sizes up to 121-144 nodes); used to produce
             EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from ..core.config import SimulationParams
from ..analysis.sweeps import SweepResult
from ..runtime import runtime_context


@dataclass(frozen=True)
class Scale:
    """How much of the paper grid to run."""

    name: str
    sim: SimulationParams
    max_nodes: int
    t_values: tuple[int, ...]
    cache_lines: tuple[int, ...]
    mesh_sides: tuple[int, ...]
    locality_values: tuple[float, ...] = (0.1, 0.2, 0.3)
    run_checks: bool = True


QUICK = Scale(
    name="quick",
    sim=SimulationParams(batch_cycles=500, batches=3),
    max_nodes=40,
    t_values=(4,),
    cache_lines=(32, 128),
    mesh_sides=(2, 3, 4, 6),
    locality_values=(0.2,),
    run_checks=False,
)

DEFAULT = Scale(
    name="default",
    sim=SimulationParams(batch_cycles=2000, batches=5),
    max_nodes=80,
    t_values=(1, 4),
    cache_lines=(16, 32, 64, 128),
    mesh_sides=(2, 3, 4, 5, 6, 7, 8, 9),
    locality_values=(0.1, 0.2, 0.3),
)

FULL = Scale(
    name="full",
    sim=SimulationParams(batch_cycles=4000, batches=6),
    max_nodes=150,
    t_values=(1, 2, 4),
    cache_lines=(16, 32, 64, 128),
    mesh_sides=(2, 3, 4, 5, 6, 7, 8, 9, 10, 11),
    locality_values=(0.1, 0.2, 0.3),
)

SCALES = {scale.name: scale for scale in (QUICK, DEFAULT, FULL)}


def scale_from_env(default: str = "quick") -> Scale:
    """Scale selected by the ``REPRO_SCALE`` environment variable."""
    return SCALES[os.environ.get("REPRO_SCALE", default)]


#: A check inspects a finished sweep and returns failure messages.
Check = Callable[[SweepResult], list[str]]


@dataclass
class Experiment:
    """A registered reproduction of one paper table or figure."""

    experiment_id: str
    title: str
    paper_claim: str
    runner: Callable[[Scale], SweepResult]
    check: Check | None = None
    tags: tuple[str, ...] = ()

    def run(self, scale: Scale, jobs: int | None = None) -> SweepResult:
        """Run the experiment's sweeps at *scale*.

        ``jobs`` overrides the worker-process count for this run; when
        ``None``, the ambient :func:`repro.runtime.runtime_context` (or
        ``REPRO_JOBS``, default serial) applies.
        """
        with runtime_context(jobs=jobs):
            return self.runner(scale)

    def evaluate(self, result: SweepResult) -> list[str]:
        if self.check is None:
            return []
        return self.check(result)


EXPERIMENTS: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    if experiment.experiment_id in EXPERIMENTS:
        raise ValueError(f"duplicate experiment id {experiment.experiment_id!r}")
    EXPERIMENTS[experiment.experiment_id] = experiment
    return experiment


def get_experiment(experiment_id: str) -> Experiment:
    _load_all()
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None


def all_experiments() -> dict[str, Experiment]:
    _load_all()
    return dict(EXPERIMENTS)


_LOADED = False


def _load_all() -> None:
    """Import every experiment module so registration side effects run."""
    global _LOADED
    if _LOADED:
        return
    from . import (  # noqa: F401
        table1,
        table2,
        fig06_single_rings,
        fig07_two_level_latency,
        fig08_two_level_utilization,
        fig09_three_level_latency,
        fig10_three_level_utilization,
        fig11_hierarchy_benefit,
        fig12_mesh_latency,
        fig13_mesh_utilization,
        fig14_ring_vs_mesh,
        fig15_cl_buffers,
        fig16_one_flit_buffers,
        fig17_locality,
        fig18_locality_cl_buffers,
        fig19_double_speed_latency,
        fig20_double_speed_utilization,
        fig21_double_speed_vs_mesh,
        ext_slotted,
        ext_patterns,
    )

    _LOADED = True
