"""Figure 20: global ring utilization, normal vs double speed.

Paper claim: the double-speed global ring's utilization climbs more
slowly and more linearly with system size than the normal-speed ring,
which saturates at three second-level rings.
"""

from __future__ import annotations

from ..analysis.sweeps import SweepResult
from ._shared import level_growth_sweep
from .base import Experiment, Scale, register

CACHE_LINES = (32, 64, 128)


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 20: global ring utilization, normal vs 2x (R=1.0, C=0.04, T=4)",
        x_label="nodes",
        y_label="utilization (%)",
    )
    for cache_line in CACHE_LINES:
        if cache_line not in scale.cache_lines:
            continue
        for speed, label in ((1, "normal"), (2, "double")):
            series = result.new_series(f"{cache_line}B {label}")
            sweep = level_growth_sweep(
                scale,
                levels=3,
                cache_line=cache_line,
                outstanding=4,
                global_ring_speed=speed,
                include_smaller=False,
                max_nodes=200,
            )
            for nodes, point in sweep:
                if "global" in point.utilization:
                    series.add(
                        nodes,
                        point.utilization_percent("global"),
                        saturated=point.saturated,
                    )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for name in list(result.series):
        if not name.endswith("double"):
            continue
        cache_line = int(name.split("B")[0])
        double = result.series[name]
        normal = result.series.get(f"{cache_line}B normal")
        if normal is None:
            continue
        shared = sorted(set(double.xs) & set(normal.xs))
        for x in shared:
            if double.y_at(x) > normal.y_at(x) + 8.0:
                failures.append(
                    f"{cache_line}B at {x} nodes: 2x global ring should be "
                    "less utilized than the normal-speed ring"
                )
    return failures


register(
    Experiment(
        experiment_id="fig20",
        title="Double-speed global ring utilization",
        paper_claim="2x global ring utilization grows more slowly and linearly",
        runner=run,
        check=check,
        tags=("ring", "double-speed"),
    )
)
