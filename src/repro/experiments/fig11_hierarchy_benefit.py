"""Figure 11: the benefit of hierarchy depth (32B cache lines, T=2).

Paper claim: each additional ring level shifts the latency curve right,
accommodating more nodes; with memory access locality (R=0.2) the
benefit of hierarchy is much larger than without (R=1.0), because most
traffic stays on the cheap lower levels.
"""

from __future__ import annotations

from ..analysis.crossover import interpolate
from ..analysis.sweeps import SweepResult
from ._shared import level_growth_sweep
from .base import Experiment, Scale, register

CACHE_LINE = 32


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 11: hierarchy depth benefit, 32B lines (C=0.04, T=2)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for locality in (1.0, 0.2):
        for levels in (1, 2, 3, 4):
            sweep = level_growth_sweep(
                scale,
                levels=levels,
                cache_line=CACHE_LINE,
                outstanding=2,
                locality=locality,
                include_smaller=False,
                max_nodes=150,
            )
            if not sweep:
                continue
            series = result.new_series(f"{levels}-level R={locality}")
            for nodes, point in sweep:
                series.add(nodes, point.avg_latency, saturated=point.saturated)
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for locality in (1.0, 0.2):
        shallow = result.series.get(f"2-level R={locality}")
        deep = result.series.get(f"3-level R={locality}")
        if shallow is None or deep is None or not shallow.xs or not deep.xs:
            continue
        # Where both are defined and the 2-level system is saturated
        # (past 3 local rings), the 3-level hierarchy should be cheaper.
        overlap = [x for x in deep.xs if min(shallow.xs) <= x <= max(shallow.xs)]
        saturated = [x for x in overlap if x > 24]
        for x in saturated:
            if interpolate(deep, x) > 1.1 * interpolate(shallow, x):
                failures.append(
                    f"R={locality}: 3-level should not be slower than a "
                    f"saturated 2-level system at {x} nodes"
                )
    return failures


register(
    Experiment(
        experiment_id="fig11",
        title="Latency by hierarchy depth (1-4 levels)",
        paper_claim=(
            "each hierarchy level shifts the latency curve right; the "
            "benefit is larger with locality (R=0.2)"
        ),
        runner=run,
        check=check,
        tags=("ring", "locality"),
    )
)
