"""Figure 8: local and global ring utilization in 2-level hierarchies.

Paper claim: global ring utilization nearly saturates at three local
rings — connecting more only saturates it further — while local ring
utilization *decreases* as more local rings share the global ring:
the system is bisection-bandwidth limited.
"""

from __future__ import annotations

from ..analysis.sweeps import SweepResult
from ..ring.topology import SINGLE_RING_MAX
from ._shared import level_growth_sweep
from .base import Experiment, Scale, register


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 8: ring utilization for 2-level hierarchies (R=1.0, C=0.04, T=4)",
        x_label="nodes",
        y_label="utilization (%)",
    )
    for cache_line in scale.cache_lines:
        local_series = result.new_series(f"local {cache_line}B")
        global_series = result.new_series(f"global {cache_line}B")
        sweep = level_growth_sweep(
            scale, levels=2, cache_line=cache_line, outstanding=4, max_nodes=72
        )
        for nodes, point in sweep:
            local_series.add(
                nodes, point.utilization_percent("local"), saturated=point.saturated
            )
            if "global" in point.utilization:
                global_series.add(
                    nodes,
                    point.utilization_percent("global"),
                    saturated=point.saturated,
                )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for name, series in result.series.items():
        if not name.startswith("global"):
            continue
        cache_line = int(name.split()[1].rstrip("B"))
        local = SINGLE_RING_MAX[cache_line]
        saturated = [x for x in series.xs if x >= 3 * local]
        if saturated and max(series.y_at(x) for x in saturated) < 60.0:
            failures.append(
                f"{name}: global ring should approach saturation at >= 3 "
                f"local rings (max {max(series.y_at(x) for x in saturated):.0f}%)"
            )
        local_name = f"local {cache_line}B"
        local_series = result.series.get(local_name)
        if local_series is not None:
            big = [x for x in local_series.xs if x >= 3 * local]
            if big and saturated:
                if local_series.y_at(max(big)) > series.y_at(max(saturated)):
                    failures.append(
                        f"{local_name}: local rings should be less utilized than "
                        "the saturated global ring"
                    )
    return failures


register(
    Experiment(
        experiment_id="fig8",
        title="2-level hierarchy ring utilization",
        paper_claim=(
            "global ring reaches capacity at three local rings; local ring "
            "utilization falls as more rings share it"
        ),
        runner=run,
        check=check,
        tags=("ring",),
    )
)
