"""Figure 6: latency of single (1-level) rings.

Paper claim: single rings with 16, 32, 64 and 128-byte cache lines can
conservatively sustain 12, 8, 6 and 4 nodes respectively with almost no
performance degradation; beyond that, latency climbs steeply.  Larger T
raises latency at every size (more outstanding traffic).
"""

from __future__ import annotations

from ..analysis.sweeps import SweepResult
from ..ring.topology import SINGLE_RING_MAX
from ._shared import single_ring_sweep
from .base import Experiment, Scale, register


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 6: latency for single rings (R=1.0, C=0.04)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for cache_line in scale.cache_lines:
        for outstanding in scale.t_values:
            series = result.new_series(f"{cache_line}B T={outstanding}")
            for nodes, point in single_ring_sweep(scale, cache_line, outstanding):
                series.add(
                    nodes,
                    point.avg_latency,
                    utilization=point.utilization_percent("local"),
                    transactions=point.remote_transactions,
                    saturated=point.saturated,
                )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for name, series in result.series.items():
        cache_line = int(name.split("B")[0])
        sustain = SINGLE_RING_MAX[cache_line]
        if sustain not in series.xs or 2 * sustain not in series.xs:
            continue
        at_sustain = series.y_at(sustain)
        at_double = series.y_at(2 * sustain)
        if at_double < 1.4 * at_sustain:
            failures.append(
                f"{name}: expected steep degradation past {sustain} nodes "
                f"(latency {at_sustain:.0f} -> {at_double:.0f})"
            )
        if not series.is_nondecreasing(slack=0.15):
            failures.append(f"{name}: latency should grow with ring size")
    return failures


register(
    Experiment(
        experiment_id="fig6",
        title="Single-ring latency vs nodes",
        paper_claim=(
            "single rings sustain 12/8/6/4 nodes for 16/32/64/128B cache "
            "lines before latency climbs steeply"
        ),
        runner=run,
        check=check,
        tags=("ring",),
    )
)
