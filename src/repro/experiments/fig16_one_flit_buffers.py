"""Figure 16: rings vs meshes with 1-flit mesh buffers (128B lines).

Paper claim: with 1-flit router buffers, worms routinely stall across
many links and meshes lose to hierarchical rings at *every* system size
up to 121 nodes, for every cache line size.
"""

from __future__ import annotations

from ..analysis.crossover import crossover_point, interpolate
from ..analysis.sweeps import SweepResult
from ._shared import mesh_sweep, table2_size_ring_sweep
from .base import Experiment, Scale, register

CACHE_LINE = 128


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 16: rings vs meshes with 1-flit buffers, 128B lines (R=1.0, C=0.04)",
        x_label="nodes",
        y_label="latency (cycles)",
    )
    for outstanding in scale.t_values:
        ring_series = result.new_series(f"ring T={outstanding}")
        for nodes, point in table2_size_ring_sweep(scale, CACHE_LINE, outstanding):
            ring_series.add(nodes, point.avg_latency, saturated=point.saturated)
        mesh_series = result.new_series(f"mesh T={outstanding}")
        for nodes, point in mesh_sweep(scale, CACHE_LINE, 1, outstanding):
            mesh_series.add(nodes, point.avg_latency, saturated=point.saturated)
        crossing = crossover_point(ring_series, mesh_series)
        result.notes.append(
            f"cross-over T={outstanding}: "
            + (f"{crossing:.0f} nodes" if crossing else "none (rings win throughout)")
        )
    return result


def check(result: SweepResult) -> list[str]:
    """Rings must dominate 1-flit-buffer meshes through medium sizes.

    The paper puts the cross-over above 121 nodes; in our model it sits
    lower (~60 at T=4) because our router re-arbitrates an output away
    from a credit-blocked head flit, which softens the 1-flit mesh's
    pathology (see EXPERIMENTS.md).  The check asserts the robust part
    of the claim: rings win decisively at small and medium sizes.
    """
    failures = []
    for name in list(result.series):
        if not name.startswith("ring"):
            continue
        outstanding = int(name.split("=")[1])
        ring = result.series[name]
        mesh = result.series.get(f"mesh T={outstanding}")
        if mesh is None or len(ring.xs) < 2 or len(mesh.xs) < 2:
            continue
        lo = max(min(ring.xs), min(mesh.xs))
        hi = min(max(ring.xs), max(mesh.xs), 36)
        mids = [x for x in sorted(set(ring.xs) | set(mesh.xs)) if lo <= x <= hi]
        losses = [
            x for x in mids if interpolate(ring, x) > 1.05 * interpolate(mesh, x)
        ]
        if losses:
            failures.append(
                f"T={outstanding}: rings should beat 1-flit-buffer meshes "
                f"through medium sizes; lost at {losses}"
            )
        crossing = crossover_point(ring, mesh)
        if crossing is not None and crossing < 36:
            failures.append(
                f"T={outstanding}: cross-over {crossing:.0f} is below the "
                "36-node floor the paper's claim implies"
            )
    return failures


register(
    Experiment(
        experiment_id="fig16",
        title="Rings vs meshes (1-flit buffers), 128B lines",
        paper_claim="rings beat 1-flit-buffer meshes at every size up to 121 nodes",
        runner=run,
        check=check,
        tags=("comparison",),
    )
)
