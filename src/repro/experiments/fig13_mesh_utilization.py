"""Figure 13: network utilization of meshes with 4-flit buffers.

Paper claim: utilization peaks early (at 16/9/9/4 nodes for
16/32/64/128B lines) and decreases monotonically for larger systems —
packets travel further, blocking probability rises, and offered load
per link falls; under 20% by 121 processors for every cache line size.
"""

from __future__ import annotations

from ..analysis.sweeps import SweepResult
from ._shared import mesh_sweep
from .base import Experiment, Scale, register


def run(scale: Scale) -> SweepResult:
    result = SweepResult(
        title="Figure 13: mesh network utilization, 4-flit buffers (R=1.0, C=0.04, T=4)",
        x_label="nodes",
        y_label="utilization (%)",
    )
    for cache_line in scale.cache_lines:
        series = result.new_series(f"{cache_line}B")
        for nodes, point in mesh_sweep(scale, cache_line, 4, 4):
            series.add(
                nodes, point.utilization_percent("mesh"), saturated=point.saturated
            )
    return result


def check(result: SweepResult) -> list[str]:
    failures = []
    for name, series in result.series.items():
        if len(series.xs) < 3:
            continue
        peak_x = series.xs[series.ys.index(max(series.ys))]
        if peak_x == max(series.xs):
            failures.append(
                f"{name}: utilization should peak at a small system, not at "
                f"the largest sampled ({peak_x} nodes)"
            )
        if max(series.xs) >= 100 and series.y_at(max(series.xs)) > 35.0:
            failures.append(
                f"{name}: utilization should fall for large systems "
                f"({series.y_at(max(series.xs)):.0f}% at {max(series.xs)} nodes)"
            )
    return failures


register(
    Experiment(
        experiment_id="fig13",
        title="Mesh network utilization vs nodes",
        paper_claim=(
            "utilization peaks at small systems and declines monotonically; "
            "below 20% at 121 processors"
        ),
        runner=run,
        check=check,
        tags=("mesh",),
    )
)
