"""repro — flit-level simulation of hierarchical-ring and 2D-mesh
shared-memory multiprocessor interconnects.

A from-scratch reproduction of Ravindran & Stumm, "A Performance
Comparison of Hierarchical Ring- and Mesh-connected Multiprocessor
Networks" (HPCA 1997).

Quickstart::

    from repro import RingSystemConfig, MeshSystemConfig, WorkloadConfig, simulate

    ring = simulate(RingSystemConfig(topology="3:3:8", cache_line_bytes=32))
    mesh = simulate(MeshSystemConfig.for_processors(64, cache_line_bytes=32))
    print(ring.avg_latency, mesh.avg_latency)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from .core.config import (
    CACHE_LINE_SIZES,
    CL_BUFFER,
    DEFAULT_SIM,
    QUICK_SIM,
    THOROUGH_SIM,
    MeshSystemConfig,
    PacketGeometry,
    RingSystemConfig,
    SimulationParams,
    WorkloadConfig,
    format_hierarchy,
    hierarchy_processors,
    mesh_packet_geometry,
    parse_hierarchy,
    ring_packet_geometry,
)
from .core.errors import (
    ConfigurationError,
    DeadlockError,
    ReproError,
    SimulationError,
    TopologyError,
)
from .core.adaptive import AdaptiveResult, simulate_to_precision
from .core.packet import Flit, Packet, PacketType
from .core.simulation import SimulationResult, simulate
from .core.statistics import BatchMeans, RateMeter, Summary
from .ring.topology import (
    PAPER_TABLE2,
    SINGLE_RING_MAX,
    HierarchySpec,
    candidate_topologies,
    recommended_topology,
)

__version__ = "1.0.0"

__all__ = [
    "CACHE_LINE_SIZES",
    "CL_BUFFER",
    "DEFAULT_SIM",
    "QUICK_SIM",
    "THOROUGH_SIM",
    "AdaptiveResult",
    "BatchMeans",
    "ConfigurationError",
    "DeadlockError",
    "Flit",
    "HierarchySpec",
    "MeshSystemConfig",
    "PAPER_TABLE2",
    "Packet",
    "PacketGeometry",
    "PacketType",
    "RateMeter",
    "ReproError",
    "RingSystemConfig",
    "SINGLE_RING_MAX",
    "SimulationError",
    "SimulationParams",
    "SimulationResult",
    "Summary",
    "TopologyError",
    "WorkloadConfig",
    "candidate_topologies",
    "format_hierarchy",
    "hierarchy_processors",
    "mesh_packet_geometry",
    "parse_hierarchy",
    "recommended_topology",
    "ring_packet_geometry",
    "simulate",
    "simulate_to_precision",
]
