"""The M-MRP processor model (paper Section 2.4).

Each processor generates a series of cache misses.  The offered load is
controlled by the miss rate ``C``: every cycle in which the processor is
not blocked, a miss occurs with probability ``C`` (geometric inter-miss
gaps with mean ``1/C``; the paper's C=0.04 gives one miss per 25
cycles).  The generation rate is independent of the number of
outstanding requests — the multiple-context processor model of the
paper — but when ``T`` transactions are outstanding the processor
blocks: the pending miss waits for a response to free a slot, and no
further misses are drawn while blocked.

A miss is a read with probability ``read_fraction`` (0.7 in the paper)
and targets a memory module drawn uniformly from the processor's
locality region (chosen by the network-specific target selector).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Protocol

from .config import WorkloadConfig
from .packet import PacketType


class TargetSelector(Protocol):
    """Draws a target PM for one miss of a given processor."""

    def __call__(self, pm_id: int, rng: random.Random) -> int: ...


class MissSource(Protocol):
    """Anything that can feed cache misses to a processing module.

    :class:`MissGenerator` is the M-MRP implementation; the
    trace-driven workload (:mod:`repro.workload.trace`) provides a
    player with the same interface, so a PM never knows whether its
    misses are synthetic or replayed.

    Sources may additionally implement
    ``next_issue_cycle(cycle) -> int | None`` — the earliest future
    cycle at which ``poll`` could release a miss (``None`` while a
    released miss is parked waiting for an outstanding slot).  The
    active-set scheduler uses it to let an idle PM sleep; sources
    without it simply keep their PM polling every cycle.
    """

    def poll(self, cycle: int, can_issue: "Callable[[], bool]") -> "Miss | None": ...


@dataclass(frozen=True)
class Miss:
    """One generated cache miss, before packetization."""

    is_read: bool
    target: int
    generated_cycle: int


#: How many cycles of Bernoulli draws a scheduling query runs ahead of
#: real time.  Bounds the work per query at very low miss rates (where
#: the next success may be astronomically far away) while keeping the
#: timer wakes of an idle PM rare.
LOOKAHEAD_CHUNK = 4096


class MissGenerator:
    """Bernoulli-per-cycle miss source with a one-deep blocked-miss slot.

    While the processor is unblocked the per-cycle Bernoulli draws are
    independent of network state, so the generator may draw them *ahead*
    of real time: :meth:`next_issue_cycle` bursts up to
    :data:`LOOKAHEAD_CHUNK` cycles of draws looking for the next success
    and parks the resulting miss as ``_scheduled``.  Every cycle is
    drawn exactly once, in order, whether it is drawn lazily (one draw
    per ``poll``, the full-scan scheduler's pattern) or in a burst — so
    the random stream is consumed identically either way.  While a miss
    is blocked waiting for an outstanding slot no draws occur, and after
    it issues at cycle *r* drawing resumes at *r + 1* — again exactly as
    in the one-draw-per-poll formulation, making results bit-identical
    under both schedulers.
    """

    __slots__ = (
        "pm_id",
        "workload",
        "rng",
        "_pending",
        "misses_generated",
        "_select",
        "_scheduled",
        "_scheduled_cycle",
        "_next_draw_cycle",
    )

    def __init__(
        self,
        pm_id: int,
        workload: WorkloadConfig,
        select_target: TargetSelector,
        rng: random.Random,
    ):
        self.pm_id = pm_id
        self.workload = workload
        self.rng = rng
        self._select: TargetSelector = select_target
        self._pending: Miss | None = None
        self.misses_generated = 0
        self._scheduled: Miss | None = None
        self._scheduled_cycle = 0
        self._next_draw_cycle = 0

    @property
    def blocked(self) -> bool:
        """True when a generated miss is waiting for an outstanding slot."""
        return self._pending is not None

    def _advance_schedule(self, limit: int) -> None:
        """Draw the per-cycle Bernoullis for every cycle up to *limit*.

        Stops early at the first success (the scheduled miss must be
        consumed before later cycles may be drawn — consuming it while
        blocked suspends drawing entirely, exactly as lazy per-poll
        drawing would).
        """
        if self._scheduled is not None or self._pending is not None:
            return
        rng = self.rng
        rng_random = rng.random
        miss_rate = self.workload.miss_rate
        cycle = self._next_draw_cycle
        while cycle <= limit:
            if rng_random() < miss_rate:
                self._scheduled = Miss(
                    is_read=rng_random() < self.workload.read_fraction,
                    target=self._select(self.pm_id, rng),
                    generated_cycle=cycle,
                )
                self._scheduled_cycle = cycle
                self._next_draw_cycle = cycle + 1
                return
            cycle += 1
        self._next_draw_cycle = cycle

    def next_issue_cycle(self, cycle: int) -> int | None:
        """Cycle at which ``poll`` will next have a miss to release.

        ``None`` while a miss is parked blocked (its release is gated on
        an outstanding slot freeing, which the PM observes through its
        own wake events) and at zero load.  When the bounded lookahead
        finds no success, returns the first undrawn cycle so the PM
        wakes to draw the next chunk.
        """
        if self._pending is not None:
            return None
        if self._scheduled is None:
            if self.workload.miss_rate <= 0.0:
                return None  # zero load: no miss, ever
            self._advance_schedule(cycle + LOOKAHEAD_CHUNK)
        if self._scheduled is not None:
            return self._scheduled_cycle
        return self._next_draw_cycle

    def poll(self, cycle: int, can_issue: Callable[[], bool]) -> Miss | None:
        """Advance to ``cycle``; return a miss to issue now, if any.

        ``can_issue`` reports whether the processor has a free
        outstanding-transaction slot *right now* (it is re-queried after
        the pending miss is released so back-to-back issue works).
        """
        if self._pending is not None:
            if not can_issue():
                return None
            miss, self._pending = self._pending, None
            self._next_draw_cycle = cycle + 1
            return miss
        self._advance_schedule(cycle)
        if self._scheduled is None or self._scheduled_cycle > cycle:
            return None
        miss, self._scheduled = self._scheduled, None
        self.misses_generated += 1
        if can_issue():
            self._next_draw_cycle = cycle + 1
            return miss
        self._pending = miss
        return None

    @staticmethod
    def request_type(miss: Miss) -> PacketType:
        return PacketType.READ_REQUEST if miss.is_read else PacketType.WRITE_REQUEST


class BurstyMissGenerator(MissGenerator):
    """On/off Markov-modulated Bernoulli miss source.

    Each *drawn* cycle consumes one uniform for the two-state Markov
    transition (``P[leave ON] = 1/burst_on``, ``P[leave OFF] =
    1/burst_off``, evaluated before the cycle's injection decision, so
    a cycle that just turned ON may inject) and then — only while ON —
    the same miss/read/target draws as the base generator, at the
    ON-state rate ``miss_rate * (on+off)/on`` so the long-run average
    stays ``miss_rate``.  The initial state is one stationary
    (duty-cycle) draw in ``__init__`` so PM phases decorrelate.

    The chain only advances on cycles the base class would have drawn:
    it freezes while a miss is parked blocked, exactly like the
    Bernoulli stream, so lazy per-poll drawing and burst lookahead
    consume the random stream identically and results stay
    bit-identical across the naive/active/compiled/batched schedulers.
    (The compiled fast path fuses only the exact ``MissGenerator`` type
    — see ``ProcessingModule.compiled_update_handler`` — so this
    subclass automatically runs on the generic, still-correct path.
    The columnar scheduler pre-draws geometric gaps and rejects bursty
    workloads outright.)
    """

    __slots__ = ("_on", "_p_exit_on", "_p_exit_off", "_on_rate")

    def __init__(
        self,
        pm_id: int,
        workload: WorkloadConfig,
        select_target: TargetSelector,
        rng: random.Random,
    ):
        super().__init__(pm_id, workload, select_target, rng)
        self._p_exit_on = 1.0 / workload.burst_on
        self._p_exit_off = 1.0 / workload.burst_off
        self._on_rate = workload.burst_on_rate
        duty = workload.burst_on / (workload.burst_on + workload.burst_off)
        self._on = rng.random() < duty

    def _advance_schedule(self, limit: int) -> None:
        if self._scheduled is not None or self._pending is not None:
            return
        rng = self.rng
        rng_random = rng.random
        p_exit_on = self._p_exit_on
        p_exit_off = self._p_exit_off
        on_rate = self._on_rate
        on = self._on
        cycle = self._next_draw_cycle
        while cycle <= limit:
            if on:
                if rng_random() < p_exit_on:
                    on = False
            elif rng_random() < p_exit_off:
                on = True
            if on and rng_random() < on_rate:
                self._scheduled = Miss(
                    is_read=rng_random() < self.workload.read_fraction,
                    target=self._select(self.pm_id, rng),
                    generated_cycle=cycle,
                )
                self._scheduled_cycle = cycle
                self._next_draw_cycle = cycle + 1
                self._on = on
                return
            cycle += 1
        self._next_draw_cycle = cycle
        self._on = on


def make_miss_generator(
    pm_id: int,
    workload: WorkloadConfig,
    select_target: TargetSelector,
    rng: random.Random,
) -> MissGenerator:
    """The miss generator for one PM: bursty when the workload says so."""
    if workload.bursty:
        return BurstyMissGenerator(pm_id, workload, select_target, rng)
    return MissGenerator(pm_id, workload, select_target, rng)
