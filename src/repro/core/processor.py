"""The M-MRP processor model (paper Section 2.4).

Each processor generates a series of cache misses.  The offered load is
controlled by the miss rate ``C``: every cycle in which the processor is
not blocked, a miss occurs with probability ``C`` (geometric inter-miss
gaps with mean ``1/C``; the paper's C=0.04 gives one miss per 25
cycles).  The generation rate is independent of the number of
outstanding requests — the multiple-context processor model of the
paper — but when ``T`` transactions are outstanding the processor
blocks: the pending miss waits for a response to free a slot, and no
further misses are drawn while blocked.

A miss is a read with probability ``read_fraction`` (0.7 in the paper)
and targets a memory module drawn uniformly from the processor's
locality region (chosen by the network-specific target selector).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Protocol

from .config import WorkloadConfig
from .packet import PacketType


class TargetSelector(Protocol):
    """Draws a target PM for one miss of a given processor."""

    def __call__(self, pm_id: int, rng: random.Random) -> int: ...


class MissSource(Protocol):
    """Anything that can feed cache misses to a processing module.

    :class:`MissGenerator` is the M-MRP implementation; the
    trace-driven workload (:mod:`repro.workload.trace`) provides a
    player with the same interface, so a PM never knows whether its
    misses are synthetic or replayed.
    """

    def poll(self, cycle: int, can_issue: "Callable[[], bool]") -> "Miss | None": ...


@dataclass(frozen=True)
class Miss:
    """One generated cache miss, before packetization."""

    is_read: bool
    target: int
    generated_cycle: int


class MissGenerator:
    """Bernoulli-per-cycle miss source with a one-deep blocked-miss slot."""

    __slots__ = ("pm_id", "workload", "rng", "_pending", "misses_generated", "_select")

    def __init__(
        self,
        pm_id: int,
        workload: WorkloadConfig,
        select_target: TargetSelector,
        rng: random.Random,
    ):
        self.pm_id = pm_id
        self.workload = workload
        self.rng = rng
        self._select: TargetSelector = select_target
        self._pending: Miss | None = None
        self.misses_generated = 0

    @property
    def blocked(self) -> bool:
        """True when a generated miss is waiting for an outstanding slot."""
        return self._pending is not None

    def poll(self, cycle: int, can_issue: Callable[[], bool]) -> Miss | None:
        """Advance one cycle; return a miss to issue now, if any.

        ``can_issue`` reports whether the processor has a free
        outstanding-transaction slot *right now* (it is re-queried after
        the pending miss is released so back-to-back issue works).
        """
        if self._pending is not None:
            if not can_issue():
                return None
            miss, self._pending = self._pending, None
            return miss
        if self.rng.random() >= self.workload.miss_rate:
            return None
        miss = Miss(
            is_read=self.rng.random() < self.workload.read_fraction,
            target=self._select(self.pm_id, self.rng),
            generated_cycle=cycle,
        )
        self.misses_generated += 1
        if can_issue():
            return miss
        self._pending = miss
        return None

    @staticmethod
    def request_type(miss: Miss) -> PacketType:
        return PacketType.READ_REQUEST if miss.is_read else PacketType.WRITE_REQUEST
