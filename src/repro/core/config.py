"""Configuration objects and derived packet geometry.

All paper constants live here:

* cache line sizes studied: 16, 32, 64, 128 bytes;
* ring channels are 128 bits wide (16-byte flits) with 1-flit headers,
  so a cache-line packet is 2, 3, 5 or 9 flits (Section 2.2);
* mesh channels are 32 bits wide (4-byte flits) with 4-flit headers,
  so a cache-line packet is 8, 12, 20 or 36 flits;
* the cache miss rate ``C`` defaults to 0.04 (one miss per 25 cycles),
  the read fraction to 0.7, and the outstanding-transaction limit ``T``
  to 4 (Section 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Literal

from .errors import ConfigurationError
from .packet import PacketType

CACHE_LINE_SIZES: tuple[int, ...] = (16, 32, 64, 128)

#: Engine schedulers accepted by :class:`SimulationParams`.  The first
#: four are byte-identical to each other; ``columnar`` is only
#: statistically equivalent (see the class docstring).
SCHEDULERS: tuple[str, ...] = ("compiled", "active", "naive", "batched", "columnar")

#: Traffic patterns accepted by :class:`WorkloadConfig`.  ``"mmrp"`` is
#: the paper's locality workload; the rest are the standard NoC spatial
#: patterns built in :mod:`repro.workload.patterns`.
TRAFFIC_PATTERNS: tuple[str, ...] = (
    "mmrp",
    "uniform",
    "tornado",
    "transpose",
    "shuffle",
    "bitrev",
    "hotspot",
)

RING_FLIT_BYTES = 16  # 128-bit ring data path
RING_HEADER_FLITS = 1
MESH_FLIT_BYTES = 4  # 32-bit mesh channels
MESH_HEADER_FLITS = 4

#: Mesh router input buffer depth named "cl" in the paper: sized to hold
#: one full cache-line packet.
CL_BUFFER: Literal["cl"] = "cl"


@dataclass(frozen=True)
class PacketGeometry:
    """Flit counts for each packet type under one network's framing."""

    header_flits: int
    data_flits: int

    @property
    def cl_packet_flits(self) -> int:
        """Size of a packet carrying a cache line (the paper's ``cl``)."""
        return self.header_flits + self.data_flits

    def size_of(self, ptype: PacketType) -> int:
        if ptype.carries_data:
            return self.cl_packet_flits
        return self.header_flits


def _check_cache_line(cache_line_bytes: int) -> None:
    if cache_line_bytes not in CACHE_LINE_SIZES:
        raise ConfigurationError(
            f"cache line must be one of {CACHE_LINE_SIZES}, got {cache_line_bytes}"
        )


def ring_packet_geometry(cache_line_bytes: int) -> PacketGeometry:
    """Ring packet framing: 16-byte flits, 1-flit header."""
    _check_cache_line(cache_line_bytes)
    return PacketGeometry(RING_HEADER_FLITS, cache_line_bytes // RING_FLIT_BYTES)


def mesh_packet_geometry(cache_line_bytes: int) -> PacketGeometry:
    """Mesh packet framing: 4-byte flits, 4-flit header."""
    _check_cache_line(cache_line_bytes)
    return PacketGeometry(MESH_HEADER_FLITS, cache_line_bytes // MESH_FLIT_BYTES)


def parse_hierarchy(spec: "str | tuple[int, ...] | list[int]") -> tuple[int, ...]:
    """Parse the paper's ``"2:3:4"`` hierarchy notation into a tuple.

    The notation is top-down: ``"2:3:4"`` is a 3-level hierarchy whose
    global ring connects 2 intermediate rings, each connecting 3 local
    rings of 4 processing modules (24 processors total).  A single-level
    system is just ``"8"`` / ``(8,)``.
    """
    if isinstance(spec, str):
        parts = spec.split(":")
        try:
            branching = tuple(int(p) for p in parts)
        except ValueError as exc:
            raise ConfigurationError(f"bad hierarchy spec {spec!r}") from exc
    else:
        branching = tuple(int(b) for b in spec)
    if not branching:
        raise ConfigurationError("hierarchy spec must have at least one level")
    if any(b < 1 for b in branching):
        raise ConfigurationError(f"hierarchy branching factors must be >= 1: {branching}")
    if len(branching) > 1 and any(b < 2 for b in branching[:-1]):
        raise ConfigurationError(
            f"non-leaf levels need at least 2 children: {branching}"
        )
    return branching


def hierarchy_processors(branching: tuple[int, ...]) -> int:
    count = 1
    for b in branching:
        count *= b
    return count


def format_hierarchy(branching: tuple[int, ...]) -> str:
    return ":".join(str(b) for b in branching)


@dataclass(frozen=True)
class RingSystemConfig:
    """A hierarchical-ring multiprocessor system.

    Parameters
    ----------
    topology:
        Hierarchy in ``"2:3:4"`` notation or as a top-down branching
        tuple; see :func:`parse_hierarchy`.
    cache_line_bytes:
        16, 32, 64 or 128.
    global_ring_speed:
        1 for the base system; 2 clocks the global (top-level) ring at
        twice the PM clock (Section 6).
    memory_latency:
        Fixed pipelined memory access time in cycles.  The paper never
        states its value; it is an additive constant on every latency
        curve (see DESIGN.md).
    transit_priority, response_priority:
        The paper's NIC/IRI arbitration: transit packets first, then
        responses over requests (Section 2.1).  Exposed as ablation
        knobs; leave True to model the paper.
    switching:
        ``"wormhole"`` is the paper's model: a packet blocked at a full
        inter-ring queue stalls in place and back-pressures the ring.
        ``"slotted"`` models the non-blocking switching that Hector and
        NUMAchine actually built (paper footnote 3; Ravindran & Stumm,
        IEICE '96): a packet that finds its up/down queue full simply
        continues around the ring and retries next revolution, and a
        node only starts injecting when no transit packet is arriving.
    """

    topology: "str | tuple[int, ...]" = "2:3:4"
    cache_line_bytes: int = 32
    global_ring_speed: int = 1
    memory_latency: int = 10
    transit_priority: bool = True
    response_priority: bool = True
    switching: str = "wormhole"

    @property
    def branching(self) -> tuple[int, ...]:
        return parse_hierarchy(self.topology)

    @property
    def levels(self) -> int:
        return len(self.branching)

    @property
    def processors(self) -> int:
        return hierarchy_processors(self.branching)

    @property
    def geometry(self) -> PacketGeometry:
        return ring_packet_geometry(self.cache_line_bytes)

    @property
    def ring_buffer_flits(self) -> int:
        """Ring/NIC/IRI buffers hold exactly one cache-line packet."""
        return self.geometry.cl_packet_flits

    def validate(self) -> "RingSystemConfig":
        _check_cache_line(self.cache_line_bytes)
        parse_hierarchy(self.topology)
        if self.global_ring_speed not in (1, 2):
            raise ConfigurationError(
                f"global_ring_speed must be 1 or 2, got {self.global_ring_speed}"
            )
        if self.memory_latency < 0:
            raise ConfigurationError("memory_latency must be >= 0")
        if self.switching not in ("wormhole", "slotted"):
            raise ConfigurationError(
                f"switching must be 'wormhole' or 'slotted', got {self.switching!r}"
            )
        return self

    def with_topology(self, topology: "str | tuple[int, ...]") -> "RingSystemConfig":
        return replace(self, topology=topology)


@dataclass(frozen=True)
class MeshSystemConfig:
    """A square 2D bi-directional mesh multiprocessor system.

    Parameters
    ----------
    side:
        Mesh edge length; the system has ``side * side`` processors.
    cache_line_bytes:
        16, 32, 64 or 128.
    buffer_flits:
        Router input FIFO depth in flits: 1, 4 or :data:`CL_BUFFER`
        (one full cache-line packet, the paper's ``cl``).
    memory_latency:
        Fixed pipelined memory access time in cycles (see
        :class:`RingSystemConfig`).
    """

    side: int = 4
    cache_line_bytes: int = 32
    buffer_flits: "int | Literal['cl']" = 4
    memory_latency: int = 10

    @property
    def processors(self) -> int:
        return self.side * self.side

    @property
    def geometry(self) -> PacketGeometry:
        return mesh_packet_geometry(self.cache_line_bytes)

    @property
    def input_buffer_flits(self) -> int:
        if self.buffer_flits == CL_BUFFER:
            return self.geometry.cl_packet_flits
        return int(self.buffer_flits)

    def validate(self) -> "MeshSystemConfig":
        _check_cache_line(self.cache_line_bytes)
        if self.side < 1:
            raise ConfigurationError(f"mesh side must be >= 1, got {self.side}")
        if self.buffer_flits != CL_BUFFER and int(self.buffer_flits) < 1:
            raise ConfigurationError(
                f"buffer_flits must be >= 1 or 'cl', got {self.buffer_flits!r}"
            )
        if self.memory_latency < 0:
            raise ConfigurationError("memory_latency must be >= 0")
        return self

    @classmethod
    def for_processors(cls, processors: int, **kwargs: Any) -> "MeshSystemConfig":
        """Build the smallest square mesh holding *processors* nodes."""
        side = 1
        while side * side < processors:
            side += 1
        if side * side != processors:
            raise ConfigurationError(
                f"mesh systems must be square; {processors} is not a perfect square"
            )
        return cls(side=side, **kwargs)


@dataclass(frozen=True)
class WorkloadConfig:
    """The synthetic workload driving every processor.

    The default is the paper's M-MRP (Section 2.4): ``locality`` is the
    paper's ``R`` (memory region fraction), ``miss_rate`` is ``C``
    (per-cycle cache miss probability), and ``outstanding`` is ``T``
    (transactions in flight before the processor blocks).

    ``pattern`` swaps the *spatial* target distribution for one of the
    standard NoC patterns (:data:`TRAFFIC_PATTERNS`, built in
    :mod:`repro.workload.patterns`).  Non-M-MRP patterns define their
    own target distribution, so they require the locality knob left at
    its neutral ``R = 1.0`` — one spelling per workload keeps the
    cache/spec identity unambiguous.  ``hotspot_count`` /
    ``hotspot_weight`` shape the ``"hotspot"`` pattern only: K evenly
    spaced hot memory modules drawn W times more often than the rest
    (integer W, so the weighted draw is an exact finite pool).

    ``burst_on`` / ``burst_off`` (mean cycles in the ON / OFF state)
    enable *temporal* burstiness on top of any spatial pattern: an
    on/off Markov-modulated source that only injects while ON, with the
    ON-state miss rate scaled so the long-run average rate stays
    ``miss_rate``.  Both zero (the default) is plain Bernoulli
    injection.
    """

    locality: float = 1.0
    miss_rate: float = 0.04
    outstanding: int = 4
    read_fraction: float = 0.7
    pattern: str = "mmrp"
    hotspot_count: int = 2
    hotspot_weight: int = 8
    burst_on: float = 0.0
    burst_off: float = 0.0

    @property
    def bursty(self) -> bool:
        return self.burst_on > 0.0

    @property
    def burst_on_rate(self) -> float:
        """ON-state miss rate preserving ``miss_rate`` as the average."""
        if not self.bursty:
            return self.miss_rate
        duty = self.burst_on / (self.burst_on + self.burst_off)
        return self.miss_rate / duty

    def validate(self) -> "WorkloadConfig":
        if not 0.0 < self.locality <= 1.0:
            raise ConfigurationError(f"locality R must be in (0, 1], got {self.locality}")
        if not 0.0 < self.miss_rate <= 1.0:
            raise ConfigurationError(f"miss_rate C must be in (0, 1], got {self.miss_rate}")
        if self.outstanding < 1:
            raise ConfigurationError(f"outstanding T must be >= 1, got {self.outstanding}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )
        if self.pattern not in TRAFFIC_PATTERNS:
            raise ConfigurationError(
                f"pattern must be one of {TRAFFIC_PATTERNS}, got {self.pattern!r}"
            )
        if self.pattern != "mmrp" and self.locality != 1.0:
            raise ConfigurationError(
                f"pattern {self.pattern!r} defines its own target "
                f"distribution; locality must stay 1.0, got {self.locality}"
            )
        if self.hotspot_count < 1:
            raise ConfigurationError(
                f"hotspot_count must be >= 1, got {self.hotspot_count}"
            )
        if self.hotspot_weight < 2:
            raise ConfigurationError(
                f"hotspot_weight must be an integer >= 2 (1 would just be "
                f"'uniform' under another name), got {self.hotspot_weight}"
            )
        if (self.burst_on > 0.0) != (self.burst_off > 0.0):
            raise ConfigurationError(
                "burst_on and burst_off must be both zero (no burstiness) "
                f"or both positive, got {self.burst_on}/{self.burst_off}"
            )
        if self.bursty:
            if self.burst_on < 1.0 or self.burst_off < 1.0:
                raise ConfigurationError(
                    "burst_on/burst_off are mean state durations in cycles "
                    f"and must be >= 1, got {self.burst_on}/{self.burst_off}"
                )
            if self.burst_on_rate > 1.0:
                raise ConfigurationError(
                    f"bursty workload needs miss_rate * (on+off)/on <= 1 "
                    f"(the ON-state rate), got {self.burst_on_rate:.4f}"
                )
        return self


@dataclass(frozen=True)
class SimulationParams:
    """Run-length and output-analysis control.

    The paper uses the batch means method with the first batch discarded
    for initialization bias (Section 2.3); ``batches`` counts all
    batches *including* the discarded one.

    ``flow_control`` selects the engine's resolver: ``"bypass"`` models
    the paper's hardware (send and receive a flit in the same cycle);
    ``"conservative"`` is the occupancy-at-cycle-start ablation.

    ``scheduler`` selects the engine's component visitation strategy:
    ``"compiled"`` (default) skips provably idle components *and* runs
    the propose/resolve/commit loop over flat integer arrays instead of
    Transfer objects, ``"active"`` skips idle components on the object
    datapath, ``"naive"`` scans everything every cycle, and
    ``"batched"`` runs ``replicas`` seeds of the point in lockstep over
    one compiled datapath (see :mod:`repro.core.batched`; requires
    numpy).  Those four are behavior-identical (same per-replica
    ``SimulationResult`` for every config — enforced by the kernel
    equivalence test matrix), so among them the choice is an execution
    detail and deliberately not part of the cached-result identity.

    ``"columnar"`` is the fifth scheduler and the exception: it runs
    ``replicas`` seeds as struct-of-arrays numpy columns with per-column
    ``Philox`` RNG streams (:mod:`repro.core.columnar`; requires numpy),
    trading byte-identity for raw aggregate throughput.  Its results
    are *statistically equivalent* to ``compiled`` (overlapping
    batch-means confidence intervals, enforced by
    :mod:`repro.audit.stat_equiv`), not bit-identical, so columnar
    results ARE part of the cached identity: they are stored under a
    ``"fidelity": "statistical"`` tag and never serve a request for a
    bit-exact scheduler (see :mod:`repro.runtime.serialization`).

    ``replicas`` is the lockstep batch width used by the batch entry
    points (:func:`repro.core.simulation.simulate_batch`,
    :func:`repro.runtime.runner.run_replica_batch`) when no explicit
    seed list is given: seeds ``seed, seed+1, ..., seed+replicas-1``.
    Like ``scheduler`` it is an execution detail — each replica's
    result is cached independently under its own seed — and therefore
    also excluded from the cached-result identity.

    ``deadlock_threshold`` is measured in *base* (PM) clock cycles: a
    cycle counts as stalled when none of its subcycles commits a flit
    despite proposals, so the threshold means the same thing on systems
    with a double-speed global ring (two subcycles per base cycle) as
    on single-speed ones.
    """

    batch_cycles: int = 3000
    batches: int = 6
    seed: int = 1
    deadlock_threshold: int = 50_000
    flow_control: str = "bypass"
    scheduler: str = "compiled"
    replicas: int = 1

    def validate(self) -> "SimulationParams":
        if self.batch_cycles < 1:
            raise ConfigurationError("batch_cycles must be >= 1")
        if self.batches < 2:
            raise ConfigurationError("need >= 2 batches (the first is discarded)")
        if self.deadlock_threshold < 1:
            raise ConfigurationError("deadlock_threshold must be >= 1")
        if self.flow_control not in ("bypass", "conservative"):
            raise ConfigurationError(
                f"flow_control must be 'bypass' or 'conservative', "
                f"got {self.flow_control!r}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ConfigurationError(
                f"scheduler must be 'compiled', 'active', 'naive', "
                f"'batched' or 'columnar', got {self.scheduler!r}"
            )
        if self.replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {self.replicas}")
        return self

    @property
    def total_cycles(self) -> int:
        return self.batch_cycles * self.batches


#: Convenience presets for fast CI-style runs.
QUICK_SIM = SimulationParams(batch_cycles=800, batches=4)
DEFAULT_SIM = SimulationParams()
THOROUGH_SIM = SimulationParams(batch_cycles=8000, batches=9)
