"""Exception hierarchy for the repro simulator.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch one type to handle any simulator failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A system, workload, or simulation configuration is invalid."""


class TopologyError(ConfigurationError):
    """A network topology specification is malformed or unsupported."""


class DeadlockError(ReproError):
    """The network made no progress for longer than the watchdog allows.

    Raised by :class:`repro.core.engine.Engine` when flits are in flight,
    at least one transfer is being proposed, and no transfer commits for
    ``deadlock_threshold`` consecutive cycles.  A correctly configured
    e-cube mesh or tree-routed hierarchical ring should never trigger it;
    it exists to turn a silent hang into a diagnosable failure.
    """

    def __init__(self, cycle: int, stalled_cycles: int, detail: str = ""):
        self.cycle = cycle
        self.stalled_cycles = stalled_cycles
        message = (
            f"no flit movement for {stalled_cycles} cycles "
            f"(at cycle {cycle}) while packets are in flight"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""
