"""Physical channels (links) between network nodes.

A :class:`Channel` is a unidirectional point-to-point link.  It does not
store flits — transfers move flits directly from a source buffer into a
destination buffer in the same cycle, which models the paper's
"one flit to the next adjacent node per clock cycle" with the 1-cycle
routing delay charged by the destination buffer (a flit enqueued in
cycle *t* is eligible to move again at *t+1*).

Channels serve two purposes:

* **utilization accounting** — each committed transfer over the channel
  increments a flit counter; channels are grouped into named classes
  (``"ring.local"``, ``"ring.global"``, ``"mesh"`` ...) so the networks
  can report the paper's per-level utilization figures; and
* **wormhole receive classification** — the destination node decides,
  per packet, which of its buffers an arriving packet enters (transit
  buffer, up/down queue, or ejection sink).  The decision is made on the
  head flit and remembered on the channel so body flits follow it, which
  is sound because wormhole switching forbids interleaving flits of
  different packets on one link.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .buffers import FlitBuffer
    from .packet import Packet


class Channel:
    """A unidirectional link with utilization counters.

    Parameters
    ----------
    name:
        Diagnostic label.
    klass:
        Utilization grouping key, e.g. ``"ring.local"`` or ``"mesh"``.
    speed:
        Flit-transfer opportunities per base (PM) clock cycle.  1 for
        normal links, 2 for links on a double-speed global ring.
    """

    __slots__ = (
        "name",
        "klass",
        "speed",
        "flits_carried",
        "incoming_route",
        "incoming_packet",
        "_chan_id",
    )

    def __init__(self, name: str, klass: str, speed: int = 1):
        self.name = name
        self.klass = klass
        self.speed = speed
        self.flits_carried = 0
        # Receive-side wormhole state: the buffer the in-flight packet's
        # remaining flits are being delivered to, and that packet.
        self.incoming_route: "FlitBuffer | None" = None
        self.incoming_packet: "Packet | None" = None
        # Dense id assigned lazily by the engine's compiled datapath
        # (see FlitBuffer._buf_id); -1 until first proposed over.
        self._chan_id = -1

    def record_flit(self) -> None:
        self.flits_carried += 1

    def open_route(self, packet: "Packet", buffer: "FlitBuffer") -> None:
        """Pin the destination buffer for the remaining flits of *packet*."""
        self.incoming_packet = packet
        self.incoming_route = buffer

    def close_route(self) -> None:
        self.incoming_packet = None
        self.incoming_route = None

    @property
    def route_is_open(self) -> bool:
        """Whether a wormhole packet currently holds this link.

        True between a head flit's commit and its tail flit's commit.
        A quiescent network must have every route closed; checked by
        :mod:`repro.audit`.
        """
        return self.incoming_packet is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Channel({self.name}, {self.klass}, x{self.speed}, {self.flits_carried} flits)"
