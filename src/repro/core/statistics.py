"""Output analysis: batch means, latency and utilization recorders.

The paper (Section 2.3) uses the *batch means* method with the first
batch discarded to remove initialization bias.  :class:`BatchMeans`
implements exactly that, plus a Student-t confidence interval over the
retained batch means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

# Two-sided 95% Student-t critical values indexed by degrees of freedom.
_T_TABLE: dict[int, float] = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def _t_critical(dof: int) -> float:
    """Two-sided 95% t critical value, conservative between table keys.

    For a dof between table keys the *nearest lower* key is used: t
    critical values shrink with dof, so rounding the dof down inflates
    the half-width slightly rather than understating it.  Beyond the
    table (dof > 120) the 120-dof value applies — still conservative
    relative to the normal-limit 1.96.
    """
    if dof <= 0:
        return math.inf
    if dof in _T_TABLE:
        return _T_TABLE[dof]
    floor_key = max((key for key in _T_TABLE if key < dof), default=min(_T_TABLE))
    return _T_TABLE[floor_key]


@dataclass
class Summary:
    """Point estimate with spread for a batch-means statistic."""

    mean: float
    half_width: float
    batch_means: tuple[float, ...]

    @property
    def confidence_interval(self) -> tuple[float, float]:
        return (self.mean - self.half_width, self.mean + self.half_width)

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean's magnitude.

        A zero or NaN mean (an idle link, or no retained batches at all)
        gives no scale to normalize against, so the relative width is
        reported as unbounded rather than dividing by it.
        """
        if math.isnan(self.mean) or self.mean == 0.0:
            return math.inf
        return self.half_width / abs(self.mean)


class BatchMeans:
    """Accumulates per-batch means; the first closed batch is discarded."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._batch_sum = 0.0
        self._batch_count = 0
        self._means: list[float] = []
        self._total_observations = 0

    def observe(self, value: float) -> None:
        self._batch_sum += value
        self._batch_count += 1
        self._total_observations += 1

    def observe_many(self, total: float, count: int) -> None:
        """Fold *count* observations summing to *total* into the batch.

        ``count == 0`` is a no-op: there are no observations, and
        folding a stray *total* into the running sum would silently
        skew the mean of whatever lands in this batch later.
        """
        if count == 0:
            return
        self._batch_sum += total
        self._batch_count += count
        self._total_observations += count

    def close_batch(self) -> float | None:
        """End the current batch; returns its mean (``None`` if empty)."""
        if self._batch_count == 0:
            self._means.append(math.nan)
            self._batch_sum = 0.0
            return None
        mean = self._batch_sum / self._batch_count
        self._means.append(mean)
        self._batch_sum = 0.0
        self._batch_count = 0
        return mean

    @property
    def total_observations(self) -> int:
        return self._total_observations

    @property
    def retained_means(self) -> tuple[float, ...]:
        """Batch means with the first *non-empty* (warm-up) batch discarded.

        An empty leading batch (NaN mean) carries no observations, so
        discarding it would not remove any initialization bias — the
        warm-up data sits in the first batch that actually recorded
        something, and that is the one dropped.
        """
        kept = [m for m in self._means if not math.isnan(m)]
        return tuple(kept[1:])

    def summary(self) -> Summary:
        means = self.retained_means
        if not means:
            return Summary(math.nan, math.nan, means)
        n = len(means)
        mean = sum(means) / n
        if n < 2:
            return Summary(mean, math.inf, means)
        var = sum((m - mean) ** 2 for m in means) / (n - 1)
        half = _t_critical(n - 1) * math.sqrt(var / n)
        return Summary(mean, half, means)


class RateMeter:
    """Batch-means over a *rate*: counter delta divided by a time delta.

    Used for utilization (flits carried / flit opportunities) and
    throughput (transactions completed / cycle).  The caller snapshots
    the counter at batch boundaries.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._last_numerator = 0.0
        self._last_denominator = 0.0
        self._batch_rates: list[float] = []

    def close_batch(self, numerator: float, denominator: float) -> float | None:
        """Record this batch's rate from the counter snapshots.

        A non-positive denominator delta (no time progressed) or a
        *negative* numerator delta (the counter went backwards — a reset
        or a miswired snapshot) yields a NaN batch rather than silently
        folding a negative "rate" into the summary; NaN batches are
        filtered out of :attr:`retained_rates`.
        """
        num = numerator - self._last_numerator
        den = denominator - self._last_denominator
        self._last_numerator = numerator
        self._last_denominator = denominator
        if den <= 0 or num < 0:
            self._batch_rates.append(math.nan)
            return None
        rate = num / den
        self._batch_rates.append(rate)
        return rate

    @property
    def retained_rates(self) -> tuple[float, ...]:
        """Batch rates with the first *measurable* (warm-up) batch discarded.

        Mirrors :meth:`BatchMeans.retained_means`: NaN rates (batches
        whose denominator made no progress) are filtered out first, and
        only then is the leading batch dropped.  Slicing before
        filtering would let a leading zero-denominator batch absorb the
        warm-up discard, leaking initialization bias into utilization
        and throughput summaries.
        """
        kept = [r for r in self._batch_rates if not math.isnan(r)]
        return tuple(kept[1:])

    def summary(self) -> Summary:
        rates = self.retained_rates
        if not rates:
            return Summary(math.nan, math.nan, rates)
        n = len(rates)
        mean = sum(rates) / n
        if n < 2:
            return Summary(mean, math.inf, rates)
        var = sum((r - mean) ** 2 for r in rates) / (n - 1)
        half = _t_critical(n - 1) * math.sqrt(var / n)
        return Summary(mean, half, rates)


@dataclass
class LatencyStats:
    """Running latency tally for the current batch plus steady-state extremes.

    ``minimum`` / ``maximum`` follow the same policy as the batch means:
    they span exactly the retained (steady-state) observations.  Each
    batch's extremes are staged while the batch is open and only folded
    into ``minimum`` / ``maximum`` when :meth:`close_batch` retains the
    batch — so neither the discarded warm-up batch nor a trailing
    *unclosed* batch (whose observations never enter any retained batch
    mean) can pin the extremes.
    """

    batch: BatchMeans = field(default_factory=lambda: BatchMeans("latency"))
    minimum: float = math.inf
    maximum: float = -math.inf
    #: Latency of the most recent observation, regardless of batch
    #: retention — a diagnostic (zero-load timing tests read the round
    #: trip that just completed); never feeds the steady-state summary.
    last: float = math.nan
    _warmup_pending: bool = field(default=True, repr=False)
    _open_min: float = field(default=math.inf, repr=False)
    _open_max: float = field(default=-math.inf, repr=False)

    def record(self, latency: float) -> None:
        self.batch.observe(latency)
        self.last = latency
        if latency < self._open_min:
            self._open_min = latency
        if latency > self._open_max:
            self._open_max = latency

    def observe_batch(
        self,
        total: float,
        count: int,
        minimum: float,
        maximum: float,
        last: float,
    ) -> None:
        """Fold a pre-aggregated block of observations into the open batch.

        The columnar engine (:mod:`repro.core.columnar`) tallies each
        replica's latencies as array reductions — sum, count, min, max
        and the final observation — instead of calling :meth:`record`
        per transaction.  ``count == 0`` is a no-op (mirroring
        :meth:`BatchMeans.observe_many`): an empty block carries no
        observations, so neither ``last`` nor the staged extremes may
        move.  The staged extremes still only reach ``minimum`` /
        ``maximum`` when :meth:`close_batch` retains the batch, so the
        warm-up discard applies to array-fed batches exactly as to
        per-observation ones.
        """
        if count == 0:
            return
        self.batch.observe_many(total, count)
        self.last = last
        if minimum < self._open_min:
            self._open_min = minimum
        if maximum > self._open_max:
            self._open_max = maximum

    def close_batch(self) -> float | None:
        """Close the current batch; fold its extremes in iff retained."""
        mean = self.batch.close_batch()
        if mean is not None:
            if self._warmup_pending:
                # The batch that just closed is the discarded warm-up
                # batch: its observations leave the estimate, so they
                # never reach the extremes either.
                self._warmup_pending = False
            else:
                if self._open_min < self.minimum:
                    self.minimum = self._open_min
                if self._open_max > self.maximum:
                    self.maximum = self._open_max
            self._open_min = math.inf
            self._open_max = -math.inf
        return mean
