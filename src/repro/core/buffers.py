"""FIFO flit buffers.

All storage in the simulated networks — ring transit buffers, IRI
up/down queues, mesh router input buffers, processing-module output
queues and ejection sinks — is a :class:`FlitBuffer`.  The transfer
resolver in :mod:`repro.core.engine` relies on two structural
facts enforced by the components: per cycle each buffer has at most one
writer (a single upstream link or the local PM) and at most one reader.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from .packet import Flit


class FlitBuffer:
    """A bounded (or unbounded) FIFO of flits.

    Parameters
    ----------
    name:
        Diagnostic label, e.g. ``"ring[0,1].nic3.ring_buffer"``.
    capacity:
        Maximum number of flits, or ``None`` for an unbounded buffer
        (used only for endpoint sinks and PM-internal staging queues).
    """

    __slots__ = (
        "name",
        "capacity",
        "_flits",
        "flits_enqueued",
        "flits_dequeued",
        "_wake_on_push",
        "_wake_on_pop",
        "_buf_id",
    )

    def __init__(self, name: str, capacity: int | None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"buffer {name!r}: capacity must be >= 1 or None")
        self.name = name
        self.capacity = capacity
        self._flits: deque[Flit] = deque()
        self.flits_enqueued = 0
        self.flits_dequeued = 0
        # Filled in by the engine's active-set scheduler at finalize time
        # (attribute access beats a dict lookup in the commit hot loop):
        # components to wake when a transfer lands in / drains this buffer.
        self._wake_on_push: (
            "tuple[tuple[int, ...] | None, tuple[int, ...] | None] | None"
        ) = None
        self._wake_on_pop: "tuple[int, ...] | None" = None
        # Dense id assigned lazily by the engine's compiled datapath; -1
        # until the first proposal names this buffer.  The engine
        # validates identity on every resolve, so a buffer reused with a
        # second engine is simply re-registered there.
        self._buf_id = -1

    @property
    def occupancy(self) -> int:
        return len(self._flits)

    @property
    def is_empty(self) -> bool:
        return not self._flits

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._flits) >= self.capacity

    @property
    def free_slots(self) -> int | None:
        """Free flit slots, or ``None`` if unbounded."""
        if self.capacity is None:
            return None
        return self.capacity - len(self._flits)

    def peek(self) -> Flit | None:
        """The flit at the head of the FIFO, or ``None`` when empty."""
        return self._flits[0] if self._flits else None

    def push(self, flit: Flit) -> None:
        if self.is_full:
            raise OverflowError(f"buffer {self.name!r} overflow")
        self._flits.append(flit)
        self.flits_enqueued += 1

    def pop(self) -> Flit:
        if not self._flits:
            raise IndexError(f"buffer {self.name!r} underflow")
        self.flits_dequeued += 1
        return self._flits.popleft()

    def push_packet(self, flits: Iterator[Flit]) -> None:
        """Enqueue a whole packet atomically (used at injection points)."""
        for flit in flits:
            self.push(flit)

    def conservation_delta(self) -> int:
        """``enqueued - dequeued - occupancy``; 0 iff counters and content agree.

        Every fill path (``push``/``push_packet``, the engine's compiled
        commit loop, the PM's fused update closures) must keep the FIFO
        counters in lockstep with the deque, so a non-zero delta means a
        datapath lost or duplicated a flit.  Checked per cycle by
        :mod:`repro.audit`.
        """
        return self.flits_enqueued - self.flits_dequeued - len(self._flits)

    def __len__(self) -> int:
        return len(self._flits)

    def __bool__(self) -> bool:
        """Truthy iff non-empty (kernel hot path; bypasses ``__len__``)."""
        return bool(self._flits)

    def __iter__(self) -> Iterator[Flit]:
        return iter(self._flits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"FlitBuffer({self.name}, {len(self._flits)}/{cap})"
