"""Per-phase wall-time profiling for the simulation kernel.

The engine's hot loop pays nothing for profiling when it is off: at
finalize time the engine picks a plain step function unless a
:class:`PhaseProfile` has been installed via :func:`enable`, in which
case it swaps in an instrumented step that brackets every propose /
resolve / commit / update phase with :meth:`PhaseProfile.begin` /
:meth:`PhaseProfile.lap` calls.  The instrumented step is a separate
function rather than inline ``if profiling:`` checks, so the disabled
path contains zero profiling branches.

Wall-clock reads live only in this module (the two ``perf_counter``
calls below); the kernel itself stays free of time sources, which keeps
the RPR002 determinism lint meaningful over ``repro.core.engine``.

Usage (what ``python -m repro.experiments --profile`` does)::

    profile = PhaseProfile()
    with enabled(profile):
        result = simulate(system, workload, params)
    print(profile.format_table())

Profiling is process-local ambient state, so it only observes engines
created in this process — the experiments CLI therefore forces
``--jobs 1`` and disables the result cache when ``--profile`` is given.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

#: Phase keys in reporting order.
PHASES = ("propose", "resolve", "commit", "update")


class PhaseProfile:
    """Accumulated wall seconds per ``(scheduler, phase)``.

    One instance can span several engines (e.g. every point of a sweep);
    times for the same scheduler accumulate.
    """

    def __init__(self) -> None:
        #: seconds[(scheduler, phase)] -> accumulated wall seconds
        self.seconds: dict[tuple[str, str], float] = {}
        #: base cycles stepped while this profile was active, per scheduler
        self.cycles: dict[str, int] = {}
        self._mark = 0.0

    # The two perf_counter reads below are the only wall-clock sources
    # in repro.core; they never influence simulation behaviour.
    def begin(self) -> None:
        """Start (or restart) the phase stopwatch."""
        self._mark = time.perf_counter()  # repro: noqa[RPR002] profiling clock

    def lap(self, scheduler: str, phase: str) -> None:
        """Charge the time since the last begin()/lap() to a phase."""
        now = time.perf_counter()  # repro: noqa[RPR002] profiling clock
        key = (scheduler, phase)
        elapsed = now - self._mark
        if key in self.seconds:
            self.seconds[key] += elapsed
        else:
            self.seconds[key] = elapsed
        self._mark = now

    def count_cycle(self, scheduler: str) -> None:
        self.cycles[scheduler] = self.cycles.get(scheduler, 0) + 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def format_table(self) -> str:
        """Render the phase breakdown as an aligned text table."""
        if not self.seconds:
            return "phase profile: no cycles recorded"
        lines = ["phase profile (wall seconds inside the kernel step):"]
        schedulers = sorted({scheduler for scheduler, _ in self.seconds})
        header = f"  {'scheduler':<10} {'phase':<8} {'seconds':>9} {'share':>7} {'us/cycle':>9}"
        lines.append(header)
        total = self.total_seconds
        for scheduler in schedulers:
            cycles = self.cycles.get(scheduler, 0)
            for phase in PHASES:
                seconds = self.seconds.get((scheduler, phase))
                if seconds is None:
                    continue
                share = 100.0 * seconds / total if total else 0.0
                per_cycle = 1e6 * seconds / cycles if cycles else 0.0
                lines.append(
                    f"  {scheduler:<10} {phase:<8} {seconds:>9.3f} "
                    f"{share:>6.1f}% {per_cycle:>9.2f}"
                )
            lines.append(
                f"  {scheduler:<10} {'(cycles)':<8} {cycles:>9d}"
            )
        return "\n".join(lines)


#: The process-wide active profile (None = profiling off, zero-cost).
_ACTIVE: PhaseProfile | None = None


def enable(profile: PhaseProfile) -> None:
    """Install *profile*; engines finalized afterwards report into it."""
    global _ACTIVE
    _ACTIVE = profile


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None


def current() -> PhaseProfile | None:
    return _ACTIVE


@contextmanager
def enabled(profile: PhaseProfile) -> Iterator[PhaseProfile]:
    """Scoped :func:`enable` / :func:`disable`."""
    enable(profile)
    try:
        yield profile
    finally:
        disable()
